"""Tests for the discrete-event loop."""

import pytest

from repro.errors import MachineError
from repro.machine.events import EventLoop


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.schedule_at(3.0, lambda: fired.append("c"))
    loop.schedule_at(1.0, lambda: fired.append("a"))
    loop.schedule_at(2.0, lambda: fired.append("b"))
    loop.run()
    assert fired == ["a", "b", "c"]
    assert loop.now == 3.0


def test_ties_break_by_insertion_order():
    loop = EventLoop()
    fired = []
    for label in "abc":
        loop.schedule_at(1.0, lambda label=label: fired.append(label))
    loop.run()
    assert fired == ["a", "b", "c"]


def test_schedule_relative_delay():
    loop = EventLoop()
    seen = []
    loop.schedule(0.5, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [0.5]


def test_events_can_schedule_events():
    loop = EventLoop()
    fired = []

    def first():
        fired.append(("first", loop.now))
        loop.schedule(1.0, lambda: fired.append(("second", loop.now)))

    loop.schedule_at(1.0, first)
    loop.run()
    assert fired == [("first", 1.0), ("second", 2.0)]


def test_run_until_stops_and_advances_clock():
    loop = EventLoop()
    fired = []
    loop.schedule_at(1.0, lambda: fired.append(1))
    loop.schedule_at(5.0, lambda: fired.append(5))
    count = loop.run(until=2.0)
    assert count == 1
    assert fired == [1]
    assert loop.now == 2.0
    # The late event is still pending and fires on the next run.
    loop.run()
    assert fired == [1, 5]


def test_run_until_advances_clock_even_with_no_events():
    loop = EventLoop()
    loop.run(until=7.0)
    assert loop.now == 7.0


def test_max_events_bounds_execution():
    loop = EventLoop()
    fired = []
    for i in range(10):
        loop.schedule_at(float(i + 1), lambda i=i: fired.append(i))
    loop.run(max_events=3)
    assert fired == [0, 1, 2]


def test_cancelled_events_do_not_fire():
    loop = EventLoop()
    fired = []
    handle = loop.schedule_at(1.0, lambda: fired.append("cancelled"))
    loop.schedule_at(2.0, lambda: fired.append("kept"))
    handle.cancel()
    assert handle.cancelled
    loop.run()
    assert fired == ["kept"]


def test_pending_counts_only_live_events():
    loop = EventLoop()
    handle = loop.schedule_at(1.0, lambda: None)
    loop.schedule_at(2.0, lambda: None)
    assert loop.pending == 2
    handle.cancel()
    assert loop.pending == 1


def test_scheduling_in_the_past_is_rejected():
    loop = EventLoop()
    loop.schedule_at(5.0, lambda: None)
    loop.run()
    with pytest.raises(MachineError):
        loop.schedule_at(1.0, lambda: None)
    with pytest.raises(MachineError):
        loop.schedule(-0.1, lambda: None)


def test_step_fires_single_event():
    loop = EventLoop()
    fired = []
    loop.schedule_at(1.0, lambda: fired.append("a"))
    loop.schedule_at(2.0, lambda: fired.append("b"))
    assert loop.step() is True
    assert fired == ["a"]
    assert loop.step() is True
    assert loop.step() is False
    assert fired == ["a", "b"]
