"""Tests for the discrete-event loop."""

import pytest

from repro.errors import MachineError
from repro.machine.events import EventLoop


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.schedule_at(3.0, lambda: fired.append("c"))
    loop.schedule_at(1.0, lambda: fired.append("a"))
    loop.schedule_at(2.0, lambda: fired.append("b"))
    loop.run()
    assert fired == ["a", "b", "c"]
    assert loop.now == 3.0


def test_ties_break_by_insertion_order():
    loop = EventLoop()
    fired = []
    for label in "abc":
        loop.schedule_at(1.0, lambda label=label: fired.append(label))
    loop.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_insertion_order_across_schedule_styles():
    """Plain, arg-carrying, and cancellable events share one seq stream."""
    loop = EventLoop()
    fired = []
    loop.schedule_at(1.0, lambda: fired.append("plain"))
    loop.schedule_call_at(1.0, fired.append, "call")
    loop.schedule_cancellable_at(1.0, lambda: fired.append("cancellable"))
    loop.schedule_call_at(1.0, fired.append, "call2")
    loop.run()
    assert fired == ["plain", "call", "cancellable", "call2"]


def test_schedule_relative_delay():
    loop = EventLoop()
    seen = []
    loop.schedule(0.5, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [0.5]


def test_schedule_call_at_passes_argument():
    loop = EventLoop()
    seen = []
    loop.schedule_call_at(1.0, seen.append, 42)
    loop.run()
    assert seen == [42]


def test_events_can_schedule_events():
    loop = EventLoop()
    fired = []

    def first():
        fired.append(("first", loop.now))
        loop.schedule(1.0, lambda: fired.append(("second", loop.now)))

    loop.schedule_at(1.0, first)
    loop.run()
    assert fired == [("first", 1.0), ("second", 2.0)]


def test_run_until_stops_and_advances_clock():
    loop = EventLoop()
    fired = []
    loop.schedule_at(1.0, lambda: fired.append(1))
    loop.schedule_at(5.0, lambda: fired.append(5))
    count = loop.run(until=2.0)
    assert count == 1
    assert fired == [1]
    assert loop.now == 2.0
    # The late event is still pending and fires on the next run.
    loop.run()
    assert fired == [1, 5]


def test_run_until_advances_clock_even_with_no_events():
    loop = EventLoop()
    loop.run(until=7.0)
    assert loop.now == 7.0


def test_max_events_bounds_execution():
    loop = EventLoop()
    fired = []
    for i in range(10):
        loop.schedule_at(float(i + 1), lambda i=i: fired.append(i))
    loop.run(max_events=3)
    assert fired == [0, 1, 2]


def test_run_until_with_max_events_leaves_clock_at_last_fired():
    """When max_events stops the run first, the clock does NOT jump to
    *until*; it stays at the last fired event so a later run resumes."""
    loop = EventLoop()
    fired = []
    for i in range(5):
        loop.schedule_at(float(i + 1), lambda i=i: fired.append(i))
    count = loop.run(until=10.0, max_events=2)
    assert count == 2
    assert loop.now == 2.0
    assert fired == [0, 1]
    # Resuming honours the original bound and then advances exactly to it.
    loop.run(until=10.0)
    assert fired == [0, 1, 2, 3, 4]
    assert loop.now == 10.0


def test_cancelled_events_do_not_fire():
    loop = EventLoop()
    fired = []
    handle = loop.schedule_cancellable_at(1.0, lambda: fired.append("cancelled"))
    loop.schedule_at(2.0, lambda: fired.append("kept"))
    handle.cancel()
    assert handle.cancelled
    loop.run()
    assert fired == ["kept"]


def test_cancel_is_idempotent_and_pending_stays_consistent():
    loop = EventLoop()
    handle = loop.schedule_cancellable(1.0, lambda: None)
    assert loop.pending == 1
    handle.cancel()
    handle.cancel()
    handle.cancel()
    assert loop.pending == 0
    assert loop.run() == 0
    assert loop.pending == 0


def test_cancel_after_fire_is_a_noop():
    loop = EventLoop()
    fired = []
    handle = loop.schedule_cancellable_at(1.0, lambda: fired.append("x"))
    loop.schedule_at(2.0, lambda: fired.append("y"))
    loop.run(until=1.0)
    assert fired == ["x"]
    assert handle.fired
    # Cancelling an already-fired event must not corrupt the live count.
    handle.cancel()
    assert not handle.cancelled
    assert loop.pending == 1
    loop.run()
    assert fired == ["x", "y"]


def test_cancel_then_fire_from_within_callback():
    """An earlier event cancels a later one scheduled at the same time."""
    loop = EventLoop()
    fired = []
    # The canceller is inserted first, so at the shared timestamp it
    # fires first (ties break by insertion order) and the victim —
    # already in the heap — must be skipped, not fired.
    loop.schedule_at(1.0, lambda: victim.cancel())
    victim = loop.schedule_cancellable_at(1.0, lambda: fired.append("victim"))
    fired_count = loop.run()
    assert fired == []
    assert fired_count == 1  # only the canceller counts
    assert loop.now == 1.0


def test_cancelled_events_do_not_count_toward_max_events():
    loop = EventLoop()
    fired = []
    handles = [
        loop.schedule_cancellable_at(float(i + 1), lambda i=i: fired.append(i))
        for i in range(4)
    ]
    handles[0].cancel()
    handles[2].cancel()
    count = loop.run(max_events=2)
    assert count == 2
    assert fired == [1, 3]


def test_pending_counts_only_live_events():
    loop = EventLoop()
    handle = loop.schedule_cancellable_at(1.0, lambda: None)
    loop.schedule_at(2.0, lambda: None)
    assert loop.pending == 2
    handle.cancel()
    assert loop.pending == 1
    loop.run()
    assert loop.pending == 0


def test_scheduling_in_the_past_is_rejected():
    loop = EventLoop()
    loop.schedule_at(5.0, lambda: None)
    loop.run()
    with pytest.raises(MachineError):
        loop.schedule_at(1.0, lambda: None)
    with pytest.raises(MachineError):
        loop.schedule(-0.1, lambda: None)
    with pytest.raises(MachineError):
        loop.schedule_cancellable(-0.1, lambda: None)
    with pytest.raises(MachineError):
        loop.schedule_cancellable_at(1.0, lambda: None)


def test_step_fires_single_event():
    loop = EventLoop()
    fired = []
    loop.schedule_at(1.0, lambda: fired.append("a"))
    loop.schedule_at(2.0, lambda: fired.append("b"))
    assert loop.step() is True
    assert fired == ["a"]
    assert loop.step() is True
    assert loop.step() is False
    assert fired == ["a", "b"]


def test_step_skips_cancelled_events():
    loop = EventLoop()
    fired = []
    handle = loop.schedule_cancellable_at(1.0, lambda: fired.append("dead"))
    loop.schedule_at(2.0, lambda: fired.append("live"))
    handle.cancel()
    assert loop.step() is True
    assert fired == ["live"]
    assert loop.now == 2.0


def test_reentrancy_guard():
    loop = EventLoop()
    errors = []

    def reenter():
        try:
            loop.run()
        except MachineError as exc:
            errors.append(str(exc))

    loop.schedule_at(1.0, reenter)
    loop.run()
    assert errors == ["event loop is not reentrant"]
    # The guard releases afterwards: the loop is usable again.
    fired = []
    loop.schedule(1.0, lambda: fired.append("ok"))
    loop.run()
    assert fired == ["ok"]


def test_reentrancy_guard_releases_after_callback_exception():
    loop = EventLoop()

    def boom():
        raise RuntimeError("callback failed")

    loop.schedule_at(1.0, boom)
    with pytest.raises(RuntimeError):
        loop.run()
    loop.schedule(1.0, lambda: None)
    assert loop.run() == 1


def test_profile_counters():
    loop = EventLoop()
    for i in range(5):
        loop.schedule_at(float(i + 1), lambda: None)
    assert loop.heap_peak == 5
    handle = loop.schedule_cancellable_at(9.0, lambda: None)
    handle.cancel()
    assert loop.heap_peak == 6
    fired = loop.run()
    assert fired == 5
    assert loop.events_fired_total == 5
    assert loop.pending == 0
    # Counters accumulate across runs.
    loop.schedule(1.0, lambda: None)
    loop.step()
    assert loop.events_fired_total == 6
