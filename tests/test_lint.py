"""prismalint: every rule fires on its violating fixture, stays quiet on
the clean one, and the disable pragmas actually disable."""

from pathlib import Path

import pytest

from repro.lint import ALL_RULES, SourceFile, lint_paths
from repro.lint.cli import main
from repro.lint.framework import iter_python_files

FIXTURES = Path(__file__).parent / "lint_fixtures"

#: rule code -> (clean fixture, violating fixture, minimum violations)
CASES = {
    "PL001": ("pl001_clean.py", "pl001_violation.py", 3),
    "PL002": ("pl002_clean.py", "pl002_violation.py", 3),
    "PL003": ("pool/pl003_clean.py", "pool/pl003_violation.py", 3),
    "PL004": ("pool/pl004_clean.py", "pool/pl004_violation.py", 1),
    "PL005": ("pl005_clean.py", "pl005_violation.py", 2),
    "PL006": ("obs/pl006_clean.py", "obs/pl006_violation.py", 2),
    "PL101": ("exec/pl101_clean.py", "exec/pl101_violation.py", 5),
    "PL102": ("pl102_clean.py", "pl102_violation.py", 3),
    "PL103": ("pl103_clean.py", "pl103_violation.py", 3),
    "PL104": ("pl104_clean.py", "pl104_violation.py", 3),
}


def _rules(code):
    return [cls() for cls in ALL_RULES if cls.code == code]


@pytest.mark.parametrize("code", sorted(CASES))
def test_rule_fires_on_violating_fixture(code):
    clean, violating, minimum = CASES[code]
    violations, errors = lint_paths([FIXTURES / violating], _rules(code))
    assert not errors
    assert len(violations) >= minimum
    assert {v.code for v in violations} == {code}
    assert all(v.line > 0 for v in violations)
    assert all(str(FIXTURES / violating) == v.path for v in violations)


@pytest.mark.parametrize("code", sorted(CASES))
def test_rule_quiet_on_clean_fixture(code):
    clean, violating, _ = CASES[code]
    violations, errors = lint_paths([FIXTURES / clean], _rules(code))
    assert not errors
    assert violations == []


@pytest.mark.parametrize("code", sorted(CASES))
def test_cli_exit_codes_and_output(code, capsys):
    clean, violating, _ = CASES[code]
    assert main([str(FIXTURES / violating), "--select", code]) == 1
    out = capsys.readouterr().out
    assert code in out
    # every reported line carries file:line:col
    assert any(":" in line and code in line for line in out.splitlines())
    assert main([str(FIXTURES / clean), "--select", code]) == 0


def test_disable_pragmas_silence_violations():
    violations, errors = lint_paths(
        [FIXTURES / "disabled_violation.py"],
        [cls() for cls in ALL_RULES],
    )
    assert not errors
    assert violations == []


def test_fixture_dir_excluded_from_directory_walk():
    walked = list(iter_python_files([Path(__file__).parent]))
    assert not any("lint_fixtures" in p.parts for p in walked)


def test_repo_tree_is_clean():
    repo_root = Path(__file__).parent.parent
    rules = [cls() for cls in ALL_RULES]
    violations, errors = lint_paths(
        [repo_root / "src", repo_root / "tests"], rules
    )
    assert not errors
    assert violations == [], "\n".join(v.render() for v in violations)


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for cls in ALL_RULES:
        assert cls.code in out


def test_cli_rejects_unknown_rule(capsys):
    assert main(["--select", "PL999", str(FIXTURES / "pl001_clean.py")]) == 2


def test_json_output_is_parseable(capsys):
    import json

    assert main([str(FIXTURES / "pl001_violation.py"), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["violations"]
    assert all(v["code"] == "PL001" for v in payload["violations"])


def test_syntax_error_reported_not_crashed(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def nope(:\n")
    assert main([str(bad)]) == 2
    assert "syntax error" in capsys.readouterr().out


def test_line_level_pragma_only_covers_its_line(tmp_path):
    src = tmp_path / "partial.py"
    src.write_text(
        "import time\n"
        "a = time.time()  # prismalint: disable=PL001 -- allowed here\n"
        "b = time.time()\n"
    )
    violations, _ = lint_paths([src], _rules("PL001"))
    assert [v.line for v in violations] == [3]


def test_sourcefile_records_file_and_line_disables(tmp_path):
    src = tmp_path / "pragmas.py"
    src.write_text(
        "# prismalint: disable=PL005\n"
        "x = 1  # prismalint: disable=PL001, PL002\n"
    )
    source = SourceFile.load(src)
    assert source.file_disables == {"PL005"}
    assert source.line_disables == {2: {"PL001", "PL002"}}
    assert source.is_disabled("PL005", 99)
    assert source.is_disabled("PL001", 2)
    assert not source.is_disabled("PL001", 3)


def test_file_level_pragma_covers_whole_file(tmp_path):
    src = tmp_path / "filewide.py"
    src.write_text(
        "# prismalint: disable=PL001 -- fixture exercises wall-clock calls\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.time()\n"
    )
    violations, _ = lint_paths([src], _rules("PL001"))
    assert violations == []


def test_disable_all_silences_every_rule(tmp_path):
    src = tmp_path / "allowlist.py"
    src.write_text(
        "# prismalint: disable=all -- generated file\n"
        "import time\n"
        "import random\n"
        "a = time.time()\n"
        "b = random.random()\n"
    )
    violations, errors = lint_paths([src], [cls() for cls in ALL_RULES])
    assert not errors
    assert violations == []


def test_pragma_with_multiple_codes_and_reason(tmp_path):
    src = tmp_path / "multi.py"
    src.write_text(
        "import time\n"
        "import random\n"
        "x = (time.time(), random.random())"
        "  # prismalint: disable=PL001, PL002 -- both justified here\n"
    )
    violations, _ = lint_paths([src], _rules("PL001") + _rules("PL002"))
    assert violations == []


def test_unknown_pragma_code_reported_as_pl000(tmp_path):
    src = tmp_path / "typo.py"
    # Concatenated so the repo-wide lint does not read this literal as a
    # real (typo'd) pragma on this line of the test file itself.
    src.write_text("x = 1  # prismalint: " + "disable=PL999 -- typo'd code\n")
    violations, errors = lint_paths([src], _rules("PL001"))
    assert not errors
    assert [(v.code, v.line) for v in violations] == [("PL000", 1)]
    assert "PL999" in violations[0].message


def test_pl000_itself_can_be_disabled(tmp_path):
    src = tmp_path / "meta.py"
    src.write_text(
        "x = 1  # prismalint: disable=PL999, PL000 -- transitional pragma\n"
    )
    violations, _ = lint_paths([src], _rules("PL001"))
    assert violations == []


def test_write_baseline_then_lint_against_it(tmp_path, capsys):
    base = tmp_path / "base.json"
    violating = str(FIXTURES / "pl001_violation.py")
    assert main([violating, "--select", "PL001", "--write-baseline", str(base)]) == 0
    assert "wrote" in capsys.readouterr().out
    # Same findings, now grandfathered: exit 0, no stale notes.
    assert main([violating, "--select", "PL001", "--baseline", str(base)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out
    assert "stale" not in out


def test_stale_baseline_entries_are_noted_not_fatal(tmp_path, capsys):
    base = tmp_path / "base.json"
    violating = str(FIXTURES / "pl001_violation.py")
    clean = str(FIXTURES / "pl001_clean.py")
    assert main([violating, "--select", "PL001", "--write-baseline", str(base)]) == 0
    capsys.readouterr()
    # The baseline covers findings the clean file no longer has.
    assert main([clean, "--select", "PL001", "--baseline", str(base)]) == 0
    assert "stale" in capsys.readouterr().out


def test_no_baseline_flag_shows_the_unfiltered_truth(tmp_path, capsys):
    base = tmp_path / "base.json"
    violating = str(FIXTURES / "pl001_violation.py")
    assert main([violating, "--select", "PL001", "--write-baseline", str(base)]) == 0
    capsys.readouterr()
    code = main(
        [violating, "--select", "PL001", "--baseline", str(base), "--no-baseline"]
    )
    assert code == 1
    assert "PL001" in capsys.readouterr().out


def test_malformed_baseline_is_a_usage_error(tmp_path, capsys):
    base = tmp_path / "bad.json"
    base.write_text('{"version": 99}\n')
    clean = str(FIXTURES / "pl001_clean.py")
    assert main([clean, "--baseline", str(base)]) == 2
    assert "baseline" in capsys.readouterr().err


def test_json_report_carries_counts_and_notes(tmp_path, capsys):
    import json

    base = tmp_path / "base.json"
    violating = str(FIXTURES / "pl001_violation.py")
    clean = str(FIXTURES / "pl001_clean.py")
    assert main([violating, "--select", "PL001", "--write-baseline", str(base)]) == 0
    capsys.readouterr()
    assert (
        main([clean, "--select", "PL001", "--baseline", str(base), "--format", "json"])
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["violations"] == []
    assert payload["counts"] == {}
    assert any("stale" in note for note in payload["notes"])
    assert main([violating, "--select", "PL001", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"].get("PL001", 0) >= 3


def test_failing_summary_line_lists_per_rule_counts(capsys):
    assert main([str(FIXTURES / "pl001_violation.py"), "--select", "PL001"]) == 1
    summary = capsys.readouterr().out.strip().splitlines()[-1]
    assert summary.startswith("prismalint:")
    assert "PL001 x" in summary
