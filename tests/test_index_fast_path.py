"""Tests for index-accelerated selection inside the OFM (Section 2.5's
'various storage structures' actually earning their keep)."""

import pytest

from repro import MachineConfig, PrismaDB
from repro.exec.expressions import Comparison, and_, col, eq, lit
from repro.machine import Machine
from repro.ofm import OFMProfile, OneFragmentManager
from repro.pool import PoolRuntime
from repro.storage import DataType, Schema

SCHEMA = Schema.of(id=DataType.INT, grp=DataType.INT, name=DataType.STRING)


@pytest.fixture
def ofm():
    runtime = PoolRuntime(Machine(MachineConfig(n_nodes=2, disk_nodes=(0,))))
    ofm = runtime.spawn(
        OneFragmentManager, node=1, schema=SCHEMA, profile=OFMProfile.QUERY
    )
    ofm.bulk_load([(i, i % 10, f"n{i}") for i in range(500)])
    return ofm


class TestFilteredScan:
    def test_hash_index_point_lookup(self, ofm):
        ofm.create_index("byid", ["id"], unique=True, method="hash")
        rows, used_index = ofm.filtered_scan(eq(col(0), lit(42)))
        assert used_index
        assert rows == [(42, 2, "n42")]

    def test_no_index_falls_back_to_scan(self, ofm):
        rows, used_index = ofm.filtered_scan(eq(col(0), lit(42)))
        assert not used_index
        assert rows == [(42, 2, "n42")]

    def test_ordered_index_range(self, ofm):
        ofm.create_index("byid", ["id"], unique=False, method="btree")
        for op, expected in (
            ("<", list(range(5))),
            ("<=", list(range(6))),
            (">", list(range(495, 500))),
            (">=", list(range(494, 500))),
        ):
            bound = 5 if op.startswith("<") else 494
            rows, used_index = ofm.filtered_scan(Comparison(op, col(0), lit(bound)))
            assert used_index, op
            assert sorted(r[0] for r in rows) == expected, op

    def test_hash_index_cannot_serve_range(self, ofm):
        ofm.create_index("byid", ["id"], unique=True, method="hash")
        rows, used_index = ofm.filtered_scan(Comparison("<", col(0), lit(5)))
        assert not used_index
        assert len(rows) == 5

    def test_residual_conjuncts_applied(self, ofm):
        ofm.create_index("bygrp", ["grp"], unique=False, method="hash")
        predicate = and_(eq(col(1), lit(3)), Comparison(">", col(0), lit(400)))
        rows, used_index = ofm.filtered_scan(predicate)
        assert used_index
        assert all(row[1] == 3 and row[0] > 400 for row in rows)
        assert len(rows) == 10  # 403, 413, ..., 493

    def test_index_scan_cheaper_than_full_scan(self, ofm):
        ofm.create_index("byid", ["id"], unique=True, method="hash")
        before = ofm.ready_at
        ofm.filtered_scan(eq(col(0), lit(1)))
        indexed_cost = ofm.ready_at - before
        before = ofm.ready_at
        ofm.filtered_scan(eq(col(2), lit("n1")))  # no index on name
        scan_cost = ofm.ready_at - before
        assert indexed_cost < scan_cost / 10

    def test_null_literal_not_indexed(self, ofm):
        ofm.create_index("byid", ["id"], unique=True, method="hash")
        rows, used_index = ofm.filtered_scan(eq(col(0), lit(None)))
        assert not used_index
        assert rows == []


class TestThroughTheEngine:
    @pytest.fixture
    def db(self):
        db = PrismaDB(MachineConfig(n_nodes=8, disk_nodes=(0,)))
        db.execute(
            "CREATE TABLE t (id INT PRIMARY KEY, v INT)"
            " FRAGMENTED BY HASH(v) INTO 4"
        )
        db.bulk_load("t", [(i, i % 20) for i in range(2000)])
        db.quiesce()
        return db

    def test_pk_index_used_automatically(self, db):
        result = db.execute("SELECT v FROM t WHERE id = 77")
        assert result.rows == [(77 % 20,)]
        assert result.report.index_scans > 0

    def test_secondary_btree_serves_ranges(self, db):
        db.execute("CREATE INDEX o ON t (id) USING BTREE")
        result = db.execute("SELECT COUNT(*) FROM t WHERE id < 50")
        assert result.scalar() == 50
        assert result.report.index_scans == 4

    def test_index_combines_with_fragment_pruning(self, db):
        db.execute("CREATE INDEX o ON t (id) USING BTREE")
        # ids 1990..1999 have v = 10..19, so v = 0 matches nothing, but
        # the point predicate on v still prunes to a single fragment.
        result = db.execute("SELECT COUNT(*) FROM t WHERE id >= 1990 AND v = 0")
        assert result.scalar() == 0
        assert result.report.fragments_pruned == 3

    def test_answers_identical_with_and_without_index(self, db):
        no_index = db.query("SELECT id FROM t WHERE v = 7 ORDER BY id")
        db.execute("CREATE INDEX byv ON t (v)")
        with_index = db.query("SELECT id FROM t WHERE v = 7 ORDER BY id")
        assert no_index == with_index

    def test_indexed_point_query_faster(self, db):
        slow = db.execute("SELECT COUNT(*) FROM t WHERE id + 0 = 5")  # defeats index
        fast = db.execute("SELECT COUNT(*) FROM t WHERE id = 5")
        assert fast.response_time < slow.response_time
