"""Tests for SQL name resolution and plan construction."""

import pytest

from repro.errors import BindError
from repro.sql import Binder, parse_statement
from repro.algebra.local_exec import LocalExecutor
from repro.algebra.plan import (
    AggregateNode,
    ClosureNode,
    DistinctNode,
    LimitNode,
    SortNode,
)
from repro.storage import DataType, Schema

CATALOG = {
    "emp": Schema.of(id=DataType.INT, name=DataType.STRING, dept=DataType.STRING, sal=DataType.FLOAT),
    "dept": Schema.of(dname=DataType.STRING, city=DataType.STRING),
    "edge": Schema.of(src=DataType.INT, dst=DataType.INT),
}

TABLES = {
    "emp": [
        (1, "ada", "eng", 120.0), (2, "bob", "eng", 95.0),
        (3, "cy", "sales", 80.0), (4, "dee", "sales", 85.0),
        (5, "eve", "hr", 70.0),
    ],
    "dept": [("eng", "ams"), ("sales", "rtm"), ("hr", "utr")],
    "edge": [(1, 2), (2, 3), (3, 4)],
}


@pytest.fixture
def binder():
    return Binder(CATALOG)


def bind_run(binder, sql):
    plan = binder.bind_query(parse_statement(sql))
    return plan, LocalExecutor(TABLES).run(plan)


class TestNameResolution:
    def test_unknown_table(self, binder):
        with pytest.raises(BindError):
            binder.bind_query(parse_statement("SELECT x FROM nope"))

    def test_unknown_column(self, binder):
        with pytest.raises(BindError):
            binder.bind_query(parse_statement("SELECT bogus FROM emp"))

    def test_ambiguous_column(self, binder):
        with pytest.raises(BindError) as info:
            binder.bind_query(
                parse_statement("SELECT dname FROM dept d1, dept d2")
            )
        assert "ambiguous" in str(info.value)

    def test_qualified_resolution(self, binder):
        plan, rows = bind_run(
            binder,
            "SELECT d1.city FROM dept d1, dept d2 WHERE d1.dname = d2.dname AND d2.city = 'ams'",
        )
        assert rows == [("ams",)]

    def test_duplicate_alias_rejected(self, binder):
        with pytest.raises(BindError):
            binder.bind_query(parse_statement("SELECT 1 FROM emp e, dept e"))

    def test_star_expansion(self, binder):
        plan, _ = bind_run(binder, "SELECT * FROM emp")
        assert plan.schema.names() == ["id", "name", "dept", "sal"]

    def test_qualified_star(self, binder):
        plan, _ = bind_run(
            binder, "SELECT d.* FROM emp e JOIN dept d ON e.dept = d.dname"
        )
        assert plan.schema.names() == ["dname", "city"]

    def test_unknown_star_qualifier(self, binder):
        with pytest.raises(BindError):
            binder.bind_query(parse_statement("SELECT z.* FROM emp e"))


class TestQueries:
    def test_join_where_order(self, binder):
        _, rows = bind_run(
            binder,
            "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.dname"
            " WHERE d.city = 'rtm' ORDER BY name",
        )
        assert rows == [("cy",), ("dee",)]

    def test_left_join_pads_nulls(self, binder):
        _, rows = bind_run(
            binder,
            "SELECT d.dname, e.name FROM dept d LEFT JOIN emp e"
            " ON d.dname = e.dept AND e.sal > 100 ORDER BY dname, 2",
        )
        assert ("hr", None) in rows
        assert ("eng", "ada") in rows

    def test_closure(self, binder):
        _, rows = bind_run(
            binder, "SELECT dst FROM CLOSURE(edge) WHERE src = 1 ORDER BY dst"
        )
        assert rows == [(2,), (3,), (4,)]

    def test_closure_requires_binary(self, binder):
        with pytest.raises(BindError):
            binder.bind_query(parse_statement("SELECT * FROM CLOSURE(emp)"))

    def test_distinct_and_limit(self, binder):
        plan, rows = bind_run(
            binder, "SELECT DISTINCT dept FROM emp ORDER BY dept LIMIT 2"
        )
        assert isinstance(plan, LimitNode)
        assert rows == [("eng",), ("hr",)]
        assert any(isinstance(n, DistinctNode) for n in plan.walk())

    def test_order_by_position(self, binder):
        _, rows = bind_run(binder, "SELECT name, sal FROM emp ORDER BY 2 DESC LIMIT 1")
        assert rows == [("ada", 120.0)]

    def test_order_by_unknown_column(self, binder):
        with pytest.raises(BindError):
            binder.bind_query(
                parse_statement("SELECT name FROM emp ORDER BY salary_typo")
            )

    def test_order_by_position_out_of_range(self, binder):
        with pytest.raises(BindError):
            binder.bind_query(parse_statement("SELECT name FROM emp ORDER BY 5"))

    def test_select_without_from(self, binder):
        _, rows = bind_run(binder, "SELECT 2 + 3 AS five")
        assert rows == [(5,)]

    def test_set_operation(self, binder):
        _, rows = bind_run(
            binder,
            "SELECT dept FROM emp WHERE sal > 100"
            " UNION SELECT dname FROM dept WHERE city = 'utr' ORDER BY 1",
        )
        assert rows == [("eng",), ("hr",)]

    def test_set_operation_arity_mismatch(self, binder):
        with pytest.raises(BindError):
            binder.bind_query(
                parse_statement("SELECT id, name FROM emp UNION SELECT dname FROM dept")
            )


class TestAggregation:
    def test_group_by_with_having(self, binder):
        plan, rows = bind_run(
            binder,
            "SELECT dept, COUNT(*) AS n, AVG(sal) FROM emp"
            " GROUP BY dept HAVING COUNT(*) > 1 ORDER BY dept",
        )
        assert rows == [("eng", 2, 107.5), ("sales", 2, 82.5)]
        assert any(isinstance(n, AggregateNode) for n in plan.walk())

    def test_aggregate_arithmetic_in_select(self, binder):
        _, rows = bind_run(binder, "SELECT SUM(sal) / COUNT(*) FROM emp")
        assert rows == [(90.0,)]

    def test_group_expression(self, binder):
        _, rows = bind_run(
            binder,
            "SELECT sal > 90, COUNT(*) FROM emp GROUP BY sal > 90 ORDER BY 1",
        )
        assert rows == [(False, 3), (True, 2)]

    def test_non_grouped_column_rejected(self, binder):
        with pytest.raises(BindError) as info:
            binder.bind_query(
                parse_statement("SELECT name, COUNT(*) FROM emp GROUP BY dept")
            )
        assert "GROUP BY" in str(info.value)

    def test_nested_aggregates_rejected(self, binder):
        with pytest.raises(BindError):
            binder.bind_query(parse_statement("SELECT SUM(COUNT(*)) FROM emp"))

    def test_aggregate_in_where_rejected(self, binder):
        with pytest.raises(BindError):
            binder.bind_query(
                parse_statement("SELECT dept FROM emp WHERE COUNT(*) > 1")
            )

    def test_duplicate_aggregates_computed_once(self, binder):
        plan, rows = bind_run(
            binder, "SELECT COUNT(*), COUNT(*) + 1 FROM emp"
        )
        agg = next(n for n in plan.walk() if isinstance(n, AggregateNode))
        assert len(agg.aggregates) == 1
        assert rows == [(5, 6)]

    def test_star_with_group_by_rejected(self, binder):
        with pytest.raises(BindError):
            binder.bind_query(parse_statement("SELECT * FROM emp GROUP BY dept"))


class TestDmlBinding:
    def test_insert_columns_reordered_and_defaulted(self, binder):
        bound = binder.bind_insert(
            parse_statement("INSERT INTO emp (sal, id) VALUES (50.0, 9)")
        )
        assert bound.rows == [(9, None, None, 50.0)]

    def test_insert_arity_mismatch(self, binder):
        with pytest.raises(BindError):
            binder.bind_insert(parse_statement("INSERT INTO dept VALUES ('x')"))

    def test_insert_non_constant_rejected(self, binder):
        with pytest.raises(BindError):
            binder.bind_insert(parse_statement("INSERT INTO dept VALUES (dname, 'x')"))

    def test_insert_constant_expression_evaluated(self, binder):
        bound = binder.bind_insert(
            parse_statement("INSERT INTO edge VALUES (1 + 1, 2 * 3)")
        )
        assert bound.rows == [(2, 6)]

    def test_update_binding(self, binder):
        bound = binder.bind_update(
            parse_statement("UPDATE emp SET sal = sal * 1.1 WHERE dept = 'eng'")
        )
        assert bound.assignments[0][0] == 3
        assert bound.predicate is not None

    def test_update_duplicate_assignment(self, binder):
        with pytest.raises(BindError):
            binder.bind_update(
                parse_statement("UPDATE emp SET sal = 1.0, sal = 2.0")
            )

    def test_delete_binding(self, binder):
        bound = binder.bind_delete(parse_statement("DELETE FROM emp"))
        assert bound.predicate is None
