"""Property tests: physical operators against naive Python oracles,
fragmentation routing invariants, and WAL round-trips."""

from hypothesis import given, settings, strategies as st

from repro.exec.compiler import compile_key
from repro.exec.operators import (
    AggSpec,
    JoinKind,
    WorkMeter,
    aggregate_rows,
    difference_rows,
    distinct_rows,
    hash_join,
    intersect_rows,
    merge_join,
    nested_loop_join,
    sort_rows,
    union_rows,
)
from repro.core.fragmentation import (
    HashFragmentation,
    RangeFragmentation,
    stable_hash,
)

_values = st.one_of(st.integers(-20, 20), st.sampled_from(["a", "b", "c"]))
_int_rows = st.lists(st.tuples(st.integers(0, 6), st.integers(-9, 9)), max_size=20)


def key0(row):
    return (row[0],)


class TestJoinProperties:
    @given(left=_int_rows, right=_int_rows)
    @settings(max_examples=150, deadline=None)
    def test_hash_join_matches_nested_loop(self, left, right):
        from repro.exec.expressions import Comparison, col

        hashed = hash_join(left, right, key0, key0, WorkMeter())
        condition = lambda row: row[0] == row[2]  # noqa: E731
        looped = nested_loop_join(left, right, condition, WorkMeter())
        assert sorted(hashed) == sorted(looped)

    @given(left=_int_rows, right=_int_rows)
    @settings(max_examples=100, deadline=None)
    def test_merge_join_matches_hash_join(self, left, right):
        merged = merge_join(left, right, key0, key0, WorkMeter())
        hashed = hash_join(left, right, key0, key0, WorkMeter())
        assert sorted(merged) == sorted(hashed)

    @given(left=_int_rows, right=_int_rows)
    @settings(max_examples=100, deadline=None)
    def test_semi_plus_anti_partition_left(self, left, right):
        semi = hash_join(left, right, key0, key0, WorkMeter(), JoinKind.SEMI)
        anti = hash_join(left, right, key0, key0, WorkMeter(), JoinKind.ANTI)
        assert sorted(semi + anti) == sorted(left)
        right_keys = {key0(r) for r in right}
        assert all(key0(row) in right_keys for row in semi)
        assert all(key0(row) not in right_keys for row in anti)

    @given(left=_int_rows, right=_int_rows)
    @settings(max_examples=100, deadline=None)
    def test_left_outer_covers_left(self, left, right):
        out = hash_join(
            left, right, key0, key0, WorkMeter(), JoinKind.LEFT_OUTER, right_width=2
        )
        assert sorted(row[:2] for row in out if row[2] is not None) == sorted(
            row[:2]
            for row in hash_join(left, right, key0, key0, WorkMeter())
        )
        # Every left row appears at least once.
        assert {row[:2] for row in out} >= set(left)


class TestSetAndSortProperties:
    @given(left=_int_rows, right=_int_rows)
    @settings(max_examples=100, deadline=None)
    def test_set_operations_match_python_sets(self, left, right):
        left_set, right_set = set(left), set(right)
        assert set(union_rows(left, right, WorkMeter())) == left_set | right_set
        assert set(intersect_rows(left, right, WorkMeter())) == left_set & right_set
        assert set(difference_rows(left, right, WorkMeter())) == left_set - right_set

    @given(rows=_int_rows)
    @settings(max_examples=100, deadline=None)
    def test_distinct_matches_set(self, rows):
        out = distinct_rows(rows, WorkMeter())
        assert set(out) == set(rows)
        assert len(out) == len(set(rows))

    @given(rows=_int_rows, descending=st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_sort_matches_sorted(self, rows, descending):
        out = sort_rows(rows, [0, 1], [descending, descending])
        assert out == sorted(rows, reverse=descending)

    @given(rows=st.lists(st.tuples(st.one_of(st.none(), st.integers(-5, 5))), max_size=15))
    @settings(max_examples=100, deadline=None)
    def test_sort_nulls_first(self, rows):
        out = sort_rows(rows, [0])
        nulls = [row for row in out if row[0] is None]
        assert out[: len(nulls)] == nulls


class TestAggregateProperties:
    @given(rows=_int_rows)
    @settings(max_examples=100, deadline=None)
    def test_grouped_sums_match_python(self, rows):
        out = aggregate_rows(
            rows,
            compile_key([0]),
            [AggSpec("count", None), AggSpec("sum", lambda r: r[1])],
            WorkMeter(),
        )
        expected = {}
        for group, value in rows:
            count, total = expected.get(group, (0, 0))
            expected[group] = (count + 1, total + value)
        assert {row[0]: (row[1], row[2]) for row in out} == expected

    @given(rows=_int_rows)
    @settings(max_examples=100, deadline=None)
    def test_min_max_bound_the_data(self, rows):
        out = aggregate_rows(
            rows, None,
            [AggSpec("min", lambda r: r[1]), AggSpec("max", lambda r: r[1])],
            WorkMeter(),
        )
        (minimum, maximum), = [tuple(row) for row in out]
        if rows:
            assert minimum == min(r[1] for r in rows)
            assert maximum == max(r[1] for r in rows)
        else:
            assert minimum is None and maximum is None


class TestFragmentationProperties:
    @given(
        value=_values,
        n=st.integers(1, 16),
    )
    @settings(max_examples=200, deadline=None)
    def test_hash_routing_deterministic_and_prunable(self, value, n):
        scheme = HashFragmentation(0, n)
        home = scheme.fragment_of((value,))
        assert 0 <= home < n
        assert scheme.fragment_of((value,)) == home
        if value is not None:
            assert scheme.prunable_fragments(0, value) == [home]

    @given(
        boundaries=st.lists(
            st.integers(-50, 50), min_size=1, max_size=5, unique=True
        ).map(sorted),
        value=st.integers(-100, 100),
    )
    @settings(max_examples=200, deadline=None)
    def test_range_routing_orders_values(self, boundaries, value):
        scheme = RangeFragmentation(0, tuple(boundaries))
        home = scheme.fragment_of((value,))
        assert 0 <= home < len(boundaries) + 1
        # Values below the first boundary land in fragment 0; at or above
        # the last boundary, in the last fragment.
        if value < boundaries[0]:
            assert home == 0
        if value >= boundaries[-1]:
            assert home == len(boundaries)
        assert scheme.prunable_fragments(0, value) == [home]

    @given(value=_values)
    @settings(max_examples=200, deadline=None)
    def test_stable_hash_is_non_negative(self, value):
        assert stable_hash(value) >= 0


class TestWalRoundTrip:
    _records = st.lists(
        st.tuples(
            st.sampled_from("IDUPCA"),
            st.integers(1, 9),
            st.integers(0, 50),
            st.tuples(st.integers(-5, 5), st.sampled_from(["x", "y"])),
        ),
        max_size=15,
    )

    @given(spec=_records, chunks=st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_any_record_sequence_survives(self, spec, chunks):
        from repro.machine import Machine, MachineConfig
        from repro.ofm.wal import (
            AbortRecord,
            CommitRecord,
            DeleteRecord,
            InsertRecord,
            PrepareRecord,
            UpdateRecord,
            WriteAheadLog,
        )

        machine = Machine(MachineConfig(n_nodes=2, disk_nodes=(0,)))
        wal = WriteAheadLog(machine, 1, "prop")
        written = []
        for index, (kind, txn, rid, row) in enumerate(spec):
            record = {
                "I": lambda: InsertRecord(txn, rid, row),
                "D": lambda: DeleteRecord(txn, rid, row),
                "U": lambda: UpdateRecord(txn, rid, row, row),
                "P": lambda: PrepareRecord(txn),
                "C": lambda: CommitRecord(txn),
                "A": lambda: AbortRecord(txn),
            }[kind]()
            wal.append(record)
            written.append(record)
            if index % chunks == chunks - 1:
                wal.force()
        wal.force()
        recovered, _ = wal.read_records()
        assert recovered == written
        wal.wipe()
