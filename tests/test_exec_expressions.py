"""Tests for the expression AST and its structural utilities."""

import pytest

from repro.errors import ExpressionError
from repro.exec.expressions import (
    Arithmetic,
    BoolOp,
    ColumnRef,
    Comparison,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    and_,
    col,
    columns_used,
    conjuncts,
    default_name,
    eq,
    infer_result_type,
    is_constant,
    lit,
    or_,
    remap_columns,
    validate_against,
)
from repro.storage import DataType, Schema


class TestConstruction:
    def test_bad_operators_rejected(self):
        with pytest.raises(ExpressionError):
            Comparison("==", col(0), lit(1))
        with pytest.raises(ExpressionError):
            Arithmetic("**", col(0), lit(1))
        with pytest.raises(ExpressionError):
            BoolOp("xor", (lit(True), lit(False)))

    def test_boolop_needs_two_operands(self):
        with pytest.raises(ExpressionError):
            BoolOp("and", (lit(True),))

    def test_unknown_function_rejected(self):
        with pytest.raises(ExpressionError):
            FunctionCall("sqrt", (lit(4),))

    def test_function_arity_checked(self):
        with pytest.raises(ExpressionError):
            FunctionCall("abs", (lit(1), lit(2)))

    def test_and_flattens_nested_ands(self):
        expr = and_(eq(col(0), lit(1)), and_(eq(col(1), lit(2)), eq(col(2), lit(3))))
        assert isinstance(expr, BoolOp)
        assert len(expr.operands) == 3

    def test_and_or_single_operand_passthrough(self):
        inner = eq(col(0), lit(1))
        assert and_(inner) is inner
        assert or_(inner) is inner


class TestIdentity:
    def test_structural_equality_and_hash(self):
        a = and_(eq(col(0, "x"), lit(5)), Comparison("<", col(1), lit(2.0)))
        b = and_(eq(col(0, "x"), lit(5)), Comparison("<", col(1), lit(2.0)))
        assert a == b
        assert hash(a) == hash(b)
        assert a != or_(eq(col(0), lit(5)), Comparison("<", col(1), lit(2.0)))

    def test_column_name_is_cosmetic_for_identity(self):
        assert col(0, "a") == col(0, "b")

    def test_literal_type_distinguished(self):
        # 1 and True are equal in Python; identity keys must separate them.
        assert lit(1) != lit(True)
        assert lit(1) != lit(1.0)


class TestSqlRendering:
    def test_to_sql_round_trippable_shapes(self):
        expr = and_(
            Comparison(">", col(0, "salary"), lit(100)),
            Like(col(1, "name"), "a%"),
            IsNull(col(2, "bonus")),
        )
        text = expr.to_sql()
        assert "salary > 100" in text
        assert "name LIKE 'a%'" in text
        assert "bonus IS NULL" in text

    def test_string_escaping(self):
        assert lit("o'brien").to_sql() == "'o''brien'"

    def test_null_and_bool_literals(self):
        assert lit(None).to_sql() == "NULL"
        assert lit(True).to_sql() == "TRUE"

    def test_in_and_not(self):
        expr = Not(InList(col(0, "x"), (1, 2)))
        assert expr.to_sql() == "(NOT (x IN (1, 2)))"


class TestStructuralUtilities:
    def test_columns_used(self):
        expr = and_(
            eq(col(0), lit(1)),
            Comparison("<", Arithmetic("+", col(2), col(4)), lit(9)),
        )
        assert columns_used(expr) == {0, 2, 4}

    def test_conjuncts_splits_only_top_level_ands(self):
        expr = and_(
            eq(col(0), lit(1)),
            or_(eq(col(1), lit(2)), eq(col(2), lit(3))),
            eq(col(3), lit(4)),
        )
        parts = conjuncts(expr)
        assert len(parts) == 3

    def test_conjuncts_of_non_and_is_singleton(self):
        expr = eq(col(0), lit(1))
        assert conjuncts(expr) == [expr]

    def test_remap_columns(self):
        expr = Comparison(">", col(3, "c"), col(5, "d"))
        remapped = remap_columns(expr, {3: 0, 5: 1})
        assert columns_used(remapped) == {0, 1}

    def test_remap_missing_column_raises(self):
        with pytest.raises(ExpressionError):
            remap_columns(eq(col(3), lit(1)), {0: 0})

    def test_remap_preserves_all_node_kinds(self):
        expr = or_(
            Not(IsNull(col(0))),
            InList(col(1), (1, 2)),
            Like(col(2), "x%"),
            Comparison("=", FunctionCall("abs", (Negate(col(3)),)), lit(4)),
            Comparison("<", Arithmetic("%", col(4), lit(2)), lit(1)),
        )
        remapped = remap_columns(expr, {i: i + 10 for i in range(5)})
        assert columns_used(remapped) == {10, 11, 12, 13, 14}

    def test_is_constant(self):
        assert is_constant(Arithmetic("+", lit(1), lit(2)))
        assert not is_constant(Arithmetic("+", col(0), lit(2)))

    def test_validate_against(self):
        schema = Schema.of(a=DataType.INT, b=DataType.INT)
        validate_against(eq(col(1), lit(2)), schema)
        with pytest.raises(ExpressionError):
            validate_against(eq(col(5), lit(2)), schema)

    def test_default_name(self):
        assert default_name(col(0, "salary"), 0) == "salary"
        assert default_name(Arithmetic("+", col(0), lit(1)), 2) == "col2"


class TestTypeInference:
    def setup_method(self):
        self.schema = Schema.of(
            i=DataType.INT, f=DataType.FLOAT, s=DataType.STRING, b=DataType.BOOL
        )

    def test_column_and_literal_types(self):
        assert infer_result_type(col(0, "i"), self.schema) is DataType.INT
        assert infer_result_type(lit(2.5), self.schema) is DataType.FLOAT

    def test_arithmetic_widening(self):
        int_plus_int = Arithmetic("+", col(0), lit(1))
        assert infer_result_type(int_plus_int, self.schema) is DataType.INT
        int_plus_float = Arithmetic("+", col(0), col(1))
        assert infer_result_type(int_plus_float, self.schema) is DataType.FLOAT

    def test_division_always_float(self):
        expr = Arithmetic("/", col(0), lit(2))
        assert infer_result_type(expr, self.schema) is DataType.FLOAT

    def test_predicates_are_bool(self):
        assert infer_result_type(eq(col(0), lit(1)), self.schema) is DataType.BOOL
        assert infer_result_type(IsNull(col(2)), self.schema) is DataType.BOOL
