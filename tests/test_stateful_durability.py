"""Stateful property test: the database equals a dict, always.

A hypothesis rule-based state machine drives a PrismaDB with random
inserts/updates/deletes — some autocommitted, some inside explicit
transactions that may roll back — interleaved with checkpoints and
crash/restart cycles.  An in-memory dict tracks what *committed*; after
every step the database must agree with it exactly.

This is the durability/atomicity contract of Sections 2.2 and 3.2
exercised as an invariant rather than as hand-picked scenarios.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro import MachineConfig, PrismaDB
from repro.errors import StorageError

KEYS = st.integers(min_value=0, max_value=19)
VALUES = st.integers(min_value=-100, max_value=100)


class DurabilityMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.db = PrismaDB(MachineConfig(n_nodes=4, disk_nodes=(0, 2)))
        self.db.execute(
            "CREATE TABLE t (k INT PRIMARY KEY, v INT)"
            " FRAGMENTED BY HASH(k) INTO 3"
        )
        #: committed state
        self.committed: dict[int, int] = {}
        #: state as seen inside the open transaction (None = autocommit)
        self.session = self.db.session()
        self.pending: dict[int, int] | None = None

    # -- helpers -------------------------------------------------------------

    def _visible(self) -> dict[int, int]:
        return self.pending if self.pending is not None else self.committed

    def _target(self) -> dict[int, int]:
        """The dict the next statement mutates."""
        if self.pending is not None:
            return self.pending
        return self.committed

    # -- autocommit / in-txn DML ------------------------------------------------

    @rule(k=KEYS, v=VALUES)
    def insert(self, k, v):
        visible = self._visible()
        if k in visible:
            with pytest.raises(StorageError):
                self.session.execute(f"INSERT INTO t VALUES ({k}, {v})")
            # Statement-level failure aborts the enclosing transaction
            # (the engine has no savepoints): pending work is gone.
            self.pending = None
            assert not self.session.in_transaction
            return
        self.session.execute(f"INSERT INTO t VALUES ({k}, {v})")
        self._target()[k] = v

    @rule(k=KEYS, v=VALUES)
    def update(self, k, v):
        result = self.session.execute(f"UPDATE t SET v = {v} WHERE k = {k}")
        target = self._target()
        assert result.affected_rows == (1 if k in target else 0)
        if k in target:
            target[k] = v

    @rule(k=KEYS)
    def delete(self, k):
        result = self.session.execute(f"DELETE FROM t WHERE k = {k}")
        target = self._target()
        assert result.affected_rows == (1 if k in target else 0)
        target.pop(k, None)

    @rule(v=VALUES)
    def update_all(self, v):
        self.session.execute(f"UPDATE t SET v = {v}")
        target = self._target()
        for k in target:
            target[k] = v

    # -- transaction control -------------------------------------------------------

    @precondition(lambda self: self.pending is None)
    @rule()
    def begin(self):
        self.session.begin()
        self.pending = dict(self.committed)

    @precondition(lambda self: self.pending is not None)
    @rule()
    def commit(self):
        self.session.commit()
        assert self.pending is not None
        self.committed = self.pending
        self.pending = None

    @precondition(lambda self: self.pending is not None)
    @rule()
    def rollback(self):
        self.session.rollback()
        self.pending = None

    # -- durability events ------------------------------------------------------------

    @rule()
    def checkpoint(self):
        if self.pending is not None:
            self.session.commit()
            self.committed = self.pending
            self.pending = None
        self.db.checkpoint()

    @rule()
    def crash_and_restart(self):
        # Whatever was in flight dies with the machine.
        self.db.crash()
        self.db.restart()
        self.pending = None
        self.session = self.db.session()

    # -- the contract -------------------------------------------------------------------

    @invariant()
    def database_equals_model(self):
        rows = dict(self.session.query("SELECT k, v FROM t"))
        assert rows == self._visible()


TestDurability = DurabilityMachine.TestCase
TestDurability.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
