"""Tests for fragment replication (Section 2.2: copies of base fragments)."""

import pytest

from repro import MachineConfig, PrismaDB
from repro.errors import CatalogError
from repro.core.catalog import Catalog


def make_db(n_nodes=12):
    return PrismaDB(MachineConfig(n_nodes=n_nodes, disk_nodes=(0, 6)))


@pytest.fixture
def db():
    db = make_db()
    db.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, v INT)"
        " FRAGMENTED BY HASH(id) INTO 3 WITH 2 REPLICAS"
    )
    db.bulk_load("t", [(i, i % 5) for i in range(60)])
    return db


def copies_of(db, fragment_id):
    info = db.catalog.table("t")
    return db.gdh.fragment_copies(info, fragment_id)


class TestPlacement:
    def test_replicas_on_distinct_elements(self, db):
        info = db.catalog.table("t")
        for fragment in info.fragments:
            nodes = [node for node, _ in fragment.all_copies()]
            assert len(set(nodes)) == len(nodes)

    def test_copy_count(self, db):
        info = db.catalog.table("t")
        assert all(len(f.all_copies()) == 2 for f in info.fragments)
        # 3 fragments x 2 copies = 6 OFMs
        assert sum(1 for name in db.gdh.fragment_ofms if name.startswith("t.")) == 6

    def test_too_many_copies_rejected(self):
        db = PrismaDB(MachineConfig(n_nodes=2, disk_nodes=(0,)))
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE x (a INT) WITH 5 REPLICAS")

    def test_catalog_serialization_roundtrip(self, db):
        rebuilt = Catalog.deserialize(db.catalog.serialize())
        fragment = rebuilt.table("t").fragments[0]
        assert fragment.replicas
        assert fragment.all_copies()[0] == (fragment.node_id, fragment.ofm_name)


class TestWriteConsistency:
    def test_all_copies_receive_bulk_load(self, db):
        for fragment_id in range(3):
            copies = copies_of(db, fragment_id)
            rows = [sorted(c.table.rows()) for c in copies]
            assert rows[0] == rows[1]
            assert len(rows[0]) > 0

    def test_insert_update_delete_hit_every_copy(self, db):
        db.execute("INSERT INTO t VALUES (100, 1)")
        db.execute("UPDATE t SET v = 42 WHERE id = 100")
        info = db.catalog.table("t")
        fragment_id = info.scheme.fragment_of((100, 42))
        for copy in copies_of(db, fragment_id):
            assert (100, 42) in list(copy.table.rows())
        db.execute("DELETE FROM t WHERE id = 100")
        for copy in copies_of(db, fragment_id):
            assert all(row[0] != 100 for row in copy.table.rows())

    def test_affected_rows_not_double_counted(self, db):
        assert db.execute("UPDATE t SET v = 9 WHERE v = 1").affected_rows == 12
        assert db.execute("DELETE FROM t WHERE v = 9").affected_rows == 12
        assert db.table_row_count("t") == 48

    def test_rollback_undoes_every_copy(self, db):
        session = db.session()
        session.begin()
        session.execute("UPDATE t SET v = 77 WHERE id = 3")
        session.rollback()
        info = db.catalog.table("t")
        fragment_id = info.scheme.fragment_of((3, 0))
        for copy in copies_of(db, fragment_id):
            row = next(r for r in copy.table.rows() if r[0] == 3)
            assert row[1] == 3 % 5

    def test_fragmentation_key_update_moves_in_all_copies(self, db):
        db.execute("UPDATE t SET id = 200 WHERE id = 1")
        info = db.catalog.table("t")
        new_home = info.scheme.fragment_of((200, 1))
        old_home = info.scheme.fragment_of((1, 1))
        for copy in copies_of(db, new_home):
            assert any(row[0] == 200 for row in copy.table.rows())
        if new_home != old_home:
            for copy in copies_of(db, old_home):
                assert all(row[0] not in (1, 200) for row in copy.table.rows())
        assert db.table_row_count("t") == 60

    def test_queries_count_each_row_once(self, db):
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 60
        assert db.table_row_count("t") == 60


class TestReadBalancingAndRecovery:
    def test_reads_spread_across_copies(self, db):
        # Run many cheap point queries; both copies of fragment 0 should
        # accumulate work.
        db.quiesce()
        for _ in range(6):
            db.query("SELECT v FROM t WHERE id = 0")
        copies = copies_of(db, db.catalog.table("t").scheme.fragment_of((0, 0)))
        busy = [c.stats.busy_time_s if hasattr(c, "stats") else 0 for c in copies]
        scanned = [c.runtime.machine.node(c.node_id).stats.tuples_processed for c in copies]
        assert all(s > 0 for s in scanned)

    def test_crash_recovers_all_copies(self, db):
        db.execute("INSERT INTO t VALUES (300, 7)")
        db.crash()
        report = db.restart()
        assert report.fragments_recovered == 6  # 3 fragments x 2 copies
        assert db.execute("SELECT v FROM t WHERE id = 300").rows == [(7,)]
        info = db.catalog.table("t")
        for fragment in info.fragments:
            copies = copies_of(db, fragment.fragment_id)
            assert sorted(copies[0].table.rows()) == sorted(copies[1].table.rows())

    def test_drop_table_destroys_replicas(self, db):
        db.execute("DROP TABLE t")
        assert not any(name.startswith("t.") for name in db.gdh.fragment_ofms)
