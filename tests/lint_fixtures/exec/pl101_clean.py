"""PL101 clean: the same row loops, but every function bills the work."""


def count_nulls(rows, meter):
    nulls = 0
    for row in rows:
        for value in row:
            if value is None:
                nulls += 1
    meter.compares += len(rows)
    return nulls


def charge_rows(process, rows):
    process.charge(len(rows) * 1e-7)


def drain(process, rows):
    # No meter in sight, but the helper it calls charges: the one-level
    # call graph must see through this.
    charge_rows(process, rows)
    return [tuple(row) for row in rows]


def batch_predicate(expr):
    # A kernel factory: the row loop is deferred into the returned
    # kernel, and the batch operator that invokes it charges per batch.
    return lambda rows: [row for row in rows if row[0] == expr]


def make_filter_kernel(value):
    def _kernel(rows):
        return [row for row in rows if row[1] > value]

    return _kernel


class ColumnBatch:
    def __init__(self, rows):
        self._rows = rows

    def columns(self):
        # Layout conversion in the batch container: charged by whichever
        # batch operator consumes the result.
        return [list(col) for col in zip(*self._rows)]

    def take(self, selection):
        rows = self._rows
        return [rows[i] for i in selection]
