"""PL101 clean: the same row loops, but every function bills the work."""


def count_nulls(rows, meter):
    nulls = 0
    for row in rows:
        for value in row:
            if value is None:
                nulls += 1
    meter.compares += len(rows)
    return nulls


def charge_rows(process, rows):
    process.charge(len(rows) * 1e-7)


def drain(process, rows):
    # No meter in sight, but the helper it calls charges: the one-level
    # call graph must see through this.
    charge_rows(process, rows)
    return [tuple(row) for row in rows]
