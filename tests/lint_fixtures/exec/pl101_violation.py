"""PL101 violation: per-row work in a charged layer, nothing billed."""


def count_nulls(rows):
    nulls = 0
    for row in rows:
        for value in row:
            if value is None:
                nulls += 1
    return nulls


def widths(tuples):
    return [max(0, item) for item in tuples]
