"""PL101 violation: per-row work in a charged layer, nothing billed."""


def count_nulls(rows):
    nulls = 0
    for row in rows:
        for value in row:
            if value is None:
                nulls += 1
    return nulls


def widths(tuples):
    return [max(0, item) for item in tuples]


def batch_filter(rows, value):
    # batch_* name alone is no license: this loop runs *here*, now,
    # uncharged — only loops deferred into a returned kernel are exempt.
    return [row for row in rows if row[0] == value]


class BatchView:
    # Not the ColumnBatch container: an arbitrary class looping over
    # rows without a meter still pays.
    def widths(self, rows):
        return [len(row) for row in rows]
