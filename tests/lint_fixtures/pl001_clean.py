"""PL001 clean: only simulated time, no host clock."""


def response_time(ready_at: float, started_at: float) -> float:
    return ready_at - started_at
