"""PL005 violations: a bare except and a swallowed MachineError."""

from repro.errors import MachineError


def run_quietly(action) -> None:
    try:
        action()
    except:
        return None


def ignore_machine_errors(action) -> None:
    try:
        action()
    except MachineError:
        pass
