"""Escape-hatch fixture: violations silenced by disable pragmas."""
# prismalint: disable=PL001 -- fixture exercises the file-level pragma

import random
import time


def stamp() -> float:
    return time.time()


def also_stamp() -> float:
    return time.monotonic()


def pick(options: list[str]) -> str:
    return random.choice(options)  # prismalint: disable=PL002 -- line-level pragma
