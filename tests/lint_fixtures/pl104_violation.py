"""PL104 violation: payloads mutated after being sent."""


def broadcast(runtime, receivers):
    payload = {"rows": [1, 2]}
    for receiver in receivers:
        runtime.post(None, receiver, payload)
    payload["rows"].append(3)


def resend(channel):
    message = [1, 2, 3]
    channel.send(b"x", message=message)
    message[0] = 9


def scrub(report):
    report.clear()


def emit(runtime, node, report):
    runtime.post(None, node, report)
    scrub(report)
