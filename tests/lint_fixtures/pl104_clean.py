"""PL104 clean: fresh object per message, or rebind before reuse."""


def broadcast(runtime, receivers):
    for receiver in receivers:
        payload = {"rows": [1, 2]}
        runtime.post(None, receiver, payload)


def resend(channel):
    message = [1, 2, 3]
    channel.send(b"x", message=message)
    message = [4, 5]
    message[0] = 9


def report_and_reset(runtime, node, stats):
    snapshot = dict(stats)
    runtime.post(None, node, snapshot)
    stats.clear()
