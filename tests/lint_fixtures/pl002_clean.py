"""PL002 clean: explicit seeded generator threaded through."""

import random


def pick(seed: int, options: list[str]) -> str:
    rng = random.Random(seed)
    return rng.choice(options)
