"""PL005 clean: narrow handler that records what it caught."""

from repro.errors import MachineError


def try_run(action, log: list) -> bool:
    try:
        action()
        return True
    except MachineError as exc:
        log.append(exc)
        return False
