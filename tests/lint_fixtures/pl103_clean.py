"""PL103 clean: full Snapshot triples, including an inherited one."""


class CacheStats:
    def __init__(self):
        self.hits = 0

    def stats(self):
        return {"hits": self.hits}

    def fingerprint(self):
        return str(self.hits)

    def reset(self):
        self.hits = 0


class Surface:
    """Pure interface: declares the contract, implements nothing."""

    def stats(self):
        raise NotImplementedError

    def fingerprint(self):
        raise NotImplementedError

    def reset(self):
        raise NotImplementedError


class Derived(Surface):
    def stats(self):
        return {}

    def fingerprint(self):
        return "0"

    def reset(self):
        pass


def register_all(observatory):
    observatory.register("cache", CacheStats())
