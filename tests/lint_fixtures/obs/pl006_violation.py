"""PL006 violation: reads host time inside an obs span path."""

import time
from time import perf_counter as pc


def span_start() -> float:
    return time.monotonic()


def span_end() -> float:
    return pc()
