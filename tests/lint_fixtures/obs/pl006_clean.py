"""PL006 clean: records simulated timestamps handed in by callers."""


def record(events: list, ts: float, kind: str, name: str) -> None:
    events.append((ts, kind, name))
