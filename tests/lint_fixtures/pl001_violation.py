"""PL001 violation: reads the host wall clock three different ways."""

import time
from datetime import datetime
from time import perf_counter as pc


def stamp() -> float:
    return time.time()


def elapsed() -> float:
    return pc()


def today() -> str:
    return datetime.now().isoformat()
