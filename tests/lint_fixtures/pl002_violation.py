"""PL002 violation: global RNG and an unseeded instance."""

import random
from random import shuffle


def pick(options: list[str]) -> str:
    return random.choice(options)


def scramble(options: list[str]) -> None:
    shuffle(options)


def fresh_rng() -> random.Random:
    return random.Random()
