"""PL103 violation: partial or malformed Snapshot surfaces."""


class CacheStats:
    """Grew a stats() but never the other two legs."""

    def __init__(self):
        self.hits = 0

    def stats(self):
        return {"hits": self.hits}


class VerboseStats:
    """All three legs, but stats() cannot be called blind."""

    def stats(self, verbose):
        return {"verbose": 1 if verbose else 0}

    def fingerprint(self):
        return "deadbeef"

    def reset(self):
        pass


def register_all(observatory):
    observatory.register("ghost", GhostStats())  # noqa: F821 - deliberately undefined
