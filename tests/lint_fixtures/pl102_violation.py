"""PL102 violation: hash-order set iteration leaking into ordered values."""


def names_in_hash_order(table_names: set):
    result = []
    for name in table_names:
        result.append(name)
    return result


def freeze(values):
    pending = {value for value in values}
    return list(pending)


def first_two(keys: frozenset):
    return [key for key in keys][:2]
