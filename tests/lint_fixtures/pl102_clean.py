"""PL102 clean: sets consumed only through order-independent paths."""


def names_deterministic(table_names: set):
    result = []
    for name in sorted(table_names):
        result.append(name)
    return result


def cardinality(values):
    pending = {value for value in values}
    return len(pending)


def union(a: set, b: set):
    # Set algebra keeps the result unordered; nothing ordered leaks.
    return a | b


def smallest(keys: frozenset):
    return min(keys)
