"""PL003 violations: cross-process writes and shared module state."""

from repro.pool.process import PoolProcess

# Shared between both process classes below: shared memory in disguise.
SHARED_SCRATCH = {}


class Producer(PoolProcess):
    def handle(self, sender, payload):
        SHARED_SCRATCH["last"] = payload
        # Writing through the sender reference mutates another process.
        sender.last_ack = payload


class Consumer(PoolProcess):
    def handle(self, sender, payload):
        return SHARED_SCRATCH.get("last")


def poke(target: PoolProcess, value: int) -> None:
    target.mailbox = value
