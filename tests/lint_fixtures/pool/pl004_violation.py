"""PL004 violation: sends a message but never charges any CPU."""


def ship_rows(runtime, sender, receiver, rows) -> float:
    return runtime.send(sender, receiver, len(rows) * 64)
