"""PL004 clean: the sending function charges for the work it models."""


def ship_rows(runtime, sender, receiver, rows) -> float:
    sender.charge(len(rows) * 1e-6)
    return runtime.send(sender, receiver, len(rows) * 64)
