"""PL003 clean: processes keep their state to themselves."""

from repro.pool.process import PoolProcess


class Counter(PoolProcess):
    def __init__(self, runtime, name, node_id):
        super().__init__(runtime, name, node_id)
        self.count = 0

    def handle(self, sender, payload):
        self.count += 1
        self.charge(1e-6)
