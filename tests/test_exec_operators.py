"""Tests for the physical relational operators."""

import pytest

from repro.errors import ExecutionError
from repro.exec.operators import (
    AggSpec,
    JoinKind,
    WorkMeter,
    aggregate_rows,
    difference_rows,
    distinct_rows,
    hash_join,
    intersect_rows,
    limit_rows,
    merge_join,
    nested_loop_join,
    project_rows,
    select_rows,
    sort_rows,
    union_all_rows,
    union_rows,
)


def key0(row):
    return (row[0],)


class TestSelectProject:
    def test_select_filters_and_meters(self):
        meter = WorkMeter()
        out = select_rows([(1,), (2,), (3,)], lambda r: r[0] > 1, meter)
        assert out == [(2,), (3,)]
        assert meter.tuples == 3

    def test_select_eval_weight_scales_compares(self):
        meter = WorkMeter()
        select_rows([(1,)] * 10, lambda r: True, meter, eval_weight=3.0)
        assert meter.compares == 30.0

    def test_select_wraps_runtime_faults(self):
        with pytest.raises(ExecutionError):
            select_rows([(1,)], lambda r: r[0] < "x", WorkMeter())

    def test_project(self):
        meter = WorkMeter()
        out = project_rows([(1, "a")], lambda r: (r[1], r[0] * 2), meter)
        assert out == [("a", 2)]

    def test_project_wraps_faults(self):
        with pytest.raises(ExecutionError):
            project_rows([(1,)], lambda r: (r[0] / 0,), WorkMeter())


class TestHashJoin:
    LEFT = [(1, "a"), (2, "b"), (3, "c")]
    RIGHT = [(1, "x"), (1, "y"), (4, "z")]

    def test_inner(self):
        out = hash_join(self.LEFT, self.RIGHT, key0, key0, WorkMeter())
        assert sorted(out) == [(1, "a", 1, "x"), (1, "a", 1, "y")]

    def test_left_outer_pads_with_nulls(self):
        out = hash_join(
            self.LEFT, self.RIGHT, key0, key0, WorkMeter(),
            kind=JoinKind.LEFT_OUTER, right_width=2,
        )
        assert (2, "b", None, None) in out
        assert (3, "c", None, None) in out
        assert len(out) == 4

    def test_left_outer_requires_width(self):
        with pytest.raises(ExecutionError):
            hash_join(self.LEFT, self.RIGHT, key0, key0, WorkMeter(),
                      kind=JoinKind.LEFT_OUTER)

    def test_semi_and_anti(self):
        semi = hash_join(self.LEFT, self.RIGHT, key0, key0, WorkMeter(),
                         kind=JoinKind.SEMI)
        assert semi == [(1, "a")]
        anti = hash_join(self.LEFT, self.RIGHT, key0, key0, WorkMeter(),
                         kind=JoinKind.ANTI)
        assert anti == [(2, "b"), (3, "c")]

    def test_null_keys_never_match(self):
        left = [(None, "l")]
        right = [(None, "r")]
        assert hash_join(left, right, key0, key0, WorkMeter()) == []

    def test_residual_condition(self):
        out = hash_join(
            self.LEFT, self.RIGHT, key0, key0, WorkMeter(),
            residual=lambda row: row[3] == "y",
        )
        assert out == [(1, "a", 1, "y")]

    def test_meter_counts_hash_work(self):
        meter = WorkMeter()
        hash_join(self.LEFT, self.RIGHT, key0, key0, meter)
        assert meter.hashes == len(self.LEFT) + len(self.RIGHT)


class TestOtherJoins:
    def test_nested_loop_non_equi(self):
        left = [(1,), (5,)]
        right = [(3,), (4,)]
        out = nested_loop_join(left, right, lambda row: row[0] < row[1], WorkMeter())
        assert sorted(out) == [(1, 3), (1, 4)]

    def test_nested_loop_cross_product(self):
        out = nested_loop_join([(1,), (2,)], [("a",)], None, WorkMeter())
        assert sorted(out) == [(1, "a"), (2, "a")]

    def test_nested_loop_left_outer(self):
        out = nested_loop_join(
            [(1,), (9,)], [(3,)], lambda row: row[0] < row[1], WorkMeter(),
            kind=JoinKind.LEFT_OUTER, right_width=1,
        )
        assert sorted(out, key=repr) == [(1, 3), (9, None)]

    def test_nested_loop_semi_anti(self):
        left = [(1,), (9,)]
        right = [(3,)]
        condition = lambda row: row[0] < row[1]  # noqa: E731
        assert nested_loop_join(left, right, condition, WorkMeter(),
                                kind=JoinKind.SEMI) == [(1,)]
        assert nested_loop_join(left, right, condition, WorkMeter(),
                                kind=JoinKind.ANTI) == [(9,)]

    def test_merge_join_matches_hash_join(self):
        left = [(i % 5, i) for i in range(20)]
        right = [(i % 3, -i) for i in range(15)]
        merged = merge_join(left, right, key0, key0, WorkMeter())
        hashed = hash_join(left, right, key0, key0, WorkMeter())
        assert sorted(merged) == sorted(hashed)

    def test_merge_join_drops_null_keys(self):
        out = merge_join([(None, 1), (2, 2)], [(2, 9)], key0, key0, WorkMeter())
        assert out == [(2, 2, 2, 9)]


class TestSort:
    def test_single_key_ascending(self):
        out = sort_rows([(3,), (1,), (2,)], [0])
        assert out == [(1,), (2,), (3,)]

    def test_descending(self):
        out = sort_rows([(3,), (1,), (2,)], [0], descending=[True])
        assert out == [(3,), (2,), (1,)]

    def test_mixed_directions(self):
        rows = [(1, "b"), (2, "a"), (1, "a"), (2, "b")]
        out = sort_rows(rows, [0, 1], descending=[False, True])
        assert out == [(1, "b"), (1, "a"), (2, "b"), (2, "a")]

    def test_nulls_sort_first(self):
        out = sort_rows([(2,), (None,), (1,)], [0])
        assert out == [(None,), (1,), (2,)]

    def test_sort_is_stable(self):
        rows = [(1, "first"), (1, "second")]
        assert sort_rows(rows, [0]) == rows

    def test_direction_length_mismatch(self):
        with pytest.raises(ExecutionError):
            sort_rows([(1,)], [0], descending=[True, False])


class TestDistinctLimitSetOps:
    def test_distinct_preserves_first_occurrence_order(self):
        out = distinct_rows([(2,), (1,), (2,), (3,), (1,)], WorkMeter())
        assert out == [(2,), (1,), (3,)]

    def test_limit_offset(self):
        rows = [(i,) for i in range(10)]
        assert limit_rows(rows, 3) == [(0,), (1,), (2,)]
        assert limit_rows(rows, 3, offset=8) == [(8,), (9,)]
        assert limit_rows(rows, None, offset=7) == [(7,), (8,), (9,)]
        with pytest.raises(ExecutionError):
            limit_rows(rows, -1)

    def test_limit_charges_touched_rows(self):
        rows = [(i,) for i in range(10)]
        meter = WorkMeter()
        limit_rows(rows, 3, meter=meter)
        assert meter.tuples == 3  # stops at the cap, not the full input
        meter = WorkMeter()
        limit_rows(rows, 3, offset=8, meter=meter)
        assert meter.tuples == 10  # offset walks the skipped rows too
        meter = WorkMeter()
        limit_rows(rows, None, offset=7, meter=meter)
        assert meter.tuples == 10  # no cap: the whole input is touched

    def test_union_deduplicates(self):
        out = union_rows([(1,), (2,)], [(2,), (3,)], WorkMeter())
        assert sorted(out) == [(1,), (2,), (3,)]

    def test_union_all_keeps_duplicates(self):
        out = union_all_rows([(1,)], [(1,)], WorkMeter())
        assert out == [(1,), (1,)]

    def test_intersect(self):
        out = intersect_rows([(1,), (2,), (2,)], [(2,), (3,)], WorkMeter())
        assert out == [(2,)]

    def test_difference(self):
        out = difference_rows([(1,), (2,), (1,)], [(2,)], WorkMeter())
        assert out == [(1,)]


class TestAggregation:
    ROWS = [("eng", 100.0), ("eng", 80.0), ("hr", 50.0)]

    def test_group_by_with_all_functions(self):
        out = aggregate_rows(
            self.ROWS,
            lambda r: (r[0],),
            [
                AggSpec("count"),
                AggSpec("sum", lambda r: r[1]),
                AggSpec("avg", lambda r: r[1]),
                AggSpec("min", lambda r: r[1]),
                AggSpec("max", lambda r: r[1]),
            ],
            WorkMeter(),
        )
        by_group = {row[0]: row[1:] for row in out}
        assert by_group["eng"] == (2, 180.0, 90.0, 80.0, 100.0)
        assert by_group["hr"] == (1, 50.0, 50.0, 50.0, 50.0)

    def test_global_aggregate_on_empty_input(self):
        out = aggregate_rows(
            [], None,
            [AggSpec("count"), AggSpec("sum", lambda r: r[0]),
             AggSpec("min", lambda r: r[0])],
            WorkMeter(),
        )
        assert out == [(0, None, None)]

    def test_group_by_empty_input_has_no_groups(self):
        out = aggregate_rows([], lambda r: (r[0],), [AggSpec("count")], WorkMeter())
        assert out == []

    def test_nulls_ignored_by_aggregates(self):
        rows = [(1,), (None,), (3,)]
        out = aggregate_rows(
            rows, None,
            [AggSpec("count", lambda r: r[0]), AggSpec("sum", lambda r: r[0]),
             AggSpec("avg", lambda r: r[0])],
            WorkMeter(),
        )
        assert out == [(2, 4, 2.0)]

    def test_count_star_counts_nulls(self):
        out = aggregate_rows([(None,), (1,)], None, [AggSpec("count")], WorkMeter())
        assert out == [(2,)]

    def test_distinct_aggregate(self):
        rows = [(1,), (1,), (2,)]
        out = aggregate_rows(
            rows, None,
            [AggSpec("count", lambda r: r[0], distinct=True),
             AggSpec("sum", lambda r: r[0], distinct=True)],
            WorkMeter(),
        )
        assert out == [(2, 3)]

    def test_invalid_specs_rejected(self):
        with pytest.raises(ExecutionError):
            AggSpec("median", lambda r: r[0])
        with pytest.raises(ExecutionError):
            AggSpec("sum")
