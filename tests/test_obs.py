"""Observability layer (ISSUE 5): deterministic tracing, the Snapshot
protocol, the metrics registry, and the ``observe()`` façades.

The contracts under test are the ones CI leans on: same-seed runs
produce byte-identical trace exports, the ring buffer bounds memory,
disabled tracing allocates nothing in the tracer module, and every
stats surface speaks the one Snapshot protocol.
"""

from __future__ import annotations

import json
import tracemalloc

import pytest

from repro import MachineConfig, PrismaDB
from repro.core.faults import FaultInjector
from repro.exec.compiler import ExpressionCompilerCache
from repro.exec.operators import WorkMeter
from repro.exec.shuffle import SplitterCache
from repro.machine import MachineNodesView, PacketNetwork
from repro.machine.events import EventLoop
from repro.machine.network import NetworkStats
from repro.machine.profile import LoopProfiler
from repro.machine.traffic import run_load_point
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Observatory,
    Snapshot,
    Tracer,
    active,
    chrome_trace,
    chrome_trace_json,
    fingerprint_stats,
    text_profile,
)
from repro.obs import tracer as tracer_module
from repro.workloads import load_wisconsin

MESH16 = MachineConfig(n_nodes=16, topology="mesh")
DB_CONFIG = MachineConfig(n_nodes=8, disk_nodes=(0, 4))


def traced_e1(seed: int, tracer: Tracer | None = None) -> Tracer:
    tracer = tracer if tracer is not None else Tracer()
    network = PacketNetwork(MESH16, tracer=tracer)
    run_load_point(network, 3_000, warmup_s=0.002, measure_s=0.005, seed=seed)
    return tracer


def traced_queries(seed: int) -> tuple[Tracer, PrismaDB]:
    tracer = Tracer()
    db = PrismaDB(DB_CONFIG, tracer=tracer)
    load_wisconsin(db, "wisc", 300, fragments=3, seed=seed)
    db.quiesce()
    db.execute("SELECT COUNT(*) FROM wisc WHERE fiftypercent = 0")
    db.execute("SELECT COUNT(*) FROM wisc a JOIN wisc b ON a.unique1 = b.unique1")
    return tracer, db


# -- tracer core -------------------------------------------------------------


def test_ring_buffer_bounds_memory_and_counts_drops():
    tracer = Tracer(capacity=8)
    for i in range(20):
        tracer.event(float(i), "k", f"e{i}")
    assert len(tracer) == 8
    assert tracer.emitted == 20
    assert tracer.dropped == 12
    # Oldest records fell off the front; the newest survive.
    assert [record[0] for record in tracer.events] == [float(i) for i in range(12, 20)]
    tracer.reset()
    assert tracer.emitted == 0 and len(tracer) == 0 and tracer.dropped == 0


def test_tracer_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_active_collapses_missing_or_disabled_tracers():
    assert active(None) is None
    assert active(Tracer(enabled=False)) is None
    enabled = Tracer()
    assert active(enabled) is enabled


def test_span_args_are_sorted_for_determinism():
    tracer = Tracer()
    tracer.span(1.0, 2.0, "k", "n", node=3, actor="a", zebra=1, apple=2)
    (record,) = tracer.events
    assert record == (1.0, 1.0, "k", "n", 3, "a", (("apple", 2), ("zebra", 1)))


# -- determinism -------------------------------------------------------------


def test_same_seed_e1_traces_are_bit_identical():
    first, second = traced_e1(11), traced_e1(11)
    assert first.emitted > 0
    assert first.fingerprint() == second.fingerprint()
    assert chrome_trace_json(first) == chrome_trace_json(second)
    assert text_profile(first) == text_profile(second)


def test_different_seed_changes_the_trace():
    assert traced_e1(11).fingerprint() != traced_e1(12).fingerprint()


def test_same_seed_query_traces_are_bit_identical():
    first, db1 = traced_queries(5)
    second, db2 = traced_queries(5)
    assert first.fingerprint() == second.fingerprint()
    assert chrome_trace_json(first) == chrome_trace_json(second)
    assert db1.observe().fingerprint() == db2.observe().fingerprint()


def test_commit_and_recovery_kinds_are_traced():
    tracer, db = traced_queries(5)
    db.execute(
        "CREATE TABLE t (k INT PRIMARY KEY, v INT) FRAGMENTED BY HASH(k) INTO 3"
    )
    session = db.session()
    session.execute("BEGIN")
    for key in range(6):
        session.execute(f"INSERT INTO t VALUES ({key}, {key})")
    session.execute("COMMIT")
    db.crash()
    db.restart()
    kinds = {record[2] for record in tracer.events}
    for expected in (
        "operator.execute",
        "executor.query",
        "executor.repartition",
        "process.send",
        "2pc.prepare",
        "2pc.log_force",
        "2pc.phase_two",
        "recovery.log_scan",
        "recovery.wal_replay",
    ):
        assert expected in kinds, f"missing trace kind {expected!r}"


# -- no-op mode --------------------------------------------------------------


def test_disabled_tracer_records_nothing_and_changes_nothing():
    plain = PacketNetwork(MESH16)
    run_load_point(plain, 3_000, warmup_s=0.002, measure_s=0.005, seed=11)
    disabled = Tracer(enabled=False)
    traced = PacketNetwork(MESH16, tracer=disabled)
    run_load_point(traced, 3_000, warmup_s=0.002, measure_s=0.005, seed=11)
    assert disabled.emitted == 0
    assert traced.stats.fingerprint() == plain.stats.fingerprint()


def test_disabled_tracer_allocates_nothing_in_the_tracer_module():
    disabled = Tracer(enabled=False)
    network = PacketNetwork(MESH16, tracer=disabled)
    tracemalloc.start()
    try:
        run_load_point(network, 2_000, warmup_s=0.002, measure_s=0.004, seed=3)
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    in_tracer = snapshot.filter_traces(
        [tracemalloc.Filter(True, tracer_module.__file__)]
    )
    assert sum(stat.size for stat in in_tracer.statistics("filename")) == 0


# -- chrome-trace export -----------------------------------------------------


def test_chrome_trace_schema():
    tracer = Tracer()
    tracer.span(0.001, 0.002, "process.send", "a->b", node=1, actor="a", bytes=64)
    tracer.event(0.003, "packet.drop", "link7", node=2)
    doc = chrome_trace(tracer)
    assert doc["otherData"] == {"clock": "simulated", "dropped": 0, "emitted": 2}
    span, instant = doc["traceEvents"]
    assert span["ph"] == "X"
    assert span["ts"] == pytest.approx(1_000.0)
    assert span["dur"] == pytest.approx(1_000.0)
    assert span["pid"] == 1 and span["tid"] == "a"
    assert span["args"] == {"bytes": 64}
    assert instant["ph"] == "i" and instant["s"] == "t"
    assert instant["tid"] == "node2"
    # The JSON export round-trips and is stable under re-serialisation.
    parsed = json.loads(chrome_trace_json(tracer))
    assert parsed == doc


def test_text_profile_aggregates_and_footers():
    tracer = Tracer(capacity=2)
    for i in range(3):
        tracer.span(0.0, 0.5, "k", "hot", node=i)
    profile = text_profile(tracer, title="sample")
    assert "sample" in profile
    assert "hot" in profile
    assert "records: 2 retained, 3 emitted, 1 dropped" in profile


# -- Snapshot protocol -------------------------------------------------------


def _snapshot_surfaces() -> dict[str, Snapshot]:
    db = PrismaDB(DB_CONFIG, faults=FaultInjector(seed=1))
    load_wisconsin(db, "wisc", 120, fragments=2, seed=2)
    db.quiesce()
    db.execute("SELECT COUNT(*) FROM wisc WHERE fiftypercent = 0")
    meter = WorkMeter()
    meter.tuples += 4
    network = PacketNetwork(MESH16)
    run_load_point(network, 2_000, warmup_s=0.002, measure_s=0.004, seed=3)
    return {
        "network": network.stats,
        "runtime": db.runtime.stats,
        "nodes": db.machine.observe().source("nodes"),
        "work_meter": meter,
        "splitters": db.gdh.executor.splitters,
        "expressions": db.gdh.executor.evaluator.cache,
        "faults": db.gdh.faults,
        "metrics": db.gdh.executor.metrics,
        "tracer": Tracer(),
        "profiler": LoopProfiler(EventLoop()),
    }


def test_every_stats_surface_implements_snapshot():
    for name, surface in _snapshot_surfaces().items():
        assert isinstance(surface, Snapshot), name
        stats = surface.stats()
        assert hasattr(stats, "keys") and len(stats) > 0, name
        first, second = surface.fingerprint(), surface.fingerprint()
        assert first == second and len(first) == 64, name
        surface.reset()  # must not raise; most surfaces zero out
        assert isinstance(surface.fingerprint(), str), name


def test_network_stats_reset_restores_fresh_fingerprint():
    network = PacketNetwork(MESH16)
    fresh = network.stats.fingerprint()
    run_load_point(network, 2_000, warmup_s=0.002, measure_s=0.004, seed=3)
    assert network.stats.fingerprint() != fresh
    network.stats.reset()
    assert network.stats.fingerprint() == fresh


def test_fault_injector_fingerprint_payload_is_unchanged():
    # The A4 baselines pin sha256(repr((seed, injections))) — the
    # Snapshot retrofit must not have moved it.
    import hashlib

    injector = FaultInjector(seed=9)
    expected = hashlib.sha256(repr((9, [])).encode()).hexdigest()
    assert injector.fingerprint() == expected


def test_fingerprint_stats_is_order_insensitive():
    assert fingerprint_stats({"a": 1, "b": 2}) == fingerprint_stats({"b": 2, "a": 1})


# -- observatory façades -----------------------------------------------------


def test_database_observe_facade():
    tracer = Tracer()
    db = PrismaDB(DB_CONFIG, tracer=tracer)
    load_wisconsin(db, "wisc", 120, fragments=2, seed=2)
    db.quiesce()
    db.execute("SELECT COUNT(*) FROM wisc")
    obs = db.observe()
    assert obs is db.observe()  # lazily built once
    assert set(obs.sources()) == {
        "runtime", "nodes", "faults", "shuffle", "expressions", "metrics", "tracer",
    }
    stats = obs.stats()
    assert stats["runtime"]["messages"] > 0
    assert stats["metrics"]["executor.queries"]["value"] == 1
    # busy_total is byte-identical to the hand-summed repr the perf
    # gate pinned its baselines with.
    hand_summed = repr(sum(node.stats.busy_time_s for node in db.machine.nodes))
    assert stats["nodes"]["busy_total"] == hand_summed
    assert isinstance(obs.fingerprint(), str)


def test_machine_observe_shares_the_nodes_view():
    db = PrismaDB(DB_CONFIG)
    view = db.machine.observe().source("nodes")
    assert isinstance(view, MachineNodesView)
    assert db.observe().source("nodes") is view


def test_observatory_rejects_duplicate_sources():
    obs = Observatory()
    obs.register("x", Tracer())
    with pytest.raises(ValueError):
        obs.register("x", Tracer())
    with pytest.raises(KeyError):
        obs.source("missing")


# -- metrics registry --------------------------------------------------------


def test_metrics_counter_gauge_histogram():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.counter("c").inc(4)
    registry.gauge("g").set(2.5)
    hist = registry.histogram("h")
    for value in (0, 3, 700, 10**9):
        hist.observe(value)
    stats = registry.stats()
    assert stats["c"]["value"] == 5
    assert stats["g"]["value"] == 2.5
    assert stats["h"]["count"] == 4
    assert stats["h"]["buckets"]["+inf"] == 1
    assert registry.names() == ["c", "g", "h"]
    registry.reset()
    assert registry.stats()["c"]["value"] == 0
    assert registry.stats()["h"]["count"] == 0


def test_metrics_kind_mismatch_is_an_error():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")
    assert isinstance(registry.counter("x"), Counter)
    assert isinstance(registry.gauge("y"), Gauge)
    assert isinstance(registry.histogram("z"), Histogram)


def test_executor_metrics_count_shuffles():
    _, db = traced_queries(5)
    stats = db.gdh.executor.metrics.stats()
    assert stats["executor.queries"]["value"] == 2
    # The unique1 join is not on the fragmentation column, so at least
    # one side repartitioned.
    assert stats["executor.repartitions"]["value"] >= 1


# -- LoopProfiler default clock (the PL001-plumbing bugfix) ------------------


def test_loop_profiler_uses_the_class_default_clock():
    ticks = iter([1.0, 3.5])
    saved = LoopProfiler.default_clock
    LoopProfiler.default_clock = lambda: next(ticks)
    try:
        with LoopProfiler(EventLoop()) as profiler:
            pass
        assert profiler.profile.wall_s == 2.5
    finally:
        LoopProfiler.default_clock = saved


def test_loop_profiler_without_any_clock_reports_zero_wall():
    saved = LoopProfiler.default_clock
    LoopProfiler.default_clock = None
    try:
        with LoopProfiler(EventLoop()) as profiler:
            pass
        assert profiler.profile.wall_s == 0.0
        assert profiler.profile.events_per_sec == 0.0
    finally:
        LoopProfiler.default_clock = saved


def test_loop_profiler_fingerprint_excludes_wall_time():
    loop = EventLoop()
    saved = LoopProfiler.default_clock
    try:
        LoopProfiler.default_clock = None
        with LoopProfiler(loop) as without_clock:
            pass
        ticks = iter([0.0, 123.0])
        LoopProfiler.default_clock = lambda: next(ticks)
        with LoopProfiler(loop) as with_clock:
            pass
    finally:
        LoopProfiler.default_clock = saved
    assert with_clock.profile.wall_s == 123.0
    assert without_clock.fingerprint() == with_clock.fingerprint()
