"""The compiled shuffle path: splitter/hash equivalence, repartition
invariants, and direct-ship broadcast cost.

The splitter must assign every row to the same bucket as the interpreted
reference hash (``reference_bucket``) for every value type the engine
ships — that equivalence is what makes the single-pass repartition
bit-identical to the per-row implementation it replaced.
"""

import pytest

from repro.core.catalog import Catalog
from repro.core.executor import DistRelation, DistributedExecutor, Part
from repro.core.fragmentation import stable_hash
from repro.exec.shuffle import SplitterCache, compile_splitter, reference_bucket
from repro.machine import Machine, MachineConfig
from repro.pool import PoolProcess, PoolRuntime
from repro.storage import DataType, Schema

PAIR = Schema.of(src=DataType.INT, dst=DataType.INT)

#: Every value family stable_hash distinguishes: small/large/negative
#: ints, bools (an int subclass with its own routing), floats, strings
#: (FNV-1a), the empty string, non-ASCII, and NULL.
VALUES = [0, 1, -1, 7, 2**40, -(2**35), True, False, 3.14, -2.5, 0.0,
          "abc", "", "ü", "name7", None]


def _rows(width: int) -> list[tuple]:
    rows = []
    for i, value in enumerate(VALUES):
        rows.append(tuple(VALUES[(i + j) % len(VALUES)] for j in range(width)))
        rows.append((value,) * width)
    return rows


class TestCompiledSplitter:
    @pytest.mark.parametrize("key_cols", [(0,), (1,), (0, 1), (2, 1, 0)])
    @pytest.mark.parametrize("k", [1, 2, 3, 7, 16])
    def test_matches_reference_bucket(self, key_cols, k):
        rows = _rows(3)
        buckets = compile_splitter(key_cols, k)(rows)
        assert len(buckets) == k
        for index, bucket in enumerate(buckets):
            for row in bucket:
                assert reference_bucket(row, key_cols, k) == index
        # Partition: every row lands in exactly one bucket, source order
        # preserved within each bucket.
        for index, bucket in enumerate(buckets):
            expected = [r for r in rows if reference_bucket(r, key_cols, k) == index]
            assert bucket == expected

    def test_single_int_column_agrees_with_stable_hash(self):
        # The inline int fast path must match stable_hash exactly.
        rows = [(v,) for v in (0, 1, -1, 5, 123456789, 2**33, -(2**31))]
        buckets = compile_splitter((0,), 8)(rows)
        for index, bucket in enumerate(buckets):
            for row in bucket:
                assert stable_hash(row[0]) % 8 == index

    def test_empty_key_routes_everything_to_bucket_zero(self):
        rows = _rows(2)
        buckets = compile_splitter((), 4)(rows)
        assert buckets[0] == rows
        assert buckets[1] == buckets[2] == buckets[3] == []

    def test_rejects_nonpositive_bucket_count(self):
        with pytest.raises(ValueError):
            compile_splitter((0,), 0)

    def test_cache_compiles_each_shape_once(self):
        cache = SplitterCache()
        first = cache.splitter((0,), 4)
        assert cache.splitter((0,), 4) is first
        assert (cache.compilations, cache.hits) == (1, 1)
        cache.splitter((0,), 8)
        cache.splitter((0, 1), 4)
        assert (cache.compilations, cache.hits) == (3, 1)


# ---------------------------------------------------------------------------
# Executor-level invariants.  _repartition and _broadcast only need live
# processes and the runtime, so a minimal harness suffices.
# ---------------------------------------------------------------------------


class ShuffleHarness:
    def __init__(self, n_procs: int = 4):
        config = MachineConfig(n_nodes=8, disk_nodes=(0,))
        self.runtime = PoolRuntime(Machine(config))
        self.executor = DistributedExecutor(self.runtime, Catalog(), {})
        self.query_process = self.runtime.spawn(PoolProcess, name="qp", node=0)
        self.executor._query_process = self.query_process
        self.executor._dispatched = set()
        self.procs = [
            self.runtime.spawn(PoolProcess, name=f"p{i}", node=i + 1)
            for i in range(n_procs)
        ]

    def dispatch_all(self) -> None:
        """Pre-pay the subplan messages so stats deltas isolate data."""
        for proc in self.procs:
            self.executor._dispatch(proc)


class TestRepartitionInvariants:
    def test_delta_dst_meets_edge_src_at_the_same_site(self):
        # The distributed closure relies on this: repartitioning edges on
        # src and deltas on dst with the same targets co-locates every
        # joinable pair, for any k.
        harness = ShuffleHarness(4)
        ex = harness.executor
        edge_rows = [(i % 11, (i * 7) % 11) for i in range(40)]
        delta_rows = [((i * 3) % 11, i % 11) for i in range(25)]
        edges = DistRelation(
            [Part(p, edge_rows[i::4]) for i, p in enumerate(harness.procs)], None
        )
        edges_by_src = ex._repartition(edges, (0,), PAIR)
        sites = [part.process for part in edges_by_src.parts]
        delta = DistRelation([Part(harness.procs[0], delta_rows)], None)
        delta_by_dst = ex._repartition(delta, (1,), PAIR, targets=sites)

        edge_site = {}
        for index, part in enumerate(edges_by_src.parts):
            for row in part.rows:
                assert edge_site.setdefault(row[0], index) == index
        for index, part in enumerate(delta_by_dst.parts):
            for row in part.rows:
                if row[1] in edge_site:
                    assert edge_site[row[1]] == index

    def test_resident_rows_never_traverse_the_network(self):
        harness = ShuffleHarness(4)
        ex = harness.executor
        harness.dispatch_all()
        # Place every row at the process its key already hashes to.
        rows = [(i, i * 2) for i in range(50)]
        parts = [
            Part(p, [r for r in rows if reference_bucket(r, (0,), 4) == i])
            for i, p in enumerate(harness.procs)
        ]
        stats = self.runtime_stats(harness)
        shuffled = ex._repartition(DistRelation(parts, None), (0,), PAIR)
        assert self.runtime_stats(harness) == stats  # no messages, no bytes
        assert [p.rows for p in shuffled.parts] == [p.rows for p in parts]
        assert shuffled.partition_cols == (0,)

    def test_empty_buckets_still_appear_in_output(self):
        harness = ShuffleHarness(4)
        ex = harness.executor
        rows = [(42, i) for i in range(10)]  # one key: one bucket gets all
        relation = DistRelation([Part(harness.procs[0], rows)], None)
        shuffled = ex._repartition(relation, (0,), PAIR, targets=harness.procs)
        assert len(shuffled.parts) == 4
        assert [p.process for p in shuffled.parts] == harness.procs
        target = reference_bucket(rows[0], (0,), 4)
        for index, part in enumerate(shuffled.parts):
            assert part.rows == (rows if index == target else [])

    @staticmethod
    def runtime_stats(harness: ShuffleHarness) -> tuple[int, int]:
        return (harness.runtime.stats.messages, harness.runtime.stats.bytes_moved)


class TestBroadcastDirectShip:
    def test_every_target_receives_the_whole_relation(self):
        harness = ShuffleHarness(4)
        ex = harness.executor
        parts = [
            Part(p, [(i, j) for j in range(5)])
            for i, p in enumerate(harness.procs[:3])
        ]
        relation = DistRelation(parts, None)
        expected = relation.all_rows()
        copies = ex._broadcast(relation, harness.procs, PAIR)
        assert copies == [expected] * 4

    def test_direct_ship_charges_part_bytes_and_drops_the_gather_hop(self):
        harness = ShuffleHarness(4)
        ex = harness.executor
        harness.dispatch_all()
        parts = [
            Part(p, [(i, j) for j in range(5 + i)])
            for i, p in enumerate(harness.procs[:3])
        ]
        relation = DistRelation(parts, None)
        targets = harness.procs
        before = harness.runtime.stats.bytes_moved
        ex._broadcast(relation, targets, PAIR)
        shipped = harness.runtime.stats.bytes_moved - before

        # Cost equivalence per target: exactly the bytes of the parts not
        # already resident there, shipped straight from their sources.
        expected = sum(
            ex._row_bytes(PAIR, part.rows)
            for target in targets
            for part in parts
            if part.process is not target
        )
        assert shipped == expected

        # The old strategy gathered at parts[0] first: same fan-out bytes
        # plus a full extra hop for every non-resident row.
        gather_hop = sum(ex._row_bytes(PAIR, p.rows) for p in parts[1:])
        old_fan_out = sum(
            ex._row_bytes(PAIR, relation.all_rows())
            for target in targets
            if target is not parts[0].process
        )
        assert shipped < gather_hop + old_fan_out
