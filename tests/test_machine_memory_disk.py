"""Tests for memory accounting and the disk model."""

import pytest

from repro.errors import OutOfMemoryError
from repro.machine.disk import Disk
from repro.machine.memory import MemoryAccount


class TestMemoryAccount:
    def test_allocate_and_free(self):
        account = MemoryAccount(1000, owner="PE0")
        account.allocate(400, "frag-a")
        account.allocate(100, "frag-b")
        assert account.used == 500
        assert account.available == 500
        assert account.free("frag-a") == 400
        assert account.used == 100

    def test_allocation_accumulates_under_same_tag(self):
        account = MemoryAccount(1000)
        account.allocate(100, "t")
        account.allocate(50, "t")
        assert account.holding("t") == 150

    def test_exhaustion_raises(self):
        account = MemoryAccount(100)
        account.allocate(80, "a")
        with pytest.raises(OutOfMemoryError):
            account.allocate(30, "b")
        # Failed allocation leaves the account unchanged.
        assert account.used == 80

    def test_resize_up_and_down(self):
        account = MemoryAccount(1000)
        account.allocate(100, "t")
        account.resize("t", 700)
        assert account.holding("t") == 700
        account.resize("t", 0)
        assert account.holding("t") == 0
        assert "t" not in account.tags()

    def test_resize_respects_capacity(self):
        account = MemoryAccount(100)
        account.allocate(50, "t")
        with pytest.raises(OutOfMemoryError):
            account.resize("t", 150)
        assert account.holding("t") == 50

    def test_peak_tracks_high_water_mark(self):
        account = MemoryAccount(1000)
        account.allocate(600, "t")
        account.free("t")
        account.allocate(100, "u")
        assert account.peak == 600

    def test_negative_and_zero_rejected(self):
        with pytest.raises(ValueError):
            MemoryAccount(0)
        account = MemoryAccount(10)
        with pytest.raises(ValueError):
            account.allocate(-1, "t")

    def test_free_unknown_tag_is_noop(self):
        account = MemoryAccount(10)
        assert account.free("nothing") == 0


class TestDisk:
    def test_write_then_read_roundtrip(self):
        disk = Disk(node=0)
        disk.write("log/1", b"hello")
        payload, cost = disk.read("log/1")
        assert payload == b"hello"
        assert cost > 0

    def test_missing_key_raises(self):
        disk = Disk(node=0)
        with pytest.raises(KeyError):
            disk.read("absent")

    def test_sequential_cheaper_than_random(self):
        disk = Disk(node=0)
        big = 10 * disk.page_bytes
        assert disk.access_cost(big, sequential=True) < disk.access_cost(
            big, sequential=False
        )

    def test_cost_charges_whole_pages(self):
        disk = Disk(node=0)
        assert disk.transfer_time(1) == disk.transfer_time(disk.page_bytes)
        assert disk.transfer_time(disk.page_bytes + 1) == pytest.approx(
            2 * disk.transfer_time(disk.page_bytes)
        )

    def test_zero_bytes_free(self):
        disk = Disk(node=0)
        assert disk.access_cost(0) == 0.0

    def test_keys_prefix_listing(self):
        disk = Disk(node=0)
        disk.write("wal/ofm1/0", b"a")
        disk.write("wal/ofm1/1", b"b")
        disk.write("wal/ofm2/0", b"c")
        assert disk.keys("wal/ofm1/") == ["wal/ofm1/0", "wal/ofm1/1"]
        assert "wal/ofm2/0" in disk

    def test_delete_and_stats(self):
        disk = Disk(node=0)
        disk.write("k", b"xyz")
        disk.delete("k")
        assert "k" not in disk
        assert disk.stats.writes == 1
        assert disk.stats.bytes_written == 3
        assert disk.used_bytes() == 0
