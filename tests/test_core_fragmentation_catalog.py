"""Tests for fragmentation schemes, the catalog, and allocation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError, CatalogError
from repro.machine import Machine, MachineConfig
from repro.core.allocation import DataAllocationManager
from repro.core.catalog import Catalog, FragmentInfo, IndexInfo, TableInfo
from repro.core.fragmentation import (
    FragmentationScheme,
    HashFragmentation,
    RangeFragmentation,
    RoundRobinFragmentation,
    SingleFragment,
    build_scheme,
    stable_hash,
)
from repro.storage import DataType, Schema


class TestHashFragmentation:
    def test_deterministic_and_in_range(self):
        scheme = HashFragmentation(0, 8)
        for value in [0, 1, 12345, "abc", 2.5, True, None]:
            fragment = scheme.fragment_of((value, "x"))
            assert 0 <= fragment < 8
            assert fragment == scheme.fragment_of((value, "other"))

    def test_equal_values_colocate(self):
        scheme = HashFragmentation(1, 4)
        assert scheme.fragment_of((1, "k")) == scheme.fragment_of((2, "k"))

    def test_pruning_point_lookup(self):
        scheme = HashFragmentation(0, 8)
        fragment = scheme.fragment_of((42, None))
        assert scheme.prunable_fragments(0, 42) == [fragment]
        assert scheme.prunable_fragments(1, 42) is None
        assert scheme.prunable_fragments(0, None) is None

    def test_spec_roundtrip(self):
        scheme = HashFragmentation(2, 5)
        rebuilt = FragmentationScheme.from_spec(scheme.to_spec())
        assert isinstance(rebuilt, HashFragmentation)
        assert rebuilt.column == 2 and rebuilt.n_fragments == 5

    @given(st.integers(-10_000, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_stable_hash_is_stable_for_ints(self, value):
        assert stable_hash(value) == stable_hash(value)
        assert stable_hash(value) >= 0


class TestRangeFragmentation:
    def test_boundaries_define_fragments(self):
        scheme = RangeFragmentation(0, (10, 20))
        assert scheme.n_fragments == 3
        assert scheme.fragment_of((5,)) == 0
        assert scheme.fragment_of((10,)) == 1
        assert scheme.fragment_of((15,)) == 1
        assert scheme.fragment_of((20,)) == 2
        assert scheme.fragment_of((99,)) == 2

    def test_nulls_in_first_fragment(self):
        scheme = RangeFragmentation(0, (10,))
        assert scheme.fragment_of((None,)) == 0

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(CatalogError):
            RangeFragmentation(0, (20, 10))

    def test_pruning(self):
        scheme = RangeFragmentation(0, (10, 20))
        assert scheme.prunable_fragments(0, 15) == [1]

    def test_spec_roundtrip(self):
        scheme = RangeFragmentation(1, ("d", "m"))
        rebuilt = FragmentationScheme.from_spec(scheme.to_spec())
        assert rebuilt.boundaries == ("d", "m")


class TestRoundRobin:
    def test_perfect_balance(self):
        scheme = RoundRobinFragmentation(4)
        counts = [0] * 4
        for i in range(40):
            counts[scheme.fragment_of((i,))] += 1
        assert counts == [10, 10, 10, 10]

    def test_no_pruning(self):
        assert RoundRobinFragmentation(4).prunable_fragments(0, 1) is None


class TestBuildScheme:
    SCHEMA = Schema.of(id=DataType.INT, name=DataType.STRING)

    def test_hash_by_name(self):
        scheme = build_scheme("hash", self.SCHEMA, "name", 4)
        assert isinstance(scheme, HashFragmentation)
        assert scheme.column == 1

    def test_range(self):
        scheme = build_scheme("range", self.SCHEMA, "id", 0, (10,))
        assert isinstance(scheme, RangeFragmentation)

    def test_unknown_kind(self):
        with pytest.raises(CatalogError):
            build_scheme("zigzag", self.SCHEMA, "id", 2)


class TestCatalog:
    def make_info(self, name="t"):
        return TableInfo(
            name=name,
            schema=Schema.of(id=DataType.INT, v=DataType.STRING),
            scheme=HashFragmentation(0, 2),
            fragments=[FragmentInfo(0, 1, f"{name}.0"), FragmentInfo(1, 2, f"{name}.1")],
            primary_key=("id",),
            indexes=[IndexInfo("pk_t", ("id",), True, "hash")],
            row_count=100,
            distinct_estimates={"id": 100, "v": 10},
            total_bytes=2000,
        )

    def test_create_lookup_drop(self):
        catalog = Catalog()
        catalog.create_table(self.make_info())
        assert catalog.has_table("T")  # case-insensitive
        assert catalog.table("t").row_count == 100
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        with pytest.raises(CatalogError):
            catalog.table("t")

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.create_table(self.make_info())
        with pytest.raises(CatalogError):
            catalog.create_table(self.make_info())

    def test_views_for_binder_and_optimizer(self):
        catalog = Catalog()
        catalog.create_table(self.make_info())
        assert "t" in catalog.schemas()
        stats = catalog.statistics()["t"]
        assert stats.row_count == 100
        assert stats.ndv("id") == 100

    def test_serialize_roundtrip(self):
        catalog = Catalog()
        catalog.create_table(self.make_info("alpha"))
        catalog.create_table(self.make_info("beta"))
        rebuilt = Catalog.deserialize(catalog.serialize())
        assert rebuilt.table_names() == ["alpha", "beta"]
        info = rebuilt.table("alpha")
        assert info.primary_key == ("id",)
        assert info.schema.names() == ["id", "v"]
        assert isinstance(info.scheme, HashFragmentation)
        assert info.fragments[1].ofm_name == "alpha.1"
        assert info.indexes[0].unique


class TestAllocation:
    def test_spreads_over_distinct_nodes(self):
        machine = Machine(MachineConfig(n_nodes=8))
        allocator = DataAllocationManager(machine, reserve_node=0)
        nodes = allocator.place_fragments(4)
        assert len(set(nodes)) == 4
        assert 0 not in nodes  # reserved for the GDH

    def test_wraps_when_more_fragments_than_nodes(self):
        machine = Machine(MachineConfig(n_nodes=4))
        allocator = DataAllocationManager(machine, reserve_node=None)
        nodes = allocator.place_fragments(10)
        assert len(nodes) == 10
        assert set(nodes) <= set(range(4))

    def test_prefers_free_memory(self):
        machine = Machine(MachineConfig(n_nodes=4))
        machine.node(1).memory.allocate(10_000_000, "hog")
        allocator = DataAllocationManager(machine, reserve_node=None)
        nodes = allocator.place_fragments(3)
        assert 1 not in nodes

    def test_capacity_check(self):
        machine = Machine(MachineConfig(n_nodes=2))
        allocator = DataAllocationManager(machine, reserve_node=None)
        with pytest.raises(AllocationError):
            allocator.place_fragments(
                1, expected_bytes_per_fragment=machine.config.memory_bytes + 1
            )

    def test_reserve_used_when_unavoidable(self):
        machine = Machine(MachineConfig(n_nodes=2))
        allocator = DataAllocationManager(machine, reserve_node=0)
        nodes = allocator.place_fragments(2)
        assert sorted(set(nodes)) == [0, 1]
