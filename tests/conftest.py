"""Shared fixtures for the PRISMA reproduction test suite."""

from __future__ import annotations

import pytest

from repro.machine import Machine, MachineConfig, small_machine
from repro.pool import PoolRuntime
from repro.storage import DataType, Schema, Table


@pytest.fixture
def config4() -> MachineConfig:
    """A 4-element machine, every element disk-equipped."""
    return small_machine(4)


@pytest.fixture
def machine4(config4) -> Machine:
    return Machine(config4)


@pytest.fixture
def runtime4(machine4) -> PoolRuntime:
    return PoolRuntime(machine4)


@pytest.fixture
def config64() -> MachineConfig:
    """The paper's 64-element prototype (disk on every 8th element)."""
    from repro.machine import paper_prototype

    return paper_prototype()


@pytest.fixture
def emp_schema() -> Schema:
    return Schema.of(
        id=DataType.INT, name=DataType.STRING, dept=DataType.STRING, salary=DataType.FLOAT
    )


@pytest.fixture
def emp_table(emp_schema) -> Table:
    table = Table("emp", emp_schema)
    table.insert_many(
        [
            (1, "ada", "eng", 120.0),
            (2, "bob", "eng", 95.0),
            (3, "cy", "sales", 80.0),
            (4, "dee", "sales", 85.0),
            (5, "eve", "hr", 70.0),
        ]
    )
    return table
