"""Tests for the packet-level network simulator (paper Section 3.2)."""

import pytest

from repro.machine import MachineConfig, PacketNetwork
from repro.machine.traffic import (
    PoissonTraffic,
    hotspot_destination,
    run_load_point,
    uniform_destination,
)


def small_network(**overrides) -> PacketNetwork:
    config = MachineConfig(n_nodes=16, **overrides)
    return PacketNetwork(config)


class TestSinglePacket:
    def test_one_hop_latency_is_service_plus_switch(self):
        net = small_network()
        destination = net.topology.neighbors(0)[0]
        net.inject(0, destination)
        net.loop.run()
        config = net.config
        expected = config.packet_service_time_s + config.switch_delay_s
        assert net.stats.delivered == 1
        assert net.stats.mean_latency_s() == pytest.approx(expected)
        assert net.stats.mean_hops() == 1

    def test_multi_hop_latency_scales_with_hops(self):
        net = small_network()
        hops = net.router.hops(0, 15)
        assert hops > 1
        net.inject(0, 15)
        net.loop.run()
        config = net.config
        expected = hops * (config.packet_service_time_s + config.switch_delay_s)
        assert net.stats.mean_latency_s() == pytest.approx(expected)
        assert net.stats.mean_hops() == hops

    def test_local_packet_is_free(self):
        net = small_network()
        net.inject(3, 3)
        net.loop.run()
        assert net.stats.delivered == 1
        assert net.stats.local == 1
        assert net.stats.mean_latency_s() == 0.0


class TestQueueing:
    def test_back_to_back_packets_queue_on_one_link(self):
        net = small_network()
        destination = net.topology.neighbors(0)[0]
        for _ in range(3):
            net.inject(0, destination)
        net.loop.run()
        service = net.config.packet_service_time_s
        switch = net.config.switch_delay_s
        # Third packet waits 2 service times in the queue.
        assert net.stats.max_latency_s == pytest.approx(3 * service + switch)
        assert net.stats.delivered == 3

    def test_bounded_queue_drops(self):
        config = MachineConfig(n_nodes=16)
        net = PacketNetwork(config, queue_capacity=1)
        destination = net.topology.neighbors(0)[0]
        for _ in range(10):
            net.inject(0, destination)
        net.loop.run()
        assert net.stats.dropped > 0
        assert net.stats.delivered + net.stats.dropped == 10


class TestMeasurement:
    def test_warmup_cut_excludes_earlier_packets(self):
        net = small_network()
        net.inject(0, 15)
        net.loop.run()
        net.start_measuring()
        net.inject(0, 15)
        net.loop.run()
        assert net.stats.delivered == 1
        assert net.stats.injected == 1

    def test_throughput_per_node(self):
        net = small_network()
        for destination in range(1, 9):
            net.inject(0, destination)
        net.loop.run()
        assert net.throughput_per_node_pps(1.0) == pytest.approx(8 / 16)

    def test_link_utilization_bounded(self):
        net = small_network()
        for _ in range(5):
            net.inject(0, net.topology.neighbors(0)[0])
        net.loop.run()
        utilization = net.link_utilization(net.loop.now)
        assert all(0.0 <= u <= 1.0 for u in utilization.values())


class TestTrafficGenerators:
    def test_poisson_traffic_is_deterministic_under_seed(self):
        results = []
        for _ in range(2):
            net = small_network()
            results.append(run_load_point(net, 2000, warmup_s=0.005, measure_s=0.02, seed=7))
        assert results[0] == results[1]

    def test_uniform_destination_never_self(self):
        import random

        rng = random.Random(0)
        for _ in range(500):
            source = rng.randrange(16)
            assert uniform_destination(rng, source, 16) != source

    def test_hotspot_concentrates_traffic(self):
        import random

        rng = random.Random(0)
        chooser = hotspot_destination(fraction=0.9, hotspot=3)
        picks = [chooser(rng, 1, 16) for _ in range(300)]
        assert picks.count(3) > 200

    def test_low_load_delivers_offered_rate(self):
        net = small_network()
        result = run_load_point(net, 1000, warmup_s=0.01, measure_s=0.05, seed=1)
        # Far below saturation: delivered ~= offered (within Poisson noise).
        assert result["delivered_pps_per_node"] == pytest.approx(1000, rel=0.25)
        assert result["dropped"] == 0

    def test_overload_saturates_below_offered(self):
        net = small_network()
        bound = net.saturation_bound_pps()
        result = run_load_point(
            net, bound * 3, warmup_s=0.01, measure_s=0.03, seed=2
        )
        assert result["delivered_pps_per_node"] < result["offered_pps_per_node"] * 0.8
        # Queues grow without bound past saturation.
        assert result["in_flight"] > 0

    def test_traffic_requires_positive_rate(self):
        net = small_network()
        from repro.errors import MachineError

        with pytest.raises(MachineError):
            PoissonTraffic(net, 0)


class TestSaturationBound:
    def test_bound_matches_paper_magnitude_at_64_nodes(self):
        """The paper claims 'upto 20.000 packets/sec per PE' (Section 3.2)."""
        mesh = PacketNetwork(MachineConfig(n_nodes=64, topology="mesh"))
        chordal = PacketNetwork(MachineConfig(n_nodes=64, topology="chordal_ring"))
        assert 15_000 < mesh.saturation_bound_pps() < 45_000
        assert 15_000 < chordal.saturation_bound_pps() < 45_000

    def test_single_node_bound_infinite(self):
        net = PacketNetwork(MachineConfig(n_nodes=1, topology="complete"))
        assert net.saturation_bound_pps() == float("inf")
