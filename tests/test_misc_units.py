"""Unit tests for the smaller supporting modules: statistics helpers,
result formatting, the evaluator facade, commit log, DBA statements."""

import pytest

from repro import MachineConfig, PrismaDB
from repro.machine import Machine
from repro.machine.stats import format_table, mean, percentile, stddev, variance
from repro.exec.evaluation import INTERPRETATION_FACTOR, Evaluator, expression_weight
from repro.exec.expressions import Arithmetic, Comparison, and_, col, eq, lit
from repro.core.result import QueryResult
from repro.core.twophase import CommitLog


class TestStatsHelpers:
    def test_mean_variance_stddev(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        assert mean(values) == pytest.approx(5.0)
        assert variance(values) == pytest.approx(32 / 7)
        assert stddev(values) == pytest.approx((32 / 7) ** 0.5)

    def test_empty_and_singleton(self):
        assert mean([]) == 0.0
        assert variance([3.0]) == 0.0
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 99) == 7.0

    def test_percentile_interpolates(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0) == 10.0
        assert percentile(values, 100) == 40.0
        assert percentile(values, 50) == pytest.approx(25.0)
        with pytest.raises(ValueError):
            percentile(values, 150)

    def test_format_table_alignment(self):
        text = format_table(["name", "n"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("n")
        assert all(len(line) == len(lines[0]) for line in lines[1:])


class TestEvaluatorFacade:
    def test_weight_counts_nodes(self):
        expr = and_(eq(col(0), lit(1)), Comparison("<", col(1), lit(2)))
        assert expression_weight(expr) == 7  # and + 2 cmp + 4 leaves

    def test_interpreted_weight_penalized(self):
        expr = eq(col(0), lit(1))
        _, compiled_weight = Evaluator(compiled=True).predicate(expr)
        _, interpreted_weight = Evaluator(compiled=False).predicate(expr)
        assert interpreted_weight == compiled_weight * INTERPRETATION_FACTOR

    def test_backends_agree(self):
        expr = Comparison(">", Arithmetic("+", col(0), col(1)), lit(5))
        rows = [(2, 4), (1, 1), (None, 3)]
        compiled_fn, _ = Evaluator(compiled=True).predicate(expr)
        interpreted_fn, _ = Evaluator(compiled=False).predicate(expr)
        assert [compiled_fn(r) for r in rows] == [interpreted_fn(r) for r in rows]

    def test_scalar_helper(self):
        fn, _ = Evaluator().scalar(Arithmetic("*", col(0), lit(3)))
        assert fn((4,)) == 12


class TestQueryResult:
    def test_scalar(self):
        result = QueryResult("select", columns=["n"], rows=[(5,)])
        assert result.scalar() == 5

    def test_scalar_requires_1x1(self):
        with pytest.raises(ValueError):
            QueryResult("select", columns=["n"], rows=[(5,), (6,)]).scalar()
        with pytest.raises(ValueError):
            QueryResult("select", columns=["a", "b"], rows=[(1, 2)]).scalar()

    def test_format_table_renders_nulls_and_truncates(self):
        result = QueryResult(
            "select",
            columns=["a"],
            rows=[(None,)] + [(i,) for i in range(60)],
        )
        text = result.format_table(max_rows=5)
        assert "NULL" in text
        assert "more rows" in text

    def test_message_only_results(self):
        result = QueryResult("ddl", message="done")
        assert result.format_table() == "done"
        assert result.response_time == 0.0


class TestCommitLog:
    def test_outcomes_roundtrip(self):
        machine = Machine(MachineConfig(n_nodes=2, disk_nodes=(0,)))
        log = CommitLog(machine, coordinator_node=1)
        cost = log.record(7, "commit")
        assert cost > 0
        log.record(9, "abort")
        assert log.outcome_of(7) == "commit"
        assert log.outcome_of(9) == "abort"
        assert log.outcome_of(12345) == "abort"  # presumed abort
        assert log.outcomes() == {7: "commit", 9: "abort"}


class TestDbaStatements:
    @pytest.fixture
    def db(self):
        db = PrismaDB(MachineConfig(n_nodes=8, disk_nodes=(0,)))
        db.execute(
            "CREATE TABLE t (id INT PRIMARY KEY, v INT)"
            " FRAGMENTED BY HASH(id) INTO 2"
        )
        db.bulk_load("t", [(i, i % 4) for i in range(20)])
        return db

    def test_show_fragments(self, db):
        result = db.execute("SHOW FRAGMENTS t")
        assert result.columns == ["fragment", "copy", "element", "ofm", "rows"]
        assert len(result.rows) == 2
        assert sum(row[4] for row in result.rows) == 20

    def test_analyze_updates_distinct_estimates(self, db):
        db.execute("DELETE FROM t WHERE v = 0")
        db.execute("ANALYZE t")
        estimates = db.catalog.table("t").distinct_estimates
        assert estimates["v"] == 3

    def test_analyze_all_tables(self, db):
        db.execute("CREATE TABLE u (x INT)")
        result = db.execute("ANALYZE")
        assert "2 table(s)" in result.message

    def test_show_fragments_unknown_table(self, db):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            db.execute("SHOW FRAGMENTS nope")


class TestExplainOutput:
    def test_explain_reports_estimates_and_lock_footprint(self):
        db = PrismaDB(MachineConfig(n_nodes=8, disk_nodes=(0,)))
        db.execute(
            "CREATE TABLE t (id INT PRIMARY KEY, v INT)"
            " FRAGMENTED BY HASH(id) INTO 4"
        )
        db.bulk_load("t", [(i, i % 3) for i in range(100)])
        lines = [row[0] for row in db.execute(
            "EXPLAIN SELECT v FROM t WHERE id = 5"
        ).rows]
        text = "\n".join(lines)
        assert "estimated rows: 1" in text
        assert "fragments to lock/scan: 1" in text  # point query prunes
        full = "\n".join(
            row[0] for row in db.execute("EXPLAIN SELECT * FROM t").rows
        )
        assert "fragments to lock/scan: 4" in full
