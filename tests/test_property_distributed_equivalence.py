"""Property: the distributed engine answers exactly like single-site
evaluation, for randomly generated SQL over randomly fragmented data.

Hypothesis generates SELECT statements from a template grammar (filters,
joins, grouping, set operations, ordering) and random small relations;
each query runs against a PrismaDB with several fragments and against
the LocalExecutor oracle on the gathered rows.  Any divergence is a bug
in planning, repartitioning, two-phase aggregation, or locking.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import MachineConfig, PrismaDB
from repro.algebra.local_exec import LocalExecutor
from repro.sql import Binder, parse_statement
from repro.storage import DataType, Schema

R_SCHEMA = Schema.of(a=DataType.INT, b=DataType.INT, s=DataType.STRING)
S_SCHEMA = Schema.of(k=DataType.INT, t=DataType.STRING)

_r_rows = st.lists(
    st.tuples(
        st.integers(0, 9),
        st.integers(-5, 5),
        st.sampled_from(["x", "y", "z"]),
    ),
    min_size=0,
    max_size=25,
)
_s_rows = st.lists(
    st.tuples(st.integers(0, 9), st.sampled_from(["x", "y", "q"])),
    min_size=0,
    max_size=10,
)

_filters = st.sampled_from(
    [
        "",
        " WHERE a = 3",
        " WHERE b > 0",
        " WHERE a = 3 AND b <= 2",
        " WHERE s = 'x' OR b = -1",
        " WHERE a IN (1, 2, 3)",
        " WHERE s LIKE 'x%'",
        " WHERE a BETWEEN 2 AND 7",
    ]
)

_shapes = st.sampled_from(
    [
        "SELECT * FROM r{filter}",
        "SELECT a, b + 1 AS b1 FROM r{filter}",
        "SELECT DISTINCT s FROM r{filter}",
        "SELECT a, COUNT(*), SUM(b), AVG(b) FROM r{filter} GROUP BY a",
        "SELECT s, MIN(b), MAX(b) FROM r{filter} GROUP BY s HAVING COUNT(*) > 1",
        "SELECT COUNT(*) FROM r{filter}",
        "SELECT r.s, s.t FROM r, s WHERE r.a = s.k",
        "SELECT r.a FROM r JOIN s ON r.a = s.k AND r.s = s.t",
        "SELECT r.a, s.t FROM r LEFT JOIN s ON r.a = s.k{left_filter}",
        "SELECT a FROM r{filter} UNION SELECT k FROM s",
        "SELECT a FROM r{filter} EXCEPT SELECT k FROM s",
        "SELECT s FROM r{filter} INTERSECT SELECT t FROM s",
    ]
)


@st.composite
def queries(draw):
    shape = draw(_shapes)
    filter_clause = draw(_filters)
    return shape.format(filter=filter_clause, left_filter=filter_clause.replace(" WHERE ", " WHERE r."))


def oracle(sql: str, r_rows, s_rows):
    binder = Binder({"r": R_SCHEMA, "s": S_SCHEMA})
    plan = binder.bind_query(parse_statement(sql))
    rows = LocalExecutor({"r": r_rows, "s": s_rows}).run(plan)
    return sorted(rows, key=repr)


@given(sql=queries(), r_rows=_r_rows, s_rows=_s_rows, fragments=st.sampled_from([2, 3, 5]))
@settings(max_examples=150, deadline=None)
def test_distributed_equals_local(sql, r_rows, s_rows, fragments):
    db = PrismaDB(MachineConfig(n_nodes=8, disk_nodes=(0,)))
    db.execute(
        f"CREATE TABLE r (a INT, b INT, s STRING) FRAGMENTED BY HASH(a) INTO {fragments}"
    )
    db.execute("CREATE TABLE s (k INT, t STRING) FRAGMENTED BY ROUNDROBIN INTO 2")
    db.bulk_load("r", r_rows)
    db.bulk_load("s", s_rows)
    measured = sorted(db.query(sql), key=repr)
    expected = oracle(sql, r_rows, s_rows)
    assert measured == expected, sql


@given(sql=queries(), r_rows=_r_rows, s_rows=_s_rows)
@settings(max_examples=80, deadline=None)
def test_optimizer_never_changes_answers(sql, r_rows, s_rows):
    """The whole optimizer pipeline (rewrites, join ordering, pruning,
    CSE) must be answer-preserving through the full engine."""
    from repro.algebra.optimizer import OptimizerOptions

    results = []
    for options in (
        OptimizerOptions(),
        OptimizerOptions(
            enable_rewrites=False,
            enable_join_reorder=False,
            enable_prune=False,
            enable_cse=False,
        ),
    ):
        db = PrismaDB(
            MachineConfig(n_nodes=8, disk_nodes=(0,)), optimizer_options=options
        )
        db.execute("CREATE TABLE r (a INT, b INT, s STRING) FRAGMENTED BY HASH(a) INTO 3")
        db.execute("CREATE TABLE s (k INT, t STRING)")
        db.bulk_load("r", r_rows)
        db.bulk_load("s", s_rows)
        results.append(sorted(db.query(sql), key=repr))
    assert results[0] == results[1], sql
