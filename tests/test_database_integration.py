"""End-to-end integration tests for PrismaDB: SQL, transactions,
fragmentation transparency, recovery, PRISMAlog."""

import pytest

from repro import MachineConfig, PrismaDB
from repro.errors import (
    BindError,
    CatalogError,
    DeadlockError,
    PrismaError,
    TransactionError,
)
from repro.machine.config import paper_prototype


def small_db(**kwargs) -> PrismaDB:
    config = MachineConfig(n_nodes=8, disk_nodes=(0, 4))
    return PrismaDB(config, **kwargs)


@pytest.fixture
def db():
    return small_db()


@pytest.fixture
def loaded(db):
    db.execute(
        "CREATE TABLE emp (id INT PRIMARY KEY, name STRING, dept STRING,"
        " sal FLOAT) FRAGMENTED BY HASH(id) INTO 4"
    )
    db.execute("CREATE TABLE dept (dname STRING PRIMARY KEY, city STRING)")
    db.execute(
        "INSERT INTO emp VALUES (1,'ada','eng',120.0),(2,'bob','eng',95.0),"
        "(3,'cy','sales',80.0),(4,'dee','sales',85.0),(5,'eve','hr',70.0)"
    )
    db.execute(
        "INSERT INTO dept VALUES ('eng','ams'),('sales','rtm'),('hr','utr')"
    )
    return db


class TestDdl:
    def test_create_show_drop(self, db):
        db.execute("CREATE TABLE t (a INT)")
        assert db.execute("SHOW TABLES").rows == [("t",)]
        db.execute("DROP TABLE t")
        assert db.execute("SHOW TABLES").rows == []

    def test_duplicate_table_rejected(self, db):
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (a INT)")

    def test_fragments_spread_over_elements(self, db):
        db.execute("CREATE TABLE t (a INT) FRAGMENTED BY ROUNDROBIN INTO 4")
        info = db.catalog.table("t")
        assert len({f.node_id for f in info.fragments}) == 4

    def test_create_index(self, loaded):
        loaded.execute("CREATE INDEX bydept ON emp (dept)")
        info = loaded.catalog.table("emp")
        assert any(i.name == "bydept" for i in info.indexes)
        with pytest.raises(CatalogError):
            loaded.execute("CREATE INDEX bydept ON emp (dept)")

    def test_primary_key_unique_within_fragment_home(self, loaded):
        # id=1 hashes to a fixed fragment; a second id=1 must be rejected.
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            loaded.execute("INSERT INTO emp VALUES (1,'dup','eng',1.0)")

    def test_machine_needs_a_disk(self):
        with pytest.raises(PrismaError):
            PrismaDB(MachineConfig(n_nodes=4))


class TestQueries:
    def test_select_across_fragments(self, loaded):
        rows = loaded.query("SELECT name FROM emp WHERE sal >= 85 ORDER BY name")
        assert rows == [("ada",), ("bob",), ("dee",)]

    def test_join_and_aggregate(self, loaded):
        rows = loaded.query(
            "SELECT d.city, COUNT(*) AS n, AVG(e.sal) FROM emp e"
            " JOIN dept d ON e.dept = d.dname GROUP BY d.city ORDER BY city"
        )
        assert rows == [("ams", 2, 107.5), ("rtm", 2, 82.5), ("utr", 1, 70.0)]

    def test_fragmentation_is_transparent(self):
        """Same data, different fragment counts -> same answers."""
        answers = []
        for fragments in (1, 2, 8):
            db = small_db()
            db.execute(
                "CREATE TABLE n (v INT PRIMARY KEY, grp INT)"
                f" FRAGMENTED BY HASH(v) INTO {fragments}"
            )
            db.bulk_load("n", [(i, i % 5) for i in range(100)])
            answers.append(
                (
                    db.query("SELECT grp, SUM(v) FROM n GROUP BY grp ORDER BY grp"),
                    db.query("SELECT COUNT(*) FROM n WHERE v % 2 = 0"),
                    db.query("SELECT v FROM n ORDER BY v DESC LIMIT 3"),
                )
            )
        assert answers[0] == answers[1] == answers[2]

    def test_range_fragmentation(self, db):
        db.execute(
            "CREATE TABLE r (k INT) FRAGMENTED BY RANGE(k) VALUES (100, 200)"
        )
        db.bulk_load("r", [(i,) for i in range(0, 300, 10)])
        assert db.execute("SELECT COUNT(*) FROM r WHERE k = 150").scalar() == 1
        assert db.execute("SELECT COUNT(*) FROM r").scalar() == 30

    def test_closure_through_sql(self, db):
        db.execute("CREATE TABLE edge (src INT, dst INT) FRAGMENTED BY HASH(src) INTO 2")
        db.execute("INSERT INTO edge VALUES (1,2),(2,3),(3,4)")
        rows = db.query("SELECT dst FROM CLOSURE(edge) WHERE src = 1 ORDER BY dst")
        assert rows == [(2,), (3,), (4,)]

    def test_union_across_tables(self, loaded):
        rows = loaded.query(
            "SELECT dept FROM emp UNION SELECT dname FROM dept ORDER BY 1"
        )
        assert rows == [("eng",), ("hr",), ("sales",)]

    def test_report_carries_simulated_time(self, loaded):
        result = loaded.execute("SELECT * FROM emp")
        assert result.report is not None
        assert result.report.response_time > 0
        assert result.report.messages > 0

    def test_explain(self, loaded):
        result = loaded.execute(
            "EXPLAIN SELECT name FROM emp WHERE dept = 'eng'"
        )
        text = "\n".join(row[0] for row in result.rows)
        assert "Scan(emp)" in text

    def test_bind_errors_propagate(self, loaded):
        with pytest.raises(BindError):
            loaded.execute("SELECT nothing FROM emp")


class TestDml:
    def test_update_and_delete(self, loaded):
        assert loaded.execute(
            "UPDATE emp SET sal = sal * 2 WHERE dept = 'hr'"
        ).affected_rows == 1
        assert loaded.query("SELECT sal FROM emp WHERE id = 5") == [(140.0,)]
        assert loaded.execute("DELETE FROM emp WHERE sal > 130").affected_rows == 1
        assert loaded.table_row_count("emp") == 4

    def test_update_fragmentation_key_moves_row(self, loaded):
        loaded.execute("UPDATE emp SET id = 100 WHERE id = 1")
        assert loaded.query("SELECT name FROM emp WHERE id = 100") == [("ada",)]
        assert loaded.query("SELECT name FROM emp WHERE id = 1") == []
        assert loaded.table_row_count("emp") == 5
        info = loaded.catalog.table("emp")
        home = info.scheme.fragment_of((100, "ada", "eng", 120.0))
        ofm = loaded.gdh.fragment_ofms[info.fragments[home].ofm_name]
        assert any(row[0] == 100 for row in ofm.table.rows())

    def test_stats_refresh_after_dml(self, loaded):
        loaded.execute("DELETE FROM emp")
        assert loaded.catalog.table("emp").row_count == 0

    def test_explicit_transaction_commit(self, loaded):
        session = loaded.session()
        session.begin()
        session.execute("INSERT INTO dept VALUES ('ops','ein')")
        session.execute("UPDATE emp SET dept = 'ops' WHERE id = 5")
        session.commit()
        assert loaded.query("SELECT dept FROM emp WHERE id = 5") == [("ops",)]

    def test_explicit_transaction_rollback(self, loaded):
        session = loaded.session()
        session.begin()
        session.execute("DELETE FROM emp")
        session.execute("INSERT INTO dept VALUES ('ghost','nowhere')")
        session.rollback()
        assert loaded.table_row_count("emp") == 5
        assert loaded.table_row_count("dept") == 3

    def test_nested_begin_rejected(self, loaded):
        session = loaded.session()
        session.begin()
        with pytest.raises(TransactionError):
            session.begin()

    def test_commit_without_begin_rejected(self, loaded):
        with pytest.raises(TransactionError):
            loaded.session().commit()


class TestConcurrency:
    def test_writers_on_same_fragment_block(self, loaded):
        from repro.core.locks import WouldBlock

        s1, s2 = loaded.session(), loaded.session()
        s1.begin()
        s1.execute("UPDATE emp SET sal = 1.0 WHERE id = 1")
        s2.begin()
        with pytest.raises(WouldBlock):
            s2.execute("UPDATE emp SET sal = 2.0 WHERE id = 1")
        s1.commit()
        s2.execute("UPDATE emp SET sal = 2.0 WHERE id = 1")
        s2.commit()
        assert loaded.query("SELECT sal FROM emp WHERE id = 1") == [(2.0,)]

    def test_waiter_clock_advances_past_holder_commit(self, loaded):
        from repro.core.locks import WouldBlock

        s1, s2 = loaded.session(), loaded.session()
        s1.begin()
        s1.execute("UPDATE emp SET sal = 1.0 WHERE id = 1")
        s2.begin()
        with pytest.raises(WouldBlock):
            s2.execute("UPDATE emp SET sal = 2.0 WHERE id = 1")
        s1.commit()
        holder_finish = s1.clock
        s2.execute("UPDATE emp SET sal = 2.0 WHERE id = 1")
        s2.commit()
        assert s2.clock >= holder_finish

    def test_readers_share(self, loaded):
        s1, s2 = loaded.session(), loaded.session()
        s1.begin()
        s2.begin()
        assert s1.execute("SELECT COUNT(*) FROM emp").scalar() == 5
        assert s2.execute("SELECT COUNT(*) FROM emp").scalar() == 5
        s1.commit()
        s2.commit()

    def test_reader_blocks_writer(self, loaded):
        from repro.core.locks import WouldBlock

        s1, s2 = loaded.session(), loaded.session()
        s1.begin()
        s1.execute("SELECT COUNT(*) FROM emp")
        s2.begin()
        with pytest.raises(WouldBlock):
            s2.execute("DELETE FROM emp")
        s1.commit()

    def test_deadlock_detected_and_victim_aborted(self, loaded):
        from repro.core.locks import WouldBlock

        s1, s2 = loaded.session(), loaded.session()
        s1.begin()
        s2.begin()
        s1.execute("UPDATE emp SET sal = 1.0 WHERE id = 1")
        s2.execute("UPDATE emp SET sal = 1.0 WHERE id = 2")
        with pytest.raises(WouldBlock):
            s1.execute("UPDATE emp SET sal = 2.0 WHERE id = 2")
        with pytest.raises(DeadlockError):
            s2.execute("UPDATE emp SET sal = 2.0 WHERE id = 1")
        # The victim's transaction is gone; s1 can proceed after retry.
        assert not s2.in_transaction
        s1.execute("UPDATE emp SET sal = 2.0 WHERE id = 2")
        s1.commit()

    def test_disjoint_fragments_do_not_conflict(self, loaded):
        s1, s2 = loaded.session(), loaded.session()
        s1.begin()
        s2.begin()
        s1.execute("UPDATE emp SET sal = 1.0 WHERE id = 1")
        s2.execute("UPDATE emp SET sal = 1.0 WHERE id = 2")  # other fragment
        s1.commit()
        s2.commit()


class TestRecovery:
    def test_committed_survives_crash(self, loaded):
        loaded.execute("INSERT INTO dept VALUES ('ops','ein')")
        loaded.crash()
        report = loaded.restart()
        assert report.fragments_recovered == 5
        assert loaded.query("SELECT city FROM dept WHERE dname = 'ops'") == [("ein",)]
        assert loaded.table_row_count("emp") == 5

    def test_uncommitted_lost_on_crash(self, loaded):
        session = loaded.session()
        session.begin()
        session.execute("INSERT INTO dept VALUES ('ghost','x')")
        loaded.crash()
        loaded.restart()
        assert loaded.table_row_count("dept") == 3

    def test_queries_work_after_restart(self, loaded):
        loaded.crash()
        loaded.restart()
        rows = loaded.query("SELECT COUNT(*) FROM emp WHERE dept = 'eng'")
        assert rows == [(2,)]

    def test_checkpoint_bounds_recovery_work(self, loaded):
        for i in range(20, 40):
            loaded.execute(f"INSERT INTO emp VALUES ({i},'p{i}','eng',10.0)")
        loaded.crash()
        long_recovery = loaded.restart()
        loaded.checkpoint()
        loaded.crash()
        short_recovery = loaded.restart()
        assert short_recovery.duration_s <= long_recovery.duration_s
        assert loaded.table_row_count("emp") == 25

    def test_repeated_crash_restart_stable(self, loaded):
        for _ in range(3):
            loaded.crash()
            loaded.restart()
        assert loaded.table_row_count("emp") == 5

    def test_transaction_across_fragments_is_atomic(self, loaded):
        session = loaded.session()
        session.begin()
        session.execute("UPDATE emp SET sal = 0.0 WHERE id = 1")
        session.execute("UPDATE emp SET sal = 0.0 WHERE id = 2")
        session.commit()
        loaded.crash()
        loaded.restart()
        rows = loaded.query("SELECT sal FROM emp WHERE id IN (1, 2) ORDER BY id")
        assert rows == [(0.0,), (0.0,)]


class TestPrismalogIntegration:
    def test_program_over_sql_tables(self, db):
        db.execute("CREATE TABLE parent (p STRING, c STRING) FRAGMENTED BY HASH(p) INTO 2")
        db.execute(
            "INSERT INTO parent VALUES ('jan','piet'),('piet','kees'),('kees','anna')"
        )
        results = db.execute_prismalog(
            """
            ancestor(X, Y) :- parent(X, Y).
            ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
            ? ancestor(jan, X).
            ? ancestor(X, anna).
            """
        )
        assert [r[0] for r in results[0].rows] == ["anna", "kees", "piet"]
        assert results[0].prismalog_stats["closure_operator_hits"] == ["ancestor"]

    def test_program_facts_combine_with_edb(self, db):
        db.execute("CREATE TABLE lives (person STRING, city STRING)")
        db.execute("INSERT INTO lives VALUES ('ada','ams'),('bob','rtm')")
        (result,) = db.execute_prismalog(
            """
            nice(ams).
            happy(X) :- lives(X, C), nice(C).
            ? happy(X).
            """
        )
        assert result.rows == [("ada",)]
