"""Tests for the assembled Machine and its analytic cost model."""

import pytest

from repro.errors import MachineError
from repro.machine import Machine, MachineConfig, paper_prototype, small_machine


class TestConfig:
    def test_paper_defaults(self):
        config = MachineConfig()
        assert config.n_nodes == 64
        assert config.links_per_node == 4
        assert config.link_bandwidth_bps == 10_000_000
        assert config.packet_bits == 256
        assert config.memory_bytes == 16 * 1024 * 1024

    def test_derived_quantities(self):
        config = MachineConfig()
        assert config.packet_bytes == 32
        assert config.packet_service_time_s == pytest.approx(256 / 10e6)
        assert config.link_packets_per_second == pytest.approx(39062.5)
        assert config.packets_for_bytes(0) == 0
        assert config.packets_for_bytes(1) == 1
        assert config.packets_for_bytes(33) == 2

    def test_validation(self):
        with pytest.raises(MachineError):
            MachineConfig(n_nodes=0)
        with pytest.raises(MachineError):
            MachineConfig(topology="starship")
        with pytest.raises(MachineError):
            MachineConfig(disk_nodes=(99,))

    def test_with_override(self):
        config = MachineConfig().with_(n_nodes=16)
        assert config.n_nodes == 16
        assert config.topology == "mesh"

    def test_paper_prototype_has_disks(self):
        config = paper_prototype()
        assert config.n_nodes == 64
        assert 0 in config.disk_nodes
        assert len(config.disk_nodes) == 8


class TestMachine:
    def test_nodes_and_disks(self):
        machine = Machine(paper_prototype())
        assert machine.n_nodes == 64
        assert len(machine.disk_nodes()) == 8
        assert machine.node(0).has_disk
        assert not machine.node(1).has_disk

    def test_node_out_of_range(self):
        machine = Machine(small_machine(4))
        with pytest.raises(MachineError):
            machine.node(4)

    def test_nearest_disk_node(self):
        machine = Machine(paper_prototype())
        assert machine.node(machine.nearest_disk_node(3)).has_disk
        # A disk node is its own nearest disk.
        assert machine.nearest_disk_node(0) == 0

    def test_no_disks_raises(self):
        machine = Machine(MachineConfig(n_nodes=4))
        with pytest.raises(MachineError):
            machine.nearest_disk_node(0)


class TestTransferCost:
    def test_local_transfer_free(self):
        machine = Machine(small_machine(4))
        assert machine.transfer_time(2, 2, 10_000) == 0.0

    def test_transfer_grows_with_size(self):
        machine = Machine(small_machine(4))
        small = machine.transfer_time(0, 1, 100)
        large = machine.transfer_time(0, 1, 100_000)
        assert large > small > 0

    def test_transfer_grows_with_distance(self):
        machine = Machine(MachineConfig(n_nodes=64))
        near = machine.transfer_time(0, 1, 1000)
        far = machine.transfer_time(0, 63, 1000)
        assert far > near

    def test_pipelining_beats_per_hop_retransmission(self):
        """Cut-through: a large transfer over many hops costs roughly
        serialization once, not once per hop."""
        machine = Machine(MachineConfig(n_nodes=64))
        n_bytes = 100_000
        hops = machine.router.hops(0, 63)
        one_hop = machine.transfer_time(0, 1, n_bytes)
        many_hops = machine.transfer_time(0, 63, n_bytes)
        assert many_hops < one_hop * hops * 0.5

    def test_message_time_is_single_packet(self):
        machine = Machine(small_machine(4))
        config = machine.config
        hops = machine.router.hops(0, 1)
        expected = hops * (config.packet_service_time_s + config.switch_delay_s)
        assert machine.message_time(0, 1) == pytest.approx(expected)

    def test_broadcast_is_worst_destination(self):
        machine = Machine(MachineConfig(n_nodes=16))
        worst = max(
            machine.transfer_time(0, d, 500) for d in range(1, 16)
        )
        assert machine.broadcast_time(0, 500) == pytest.approx(worst)


class TestCpuAndDiskCost:
    def test_cpu_time_linear_in_work(self):
        machine = Machine(small_machine(2))
        config = machine.config
        assert machine.cpu_time(tuples=100) == pytest.approx(100 * config.cpu_tuple_cost_s)
        assert machine.cpu_time(hashes=10, compares=5) == pytest.approx(
            10 * config.cpu_hash_cost_s + 5 * config.cpu_compare_cost_s
        )

    def test_disk_time_includes_network_hop(self):
        # Machine with a single remote disk: node 1 has it, node 0 does not.
        config = MachineConfig(n_nodes=4, disk_nodes=(1,))
        machine = Machine(config)
        local = machine.disk_time(1, 8192)
        remote = machine.disk_time(0, 8192)
        assert remote > local

    def test_main_memory_vs_disk_gap(self):
        """The premise of the whole paper: memory access beats disk by
        orders of magnitude."""
        machine = Machine(small_machine(4))
        tuples = 1000
        row_bytes = 50
        memory_cost = machine.cpu_time(tuples=tuples)
        sequential = machine.disk_time(0, tuples * row_bytes, sequential=True)
        random_access = sum(
            machine.disk_time(0, row_bytes, sequential=False) for _ in range(tuples)
        )
        assert sequential > 10 * memory_cost
        assert random_access > 1000 * memory_cost

    def test_utilization_report(self):
        machine = Machine(small_machine(2))
        machine.node(0).charge(0.5)
        util = machine.utilization(1.0)
        assert util[0] == pytest.approx(0.5)
        assert util[1] == 0.0
        assert machine.utilization(0.0)[0] == 0.0
