"""Columnar batch engine + fused heap top-N (PR 7).

Four layers of coverage:

* ``ColumnBatch`` unit behavior (layout round-trips, int packing,
  selection, zero-copy projection);
* compiled batch kernels against their row-at-a-time references on
  randomized mixed-type data (the batch engine's contract is *identical
  rows, identical order*);
* ``top_n_rows`` against the ``sort_rows`` + ``limit_rows`` oracle
  across key types, tie-breaking, direction mixes, and offsets, plus
  the LIMIT/OFFSET edge cases and charge accounting;
* plan-level rewrites (``fuse_sort_limit``, limit/top-N pushdown) and
  the distributed payoff: a fused top-N ships strictly fewer bytes
  than sort-then-limit for LIMIT < partition size.
"""

import math
import random

import pytest

from repro.core.database import MachineConfig, PrismaDB
from repro.errors import ExecutionError
from repro.exec.batch import (
    ColumnBatch,
    batchable_projection,
    compile_agg_kernel,
    compile_batch_predicate,
    compile_batch_projector,
    compile_join_kernel,
    compile_selection_vector,
)
from repro.exec.evaluation import Evaluator
from repro.exec.expressions import Arithmetic, Comparison, col, eq, lit
from repro.exec.operators import (
    AggSpec,
    JoinKind,
    WorkMeter,
    aggregate_rows,
    hash_join,
    limit_rows,
    project_rows,
    select_rows,
    sort_rows,
    top_n_rows,
)
from repro.algebra.local_exec import LocalExecutor
from repro.algebra.plan import (
    LimitNode,
    ProjectNode,
    ScanNode,
    SortNode,
    TopNNode,
)
from repro.algebra.rules import KNOWLEDGE_BASE, apply_rules
from repro.storage import DataType, Schema
from repro.workloads.wisconsin import load_wisconsin

# ---------------------------------------------------------------------------
# ColumnBatch
# ---------------------------------------------------------------------------


class TestColumnBatch:
    ROWS = [(1, "a", 1.5), (2, "b", None), (3, "c", 2.5)]

    def test_row_column_round_trip(self):
        batch = ColumnBatch.from_rows(self.ROWS)
        assert batch.columns() == [[1, 2, 3], ["a", "b", "c"], [1.5, None, 2.5]]
        back = ColumnBatch.from_columns(batch.columns())
        assert back.rows() == self.ROWS
        assert len(batch) == 3
        assert batch.width == 3

    def test_adoption_is_zero_copy(self):
        rows = list(self.ROWS)
        batch = ColumnBatch.from_rows(rows)
        assert batch.rows() is rows

    def test_packed_column_is_int_only(self):
        batch = ColumnBatch.from_rows([(1, True), (2, False), (3, True)])
        packed = batch.packed_column(0)
        assert list(packed) == [1, 2, 3]
        assert packed.typecode == "q"
        # Booleans round-trip as bool, so they must not pack to ints:
        # the fallback is the plain (unpacked) column list.
        unpacked = batch.packed_column(1)
        assert unpacked == [True, False, True]
        assert not isinstance(unpacked, type(packed))

    def test_packed_column_rejects_overflow_and_nulls(self):
        from array import array

        too_big = ColumnBatch.from_rows([(2**63,)])
        assert not isinstance(too_big.packed_column(0), array)
        with_null = ColumnBatch.from_rows([(1,), (None,)])
        assert not isinstance(with_null.packed_column(0), array)

    def test_take_and_project(self):
        batch = ColumnBatch.from_rows(self.ROWS)
        taken = batch.take([0, 2])
        assert taken.rows() == [self.ROWS[0], self.ROWS[2]]
        projected = batch.project((2, 0))
        assert projected.rows() == [(1.5, 1), (None, 2), (2.5, 3)]
        # Pass-through projection shares the column lists (zero copy).
        assert projected.column(1) is batch.column(0)

    def test_empty_batch(self):
        batch = ColumnBatch.from_rows([])
        assert batch.rows() == []
        assert len(batch) == 0


# ---------------------------------------------------------------------------
# Batch kernels vs row-at-a-time references
# ---------------------------------------------------------------------------


def _mixed_rows(seed, n=300, width=4):
    rng = random.Random(seed)

    def value():
        kind = rng.randrange(5)
        if kind == 0:
            return None
        if kind == 1:
            return rng.randrange(-50, 50)
        if kind == 2:
            return round(rng.uniform(-5, 5), 3)
        if kind == 3:
            return rng.choice("abcdef")
        return rng.randrange(10)

    return [tuple(value() for _ in range(width)) for _ in range(n)]


class TestBatchKernels:
    def test_predicate_matches_row_filter(self):
        rows = [(i, i % 7) for i in range(200)]
        expr = Comparison(">", col(1), lit(3))
        kernel = compile_batch_predicate(expr)
        fn, _ = Evaluator().predicate(expr)
        assert kernel(rows) == select_rows(rows, fn, WorkMeter())

    def test_selection_vector_agrees_with_predicate(self):
        rows = [(i, i % 5) for i in range(100)]
        expr = eq(col(1), lit(2))
        indices = compile_selection_vector(expr)(rows)
        assert [rows[i] for i in indices] == compile_batch_predicate(expr)(rows)
        batch = ColumnBatch.from_rows(rows)
        assert batch.take(indices).rows() == compile_batch_predicate(expr)(rows)

    def test_projector_matches_row_projector(self):
        rows = [(i, i + 1, "x") for i in range(50)]
        exprs = [Arithmetic("+", col(0), col(1)), col(2)]
        kernel = compile_batch_projector(exprs)
        fn, _ = Evaluator().projector(exprs)
        assert kernel(rows) == project_rows(rows, fn, WorkMeter())

    @pytest.mark.parametrize("indices", [(1,), (2, 0), (0, 1, 2)])
    def test_pass_through_projector(self, indices):
        rows = [(i, str(i), i * 0.5) for i in range(40)]
        exprs = [col(i) for i in indices]
        assert batchable_projection(exprs) == tuple(indices)
        kernel = compile_batch_projector(exprs)
        assert kernel(rows) == [tuple(row[i] for i in indices) for row in rows]

    def test_computed_projection_is_not_batchable(self):
        assert batchable_projection([Arithmetic("+", col(0), lit(1))]) is None

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_join_kernel_matches_hash_join_single_key(self, seed):
        rng = random.Random(seed)
        left = [(rng.randrange(20), i) for i in range(80)]
        right = [(rng.randrange(20), -i) for i in range(60)]
        left += [(None, 999)]
        right += [(None, -999)]
        kernel = compile_join_kernel((0,), (0,))
        expected = hash_join(
            left, right, lambda r: (r[0],), lambda r: (r[0],), WorkMeter()
        )
        assert kernel(left, right) == expected

    def test_join_kernel_matches_hash_join_multi_key(self):
        rng = random.Random(7)
        left = [(rng.randrange(4), rng.randrange(4), i) for i in range(60)]
        right = [(rng.randrange(4), rng.randrange(4), -i) for i in range(60)]
        left += [(None, 1, 0), (1, None, 0)]
        right += [(None, 1, 0), (1, None, 0)]
        kernel = compile_join_kernel((0, 1), (0, 1))
        expected = hash_join(
            left,
            right,
            lambda r: (r[0], r[1]),
            lambda r: (r[0], r[1]),
            WorkMeter(),
        )
        assert kernel(left, right) == expected

    @pytest.mark.parametrize("seed", [11, 12])
    def test_agg_kernel_matches_aggregate_rows_grouped(self, seed):
        rng = random.Random(seed)
        rows = [
            (rng.randrange(5), rng.choice([None, rng.randrange(100)]))
            for _ in range(300)
        ]
        aggregates = [
            ("count", None),
            ("count", col(1)),
            ("sum", col(1)),
            ("avg", col(1)),
            ("min", col(1)),
            ("max", col(1)),
        ]
        kernel = compile_agg_kernel((0,), aggregates)
        specs = [
            AggSpec(func, None if arg is None else (lambda r: r[1]))
            for func, arg in aggregates
        ]
        expected = aggregate_rows(rows, lambda r: (r[0],), specs, WorkMeter())
        assert kernel(rows) == expected

    def test_agg_kernel_global_empty_input(self):
        aggregates = [("count", None), ("sum", col(0)), ("min", col(0))]
        kernel = compile_agg_kernel((), aggregates)
        specs = [
            AggSpec(func, None if arg is None else (lambda r: r[0]))
            for func, arg in aggregates
        ]
        expected = aggregate_rows([], None, specs, WorkMeter())
        assert kernel([]) == expected == [(0, None, None)]

    def test_count_star_shortcut_counts_rows(self):
        kernel = compile_agg_kernel((), [("count", None)])
        assert kernel([]) == [(0,)]
        assert kernel([(None,), (1,), (2,)]) == [(3,)]
        twice = compile_agg_kernel((), [("count", None), ("count", None)])
        assert twice([(1,)] * 5) == [(5, 5)]


# ---------------------------------------------------------------------------
# Batch on/off A/B at the local-executor level
# ---------------------------------------------------------------------------


class TestBatchRowEquivalence:
    SCHEMA = Schema.of(k=DataType.INT, g=DataType.INT, v=DataType.FLOAT)

    @pytest.mark.parametrize("compiled", [True, False])
    def test_same_rows_same_charges(self, compiled):
        rng = random.Random(5)
        rows = [
            (rng.randrange(40), rng.randrange(6), round(rng.uniform(0, 9), 2))
            for _ in range(250)
        ]
        scan = ScanNode("t", self.SCHEMA)
        plan = ProjectNode(SortNode(scan, [(0, False)]), [col(0), col(1)])
        results = {}
        for batch in (True, False):
            meter = WorkMeter()
            executor = LocalExecutor(
                {"t": rows},
                evaluator=Evaluator(compiled=compiled, batch=batch),
                meter=meter,
            )
            results[batch] = (executor.run(plan), meter.tuples, meter.compares)
        assert results[True] == results[False]


# ---------------------------------------------------------------------------
# top_n_rows vs the sort+limit oracle
# ---------------------------------------------------------------------------


def _oracle(rows, positions, limit, offset, descending):
    return limit_rows(
        sort_rows(rows, positions, descending), limit, offset
    )


class TestTopNOracle:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_sort_limit_on_mixed_types(self, seed):
        rows = _mixed_rows(seed, n=120)
        rng = random.Random(seed + 100)
        positions = rng.sample(range(4), rng.randrange(1, 4))
        descending = [rng.random() < 0.5 for _ in positions]
        limit = rng.randrange(0, 140)
        offset = rng.choice([0, 1, 5, 130])
        expected = _oracle(rows, positions, limit, offset, descending)
        got = top_n_rows(rows, positions, limit, offset, descending)
        assert got == expected

    def test_ties_keep_original_order(self):
        # Every key equal: top-N must behave like a stable sort prefix.
        rows = [(1, i) for i in range(20)]
        assert top_n_rows(rows, [0], 5) == rows[:5]
        assert top_n_rows(rows, [0], 5, descending=[True]) == rows[:5]
        assert top_n_rows(rows, [0], 5, offset=3) == rows[3:8]

    def test_nulls_sort_first_ascending_last_descending(self):
        rows = [(3,), (None,), (1,), (None,), (2,)]
        assert top_n_rows(rows, [0], 3) == [(None,), (None,), (1,)]
        assert top_n_rows(rows, [0], 3, descending=[True]) == [
            (3,),
            (2,),
            (1,),
        ]

    def test_limit_zero_and_offset_past_end(self):
        rows = [(2,), (1,)]
        assert top_n_rows(rows, [0], 0) == []
        assert top_n_rows(rows, [0], 5, offset=10) == []

    def test_negative_limit_or_offset_raises(self):
        with pytest.raises(ExecutionError):
            top_n_rows([(1,)], [0], -1)
        with pytest.raises(ExecutionError):
            top_n_rows([(1,)], [0], 1, offset=-2)

    def test_mismatched_directions_raise(self):
        with pytest.raises(ExecutionError):
            top_n_rows([(1, 2)], [0, 1], 1, descending=[True])

    def test_charges_bounded_heap_not_full_sort(self):
        rows = [(i,) for i in range(1000)]
        meter = WorkMeter()
        top_n_rows(rows, [0], 10, meter=meter)
        assert meter.tuples == 1000
        assert meter.compares == pytest.approx(1000 * math.log2(10))
        # Degenerate keep >= n charges the full-sort formula.
        full = WorkMeter()
        top_n_rows(rows, [0], 5000, meter=full)
        assert full.compares == pytest.approx(1000 * math.log2(1000))
        # A bounded heap is strictly cheaper than sorting everything.
        sort_meter = WorkMeter()
        sort_rows(rows, [0], meter=sort_meter)
        assert meter.compares < sort_meter.compares


# ---------------------------------------------------------------------------
# limit_rows / LimitNode edge cases (satellite: charge accounting)
# ---------------------------------------------------------------------------


class TestLimitEdgeCases:
    ROWS = [(i,) for i in range(10)]

    def test_offset_past_end_is_empty_and_charges_len(self):
        meter = WorkMeter()
        assert limit_rows(self.ROWS, 3, offset=50, meter=meter) == []
        # The slice never runs past the rows that exist.
        assert meter.tuples == 10

    def test_offset_plus_limit_overflow_clamps(self):
        meter = WorkMeter()
        out = limit_rows(self.ROWS, 10**9, offset=8, meter=meter)
        assert out == [(8,), (9,)]
        assert meter.tuples == 10

    def test_limit_zero_touches_nothing(self):
        meter = WorkMeter()
        assert limit_rows(self.ROWS, 0, meter=meter) == []
        assert meter.tuples == 0

    def test_charge_equals_rows_touched(self):
        meter = WorkMeter()
        limit_rows(self.ROWS, 3, offset=2, meter=meter)
        assert meter.tuples == 5  # offset rows + emitted rows
        unlimited = WorkMeter()
        limit_rows(self.ROWS, None, meter=unlimited)
        assert unlimited.tuples == 10

    def test_limit_node_runs_edge_cases(self):
        schema = Schema.of(x=DataType.INT)
        scan = ScanNode("t", schema)
        executor = LocalExecutor({"t": self.ROWS})
        assert executor.run(LimitNode(scan, 0)) == []
        assert executor.run(LimitNode(scan, 3, offset=50)) == []
        assert executor.run(LimitNode(scan, 10**6, offset=8)) == [(8,), (9,)]


# ---------------------------------------------------------------------------
# Rewrite rules: fusion and pushdown
# ---------------------------------------------------------------------------

EMP = Schema.of(id=DataType.INT, dept=DataType.STRING, sal=DataType.FLOAT)
TABLES = {
    "emp": [
        (1, "eng", 120.0),
        (2, "eng", 95.0),
        (3, "sales", 80.0),
        (4, "sales", 85.0),
        (5, "hr", 70.0),
    ]
}


def emp():
    return ScanNode("emp", EMP)


def run(plan):
    return LocalExecutor(TABLES).run(plan)


class TestTopNRules:
    def test_fuse_sort_limit(self):
        plan = LimitNode(SortNode(emp(), [(2, True)]), 2)
        rewritten, fired = apply_rules(plan)
        assert "fuse_sort_limit" in fired
        top = [n for n in rewritten.walk() if isinstance(n, TopNNode)]
        assert len(top) == 1
        assert top[0].keys == ((2, True),)
        assert top[0].limit == 2
        assert run(rewritten) == run(plan) == [(1, "eng", 120.0), (2, "eng", 95.0)]

    def test_unbounded_limit_not_fused(self):
        plan = LimitNode(SortNode(emp(), [(0, False)]), None, offset=1)
        rewritten, fired = apply_rules(plan)
        assert "fuse_sort_limit" not in fired
        assert not any(isinstance(n, TopNNode) for n in rewritten.walk())
        assert run(rewritten) == run(plan)

    def test_push_limit_below_project(self):
        # Non-narrowing computed projection: width 3 in, width 3 out.
        plan = LimitNode(
            ProjectNode(
                emp(), [col(0), col(1), Arithmetic("*", col(2), lit(2.0))]
            ),
            2,
        )
        rewritten, fired = apply_rules(plan)
        assert "push_limit_below_project" in fired
        # The projection is now outermost: limit applies before the
        # multiply, so only 2 rows are ever projected.
        assert isinstance(rewritten, ProjectNode)
        assert run(rewritten) == run(plan)

    def test_push_topn_below_plain_projection(self):
        # Full-width permutation: pushing below it costs no shipped
        # width, and the heap then cuts rows before any copying.
        plan = LimitNode(
            SortNode(
                ProjectNode(emp(), [col(2), col(0), col(1)]), [(0, True)]
            ),
            2,
        )
        rewritten, fired = apply_rules(plan)
        assert "fuse_sort_limit" in fired
        assert "push_topn_below_project" in fired
        # TopN now sits under the projection, keyed by the source column.
        projects = [n for n in rewritten.walk() if isinstance(n, ProjectNode)]
        assert projects and isinstance(projects[0].child, TopNNode)
        assert projects[0].child.keys == ((2, True),)
        assert run(rewritten) == run(plan)

    def test_topn_not_pushed_below_computed_projection(self):
        plan = TopNNode(
            ProjectNode(
                emp(), [Arithmetic("*", col(2), lit(-1.0)), col(0), col(1)]
            ),
            [(0, False)],
            2,
        )
        rewritten, fired = apply_rules(plan)
        assert "push_topn_below_project" not in fired
        assert run(rewritten) == run(plan)

    def test_pushes_blocked_below_narrowing_projection(self):
        # Cutting below a narrowing projection would make every site
        # ship wide pre-projection rows: both pushes must stay put.
        narrow = ProjectNode(emp(), [col(2)])
        limit_plan = LimitNode(narrow, 2)
        _, fired = apply_rules(limit_plan)
        assert "push_limit_below_project" not in fired
        topn_plan = TopNNode(ProjectNode(emp(), [col(2)]), [(0, False)], 2)
        rewritten, fired = apply_rules(topn_plan)
        assert "push_topn_below_project" not in fired
        assert run(rewritten) == run(topn_plan)


# ---------------------------------------------------------------------------
# Distributed: fused top-N ships fewer bytes than sort-then-limit
# ---------------------------------------------------------------------------


def _small_db():
    db = PrismaDB(MachineConfig(n_nodes=8, disk_nodes=(0,)))
    load_wisconsin(db, "wisc", 400, fragments=4, seed=3)
    db.quiesce()
    return db


def _without_topn_rules():
    dropped = {"fuse_sort_limit", "push_limit_below_project", "push_topn_below_project"}
    return tuple(r for r in KNOWLEDGE_BASE if r.name not in dropped)


class TestDistributedTopN:
    SQL = "SELECT unique1 FROM wisc ORDER BY unique1 LIMIT 10"

    def _run(self, monkeypatch, rules):
        import repro.core.gdh as gdh_module
        from repro.algebra.optimizer import Optimizer

        real = Optimizer
        monkeypatch.setattr(
            gdh_module,
            "Optimizer",
            lambda stats, options: real(stats, options, rules=rules),
        )
        db = _small_db()
        result = db.execute(self.SQL)
        return result

    def test_fused_ships_strictly_less(self, monkeypatch):
        fused = self._run(monkeypatch, KNOWLEDGE_BASE)
        unfused = self._run(monkeypatch, _without_topn_rules())
        assert fused.rows == unfused.rows
        assert len(fused.rows) == 10
        assert "TopN" in fused.report.plan_text
        assert "TopN" not in unfused.report.plan_text
        # Each site ships only its best 10 rows instead of a full
        # 100-row partition: strictly fewer bytes on the wire.
        assert fused.report.bytes_shipped < unfused.report.bytes_shipped

    def test_offset_and_ties_match_unfused_plan(self, monkeypatch):
        sql = "SELECT ten, unique1 FROM wisc ORDER BY ten LIMIT 7 OFFSET 5"
        import repro.core.gdh as gdh_module
        from repro.algebra.optimizer import Optimizer

        real = Optimizer
        monkeypatch.setattr(
            gdh_module,
            "Optimizer",
            lambda stats, options: real(stats, options, rules=KNOWLEDGE_BASE),
        )
        db = _small_db()
        fused = db.execute(sql)
        monkeypatch.setattr(
            gdh_module,
            "Optimizer",
            lambda stats, options, _r=_without_topn_rules(): real(
                stats, options, rules=_r
            ),
        )
        db2 = _small_db()
        unfused = db2.execute(sql)
        # `ten` has 40 ties per value: global stability across sites
        # must reproduce the unfused stable sort exactly.
        assert fused.rows == unfused.rows
