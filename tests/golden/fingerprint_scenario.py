"""Shared end-to-end scenario for the golden fingerprint pin.

One deterministic mixed workload touching every subsystem the PL101/
PL102 fixes under issue 6 grazed: aggregation kernels, transitive
closure (both interfaces), multi-table transactions (statistics
refresh), and the observability facade.  Both the golden test and the
ad-hoc pre/post pinning runs import :func:`run_scenario` so they
measure exactly the same thing.
"""

from __future__ import annotations

from repro.core.database import PrismaDB
from repro.machine.config import MachineConfig


def run_scenario() -> dict[str, str]:
    """Run the workload; return per-source fingerprints + the facade's."""
    db = PrismaDB(MachineConfig(n_nodes=8, disk_nodes=(0, 4)))
    db.execute(
        "CREATE TABLE orders (oid INT PRIMARY KEY, cust INT, amount FLOAT)"
        " FRAGMENTED BY HASH(oid) INTO 4"
    )
    db.execute(
        "CREATE TABLE customer (id INT PRIMARY KEY, name STRING, city STRING)"
        " FRAGMENTED BY HASH(id) INTO 4"
    )
    db.execute(
        "CREATE TABLE edge (src INT, dst INT) FRAGMENTED BY HASH(src) INTO 4"
    )
    cities = ["ams", "rtm", "utr", "ein", "ley"]
    db.bulk_load(
        "customer", [(i, f"cust{i}", cities[i % 5]) for i in range(40)]
    )
    db.bulk_load("orders", [(o, o % 11, float(o) * 1.5) for o in range(120)])
    db.bulk_load(
        "edge",
        [(s, (s + 1) % 30) for s in range(30)]
        + [(s, (s * 7) % 30) for s in range(30)],
    )
    db.execute("ANALYZE")
    db.execute("SELECT cust, COUNT(*), SUM(amount) FROM orders GROUP BY cust")
    db.execute(
        "SELECT c.city, SUM(o.amount) FROM orders o, customer c"
        " WHERE o.cust = c.id GROUP BY c.city"
    )
    db.execute("SELECT * FROM orders WHERE amount > 100 ORDER BY oid")
    db.execute("SELECT src, dst FROM CLOSURE(edge)")
    db.execute_prismalog(
        """
        reach(X, Y) :- edge(X, Y).
        reach(X, Z) :- edge(X, Y), reach(Y, Z).
        ? reach(X, Y).
        """
    )
    db.execute("UPDATE orders SET amount = amount + 1 WHERE cust = 3")
    db.execute("DELETE FROM orders WHERE oid >= 110")
    db.execute("ANALYZE")
    observatory = db.observe()
    result = {
        name: observatory.source(name).fingerprint()
        for name in observatory.sources()
    }
    result["__facade__"] = observatory.fingerprint()
    return result


if __name__ == "__main__":
    for name, digest in sorted(run_scenario().items()):
        print(f"{name}: {digest}")
