"""Tests for the SQL lexer and parser."""

import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import TokenType, tokenize
from repro.sql.parser import parse_script, parse_statement


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SeLeCt FROM where")
        assert [t.type for t in tokens[:-1]] == [TokenType.KEYWORD] * 3
        assert [t.value for t in tokens[:-1]] == ["select", "from", "where"]

    def test_identifiers_folded_lower(self):
        tokens = tokenize("Employees")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "employees"

    def test_quoted_identifier_preserves_case(self):
        tokens = tokenize('"MiXeD"')
        assert tokens[0].value == "MiXeD"

    def test_numbers(self):
        values = [t.value for t in tokenize("1 2.5 1e3 1.5e-2 .75")[:-1]]
        assert values == [1, 2.5, 1000.0, 0.015, 0.75]

    def test_dot_disambiguation(self):
        tokens = tokenize("t.col")
        assert [t.value for t in tokens[:-1]] == ["t", ".", "col"]

    def test_string_escaping(self):
        tokens = tokenize("'o''brien'")
        assert tokens[0].value == "o'brien"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_comment_skipped(self):
        tokens = tokenize("select -- everything\n1")
        assert [t.value for t in tokens[:-1]] == ["select", 1]

    def test_operators(self):
        values = [t.value for t in tokenize("<> != <= >= < > = ( ) , ;")[:-1]]
        assert values == ["<>", "<>", "<=", ">=", "<", ">", "=", "(", ")", ",", ";"]

    def test_position_tracking(self):
        with pytest.raises(ParseError) as info:
            tokenize("select\n  @")
        assert "line 2" in str(info.value)


class TestSelectParsing:
    def test_simple_select(self):
        stmt = parse_statement("SELECT a, b FROM t WHERE a > 1")
        assert isinstance(stmt, ast.SelectStmt)
        assert len(stmt.items) == 2
        assert stmt.from_items[0].name == "t"
        assert isinstance(stmt.where, ast.Bin)

    def test_star_and_qualified_star(self):
        stmt = parse_statement("SELECT *, t.* FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.items[1].expr.qualifier == "t"

    def test_aliases(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t emp")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_items[0].alias == "emp"

    def test_joins(self):
        stmt = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"
            " CROSS JOIN d"
        )
        assert [j.kind for j in stmt.joins] == ["inner", "left", "cross"]
        assert stmt.joins[2].condition is None

    def test_closure_in_from(self):
        stmt = parse_statement("SELECT * FROM CLOSURE(edges) AS tc WHERE src = 1")
        assert isinstance(stmt.from_items[0], ast.ClosureRef)
        assert stmt.from_items[0].alias == "tc"

    def test_group_by_having(self):
        stmt = parse_statement(
            "SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        agg = stmt.items[1].expr
        assert isinstance(agg, ast.AggCall)
        assert agg.func == "count" and agg.arg is None

    def test_distinct_aggregate(self):
        stmt = parse_statement("SELECT COUNT(DISTINCT dept) FROM emp")
        assert stmt.items[0].expr.distinct

    def test_order_limit_offset(self):
        stmt = parse_statement("SELECT a FROM t ORDER BY a DESC, b LIMIT 5 OFFSET 2")
        assert stmt.order_by[0][1] is True
        assert stmt.order_by[1][1] is False
        assert stmt.limit == 5
        assert stmt.offset == 2

    def test_set_operations_chain(self):
        stmt = parse_statement("SELECT a FROM t UNION SELECT a FROM u UNION ALL SELECT a FROM v")
        assert isinstance(stmt, ast.SetOpStmt)
        assert stmt.op == "union_all"
        assert isinstance(stmt.left, ast.SetOpStmt)
        assert stmt.left.op == "union"

    def test_expression_precedence(self):
        stmt = parse_statement("SELECT a FROM t WHERE a + 2 * b > 1 AND c = 1 OR d = 2")
        # OR at top
        assert stmt.where.op == "or"
        left = stmt.where.left
        assert left.op == "and"
        comparison = left.left
        assert comparison.op == ">"
        addition = comparison.left
        assert addition.op == "+"
        assert addition.right.op == "*"

    def test_between_in_like_not(self):
        stmt = parse_statement(
            "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b NOT IN (1, 2)"
            " AND c LIKE 'x%' AND d IS NOT NULL"
        )
        text_types = set()

        def walk(e):
            text_types.add(type(e).__name__)
            for child in (getattr(e, "left", None), getattr(e, "right", None),
                          getattr(e, "operand", None)):
                if child is not None:
                    walk(child)

        walk(stmt.where)
        assert {"BetweenExpr", "InExpr", "LikeExpr", "IsNullExpr"} <= text_types

    def test_no_from(self):
        stmt = parse_statement("SELECT 1 + 1")
        assert stmt.from_items == []


class TestOtherStatements:
    def test_create_table_full(self):
        stmt = parse_statement(
            "CREATE TABLE emp (id INT PRIMARY KEY, name VARCHAR(32) NOT NULL,"
            " sal FLOAT) FRAGMENTED BY HASH(id) INTO 8 WITH 2 REPLICAS"
        )
        assert isinstance(stmt, ast.CreateTableStmt)
        assert stmt.columns[0].primary_key and stmt.columns[0].not_null
        assert stmt.columns[1].not_null and not stmt.columns[1].primary_key
        assert stmt.fragmentation.kind == "hash"
        assert stmt.fragmentation.count == 8
        assert stmt.replicas == 2

    def test_create_table_range(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INT) FRAGMENTED BY RANGE(a) VALUES (10, 20, 30)"
        )
        assert stmt.fragmentation.kind == "range"
        assert stmt.fragmentation.boundaries == (10, 20, 30)
        assert stmt.fragmentation.count == 4

    def test_create_table_roundrobin(self):
        stmt = parse_statement("CREATE TABLE t (a INT) FRAGMENTED BY ROUNDROBIN INTO 4")
        assert stmt.fragmentation.kind == "roundrobin"

    def test_create_index(self):
        stmt = parse_statement("CREATE UNIQUE INDEX i ON t (a, b) USING BTREE")
        assert stmt.unique and stmt.method == "btree"
        assert stmt.columns == ["a", "b"]

    def test_insert_multi_row_with_columns(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)")
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = a + 1, b = 'x' WHERE a < 5")
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.DeleteStmt)

    def test_transaction_control(self):
        assert isinstance(parse_statement("BEGIN WORK"), ast.BeginStmt)
        assert isinstance(parse_statement("COMMIT"), ast.CommitStmt)
        assert isinstance(parse_statement("ROLLBACK"), ast.RollbackStmt)
        assert isinstance(parse_statement("ABORT"), ast.RollbackStmt)

    def test_explain_show_checkpoint(self):
        assert isinstance(parse_statement("EXPLAIN SELECT 1"), ast.ExplainStmt)
        assert isinstance(parse_statement("SHOW TABLES"), ast.ShowTablesStmt)
        assert isinstance(parse_statement("CHECKPOINT"), ast.CheckpointStmt)

    def test_script_parsing(self):
        statements = parse_script(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;"
        )
        assert len(statements) == 3

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT 1 FROM t garbage extra ,")

    def test_helpful_error_positions(self):
        with pytest.raises(ParseError) as info:
            parse_statement("SELECT FROM t")
        message = str(info.value)
        assert "expression" in message
        assert "column 8" in message

    def test_unknown_function_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT sqrt(x) FROM t")

    def test_count_star_only_for_count(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT SUM(*) FROM t")
