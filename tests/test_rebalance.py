"""Online re-fragmentation (ISSUE 10): scheme editing, the three-phase
migrate/split/merge protocol, replica-aware read routing, the fault
facade, and the shared benchmark CLI builder."""

from __future__ import annotations

import pathlib
import sys

import pytest

from repro import MachineConfig, PrismaDB
from repro.core.faults import FaultInjector
from repro.core.fragmentation import (
    FragmentationScheme,
    HashFragmentation,
    registered_kinds,
)
from repro.core.rebalance import RebalancedFragmentation, Rebalancer
from repro.errors import RebalanceError
from repro.machine.machine import Machine
from repro.serve import install_serving

BENCHMARKS = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"


def make_db(n_nodes=12, replicas=0, rows=60, topology="mesh"):
    db = PrismaDB(
        MachineConfig(n_nodes=n_nodes, disk_nodes=(0, n_nodes // 2),
                      topology=topology)
    )
    ddl = (
        "CREATE TABLE t (id INT PRIMARY KEY, v INT)"
        " FRAGMENTED BY HASH(id) INTO 3"
    )
    if replicas:
        ddl += f" WITH {replicas} REPLICAS"
    db.execute(ddl)
    db.bulk_load("t", [(i, i * 7) for i in range(rows)])
    db.quiesce()
    return db


def row_multiset(db, table="t"):
    """Every row on every primary copy, with duplicates preserved."""
    rows = []
    for fragment in db.catalog.table(table).fragments:
        ofm = db.gdh.fragment_ofms[fragment.ofm_name]
        rows.extend(tuple(row) for _rid, row in ofm.table.scan())
    return sorted(rows)


# ---------------------------------------------------------------------------
# RebalancedFragmentation: the editable bucket map scheme.
# ---------------------------------------------------------------------------


class TestRebalancedScheme:
    def test_registered_and_spec_roundtrip(self):
        assert "rebalanced" in registered_kinds()
        scheme = RebalancedFragmentation(0, (0, 1, 2, 0, 1, 2))
        rebuilt = FragmentationScheme.from_spec(scheme.to_spec())
        assert isinstance(rebuilt, RebalancedFragmentation)
        assert rebuilt.bucket_map == scheme.bucket_map
        assert rebuilt.n_fragments == 3

    def test_from_hash_is_row_assignment_identical(self):
        hashed = HashFragmentation(0, 5)
        derived = RebalancedFragmentation.from_hash(hashed)
        for key in range(500):
            assert derived.fragment_of((key, 0)) == hashed.fragment_of((key, 0))

    def test_pruning_matches_routing(self):
        scheme = RebalancedFragmentation.from_hash(HashFragmentation(0, 4))
        for key in range(100):
            assert scheme.prunable_fragments(0, key) == [
                scheme.fragment_of((key, 0))
            ]

    def test_split_moves_half_the_buckets(self):
        scheme = RebalancedFragmentation.from_hash(HashFragmentation(0, 3))
        after = scheme.split(1, 3)
        old = scheme.fragment_buckets(1)
        assert sorted(after.fragment_buckets(1) + after.fragment_buckets(3)) == old
        assert after.fragment_buckets(3) == old[1::2]
        # Untouched fragments route identically.
        assert after.fragment_buckets(0) == scheme.fragment_buckets(0)

    def test_merge_rehomes_every_bucket(self):
        scheme = RebalancedFragmentation.from_hash(HashFragmentation(0, 3))
        after = scheme.merge(2, 0)
        assert after.fragment_buckets(2) == []
        assert after.n_fragments == 2

    def test_editing_errors(self):
        with pytest.raises(RebalanceError):
            RebalancedFragmentation(0, ())
        single = RebalancedFragmentation(0, (0, 1))
        with pytest.raises(RebalanceError):
            single.split(0, 2)  # one bucket cannot split
        with pytest.raises(RebalanceError):
            single.merge(0, 0)
        with pytest.raises(RebalanceError):
            single.merge(5, 0)  # owns no buckets


# ---------------------------------------------------------------------------
# The three-phase protocol: migrate / split / merge.
# ---------------------------------------------------------------------------


class TestMigrate:
    def test_migrate_preserves_rows_and_flips_catalog(self):
        db = make_db()
        before = row_multiset(db)
        fragment = db.catalog.table("t").fragments[0]
        old_node, old_name = fragment.node_id, fragment.ofm_name
        action = db.rebalancer.migrate_fragment("t", 0)
        assert action is not None and action[0] == "migrate"
        assert fragment.node_id != old_node
        assert old_name not in db.gdh.fragment_ofms
        assert fragment.ofm_name in db.gdh.fragment_ofms
        assert row_multiset(db) == before
        assert sorted(db.query("SELECT id FROM t WHERE id < 5")) == [
            (i,) for i in range(5)
        ]

    def test_migrate_bumps_ddl_epoch(self):
        db = make_db()
        epoch = db.gdh.ddl_epoch
        db.rebalancer.migrate_fragment("t", 0)
        assert db.gdh.ddl_epoch == epoch + 1

    def test_migrate_invalidates_plan_cache(self):
        db = make_db()
        install_serving(db)
        cursor = db.connect().cursor()
        cursor.execute("SELECT v FROM t WHERE id = ?", (1,))
        cursor.execute("SELECT v FROM t WHERE id = ?", (2,))
        assert len(db.gdh.plan_cache) > 0
        db.rebalancer.migrate_fragment("t", 0)
        assert len(db.gdh.plan_cache) == 0
        # A cached plan pruned to the old placement must not resurface.
        cursor.execute("SELECT v FROM t WHERE id = ?", (1,))
        assert cursor.fetchall() == [(7,)]

    def test_migrate_rejects_occupied_target(self):
        db = make_db(replicas=2)
        fragment = db.catalog.table("t").fragments[0]
        replica_node = fragment.replicas[0][0]
        with pytest.raises(RebalanceError):
            db.rebalancer.migrate_fragment("t", 0, target_node=replica_node)

    def test_migrate_survives_crash_and_restart(self):
        db = make_db()
        before = row_multiset(db)
        db.rebalancer.migrate_fragment("t", 0)
        db.crash()
        db.restart()
        assert row_multiset(db) == before

    def test_failover_mid_outage_migrates_off_dead_element(self):
        """Crash the primary's element, then migrate the lost copy away,
        fed by the surviving replica: zero rows lost or duplicated."""
        db = make_db(replicas=2)
        expected = sorted(db.query("SELECT id, v FROM t"))
        fragment = db.catalog.table("t").fragments[0]
        victim = fragment.node_id
        db.crash_element(victim)
        action = db.rebalancer.migrate_fragment("t", 0)
        assert action is not None
        assert fragment.node_id != victim
        new_primary = db.gdh.fragment_ofms[fragment.ofm_name]
        assert new_primary.alive and new_primary.node_id == fragment.node_id
        assert sorted(db.query("SELECT id, v FROM t")) == expected


class TestSplit:
    def test_split_adds_fragment_and_preserves_rows(self):
        db = make_db()
        before = row_multiset(db)
        action = db.rebalancer.split_fragment("t", 0)
        assert action[0] == "split"
        info = db.catalog.table("t")
        assert len(info.fragments) == 4
        assert row_multiset(db) == before
        # Every row now lives where the edited scheme routes it.
        for fragment in info.fragments:
            ofm = db.gdh.fragment_ofms[fragment.ofm_name]
            for _rid, row in ofm.table.scan():
                assert info.scheme.fragment_of(row) == fragment.fragment_id

    def test_split_keeps_point_query_pruning(self):
        db = make_db()
        db.rebalancer.split_fragment("t", 1)
        for key in (0, 7, 23, 59):
            assert db.query(f"SELECT v FROM t WHERE id = {key}") == [(key * 7,)]

    def test_split_replicated_fragment_places_replicas(self):
        db = make_db(replicas=2)
        db.rebalancer.split_fragment("t", 0)
        new_fragment = db.catalog.table("t").fragments[-1]
        nodes = [node for node, _name in new_fragment.all_copies()]
        assert len(new_fragment.all_copies()) == 2
        assert len(set(nodes)) == 2


class TestMerge:
    def test_merge_folds_rows_and_retires_fragment(self):
        db = make_db()
        before = row_multiset(db)
        action = db.rebalancer.merge_fragments("t", 1, 2)
        assert action[0] == "merge" and action[4] > 0
        info = db.catalog.table("t")
        assert sorted(f.fragment_id for f in info.fragments) == [0, 2]
        assert row_multiset(db) == before

    def test_merge_leaves_gapped_ids_queryable(self):
        db = make_db()
        db.rebalancer.merge_fragments("t", 1, 0)
        for key in (0, 13, 37, 59):
            assert db.query(f"SELECT v FROM t WHERE id = {key}") == [(key * 7,)]
        db.execute("INSERT INTO t VALUES (1000, -1)")
        assert db.query("SELECT v FROM t WHERE id = 1000") == [(-1,)]

    def test_merge_keeps_replica_copies_identical(self):
        db = make_db(replicas=2)
        db.rebalancer.merge_fragments("t", 2, 1)
        dest = db.catalog.table("t").fragment(1)
        scans = [
            sorted(db.gdh.fragment_ofms[name].table.scan())
            for _node, name in dest.all_copies()
        ]
        assert scans[0] == scans[1]


class TestControlLoop:
    def test_step_splits_the_hot_fragment(self):
        db = make_db(rows=120)
        info = db.catalog.table("t")
        hot = info.fragments[0].fragment_id
        tracker = db.gdh.executor.access
        for fragment in info.fragments:
            weight = 200 if fragment.fragment_id == hot else 10
            tracker.record("t", fragment.fragment_id, weight)
        actions = db.rebalancer.step("t")
        assert actions and actions[0][0] == "split" and actions[0][2] == hot

    def test_step_ignores_quiet_windows(self):
        db = make_db()
        db.gdh.executor.access.record("t", 0, 3)
        assert db.rebalancer.step("t") == []

    def test_report_fingerprint_is_deterministic(self):
        def run():
            db = make_db()
            rebalancer = Rebalancer(db.gdh)
            rebalancer.split_fragment("t", 0)
            rebalancer.migrate_fragment("t", 1)
            return rebalancer.report.fingerprint()

        assert run() == run()


# ---------------------------------------------------------------------------
# Replica-aware read routing.
# ---------------------------------------------------------------------------


def nearest_oracle(db, info, origin=0):
    """Brute-force reference for the executor's nearest-copy choice."""
    machine = db.machine
    chosen = []
    for fragment in info.fragments:
        live = [
            db.gdh.fragment_ofms[name]
            for _node, name in fragment.all_copies()
            if name in db.gdh.fragment_ofms
            and db.gdh.fragment_ofms[name].alive
            and machine.reachable(origin, db.gdh.fragment_ofms[name].node_id)
        ]
        chosen.append(
            min(
                live,
                key=lambda c: (
                    machine.current_hops(origin, c.node_id),
                    c.ready_at,
                    c.name,
                ),
            )
        )
    return chosen


class TestNearestRouting:
    @pytest.mark.parametrize("topology", ["mesh", "chordal_ring", "ring"])
    def test_nearest_matches_brute_force_oracle(self, topology):
        db = make_db(n_nodes=16, replicas=3, topology=topology)
        db.gdh.executor.read_routing = "nearest"
        info = db.catalog.table("t")
        picked = list(db.gdh.executor._scan_copies(info, None))
        assert picked == nearest_oracle(db, info)

    def test_nearest_skips_dead_copies(self):
        db = make_db(n_nodes=16, replicas=2)
        db.gdh.executor.read_routing = "nearest"
        expected = sorted(db.query("SELECT id, v FROM t"))
        victim = db.catalog.table("t").fragments[0].node_id
        db.crash_element(victim)
        assert sorted(db.query("SELECT id, v FROM t")) == expected
        info = db.catalog.table("t")
        picked = list(db.gdh.executor._scan_copies(info, None))
        assert picked == nearest_oracle(db, info)
        assert all(ofm.node_id != victim for ofm in picked)

    def test_default_policy_is_unchanged(self):
        db = make_db(n_nodes=16, replicas=2)
        assert db.gdh.executor.read_routing == "ready"
        info = db.catalog.table("t")
        picked = list(db.gdh.executor._scan_copies(info, None))
        for fragment, choice in zip(info.fragments, picked):
            live = [
                db.gdh.fragment_ofms[name]
                for _node, name in fragment.all_copies()
            ]
            assert choice is min(live, key=lambda c: (c.ready_at, c.name))


# ---------------------------------------------------------------------------
# The fault facade: Machine.faults / FaultInjector.scope.
# ---------------------------------------------------------------------------


class TestFaultFacade:
    def test_scope_restores_on_exception(self):
        machine = Machine(MachineConfig(n_nodes=8, topology="ring"))
        with pytest.raises(RuntimeError):
            with machine.faults(nodes=[3], links=[(0, 1)]):
                assert not machine.node_is_up(3)
                assert machine.fault_board.active() == {
                    "nodes": [3],
                    "links": [(0, 1)],
                }
                raise RuntimeError("boom")
        assert machine.node_is_up(3)
        assert machine.fault_board.active() == {"nodes": [], "links": []}

    def test_scope_leaves_preexisting_faults_alone(self):
        machine = Machine(MachineConfig(n_nodes=8, topology="ring"))
        machine.fail_node(2)
        with machine.faults(nodes=[2, 5]):
            assert not machine.node_is_up(5)
        assert not machine.node_is_up(2)  # was down on entry, stays down
        assert machine.node_is_up(5)

    def test_injector_scope_crashes_processes_and_logs(self):
        db = make_db(replicas=2)
        faults = FaultInjector(seed=3)
        faults.bind(db.gdh.runtime)
        victim = db.catalog.table("t").fragments[0].node_id
        expected = sorted(db.query("SELECT id, v FROM t"))
        with faults.scope(nodes=[victim]):
            assert not db.machine.node_is_up(victim)
        assert db.machine.node_is_up(victim)
        entries = [
            entry for entry in faults.injections if entry[0] == "crash_element"
        ]
        assert entries, "scope did not land in the injection log"
        # Replicas keep the data readable after the scoped outage.
        assert sorted(db.query("SELECT id, v FROM t")) == expected


# ---------------------------------------------------------------------------
# The shared benchmark CLI builder.
# ---------------------------------------------------------------------------


class TestBuildParser:
    def _harness(self):
        if str(BENCHMARKS) not in sys.path:
            sys.path.insert(0, str(BENCHMARKS))
        import _harness

        return _harness

    def test_requested_flags_only(self):
        build_parser = self._harness().build_parser
        parser = build_parser("x", seed=7, out=pathlib.Path("/tmp/x"))
        args = parser.parse_args([])
        assert args.seed == 7 and args.out == pathlib.Path("/tmp/x")
        assert not hasattr(args, "quick") and not hasattr(args, "n_nodes")

    def test_all_flags(self):
        build_parser = self._harness().build_parser
        parser = build_parser(
            "x", seed=1, out=pathlib.Path("o"), quick_help="q",
            n_nodes=(64, 256),
        )
        args = parser.parse_args(
            ["--seed", "9", "--quick", "--n-nodes", "64"]
        )
        assert args.seed == 9 and args.quick and args.n_nodes == [64]
        assert parser.parse_args([]).n_nodes == [64, 256]
