"""Tests for the serving layer (ISSUE 8): DBAPI surface, plan cache,
admission control, and the session-lifecycle bugfixes that ride along
(post-crash commit/rollback, quiesce over all sessions, execute_script
routed through the one statement entry point)."""

import pytest

from repro import MachineConfig, PrismaDB
from repro.errors import (
    InterfaceError,
    ParseError,
    TransactionAborted,
    TransactionError,
)
from repro.core.workload import (
    ConcurrentSessionDriver,
    ServingWorkloadSpec,
    ZipfSampler,
)
from repro.serve import (
    AdmissionQueue,
    PlanCache,
    bind_parameters,
    install_serving,
    statement_key,
    template_tokens,
)


def small_db():
    return PrismaDB(MachineConfig(n_nodes=8, disk_nodes=(0, 4)))


def loaded_db(n_rows: int = 64):
    db = small_db()
    db.execute(
        "CREATE TABLE kv (id INT PRIMARY KEY, v INT)"
        " FRAGMENTED BY HASH(id) INTO 4"
    )
    db.bulk_load("kv", [(i, i * 10) for i in range(n_rows)])
    return db


# ---------------------------------------------------------------------------
# Parameter binding.
# ---------------------------------------------------------------------------


class TestParams:
    def test_every_scalar_type_binds(self):
        db = loaded_db()
        conn = db.connect()
        conn.execute("INSERT INTO kv VALUES (?, ?)", (900, None))
        assert conn.execute(
            "SELECT id FROM kv WHERE v IS NULL"
        ).fetchall() == [(900,)]
        assert conn.execute(
            "SELECT COUNT(*) FROM kv WHERE v = ?", (100,)
        ).fetchone() == (1,)
        assert conn.execute(
            "SELECT COUNT(*) FROM kv WHERE v > ?", (0.5,)
        ).fetchone() == (63,)

    def test_string_param_is_injection_proof(self):
        db = small_db()
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
        conn = db.connect()
        hostile = "x'; DROP TABLE t; --"
        conn.execute("INSERT INTO t VALUES (?, ?)", (1, hostile))
        assert conn.execute(
            "SELECT name FROM t WHERE id = ?", (1,)
        ).fetchone() == (hostile,)

    def test_param_count_mismatch_raises(self):
        tokens = template_tokens("SELECT v FROM kv WHERE id = ?")
        with pytest.raises(ParseError, match="placeholder"):
            bind_parameters(tokens, ())
        with pytest.raises(ParseError, match="placeholder"):
            bind_parameters(tokens, (1, 2))
        with pytest.raises(ParseError, match="cannot bind"):
            bind_parameters(tokens, ([1],))

    def test_statement_key_ignores_whitespace_not_literals(self):
        one = statement_key(template_tokens("SELECT v FROM kv WHERE id = 1"))
        spaced = statement_key(
            template_tokens("SELECT   v  FROM kv\n WHERE id = 1")
        )
        other = statement_key(template_tokens("SELECT v FROM kv WHERE id = 2"))
        assert one == spaced
        assert one != other


# ---------------------------------------------------------------------------
# DBAPI surface.
# ---------------------------------------------------------------------------


class TestCursor:
    def test_fetch_interface(self):
        db = loaded_db(8)
        cursor = db.connect().cursor()
        cursor.execute("SELECT id, v FROM kv ORDER BY id")
        assert [column[0] for column in cursor.description] == ["id", "v"]
        assert cursor.rowcount == 8
        assert cursor.fetchone() == (0, 0)
        assert cursor.fetchmany(3) == [(1, 10), (2, 20), (3, 30)]
        rest = cursor.fetchall()
        assert len(rest) == 4
        assert cursor.fetchone() is None
        assert cursor.fetchall() == []

    def test_iteration_and_arraysize(self):
        db = loaded_db(5)
        cursor = db.connect().cursor()
        cursor.execute("SELECT id FROM kv ORDER BY id")
        assert list(cursor) == [(0,), (1,), (2,), (3,), (4,)]
        cursor.execute("SELECT id FROM kv ORDER BY id")
        assert cursor.fetchmany() == [(0,)]  # arraysize defaults to 1

    def test_dml_rowcount_and_executemany(self):
        db = loaded_db()
        cursor = db.connect().cursor()
        cursor.execute("INSERT INTO kv VALUES (?, ?)", (200, 1))
        assert cursor.rowcount == 1
        assert cursor.description is None
        cursor.executemany(
            "INSERT INTO kv VALUES (?, ?)", [(201, 1), (202, 2), (203, 3)]
        )
        assert cursor.rowcount == 3
        assert db.query("SELECT COUNT(*) FROM kv WHERE id >= 200") == [(4,)]

    def test_closed_surfaces_raise(self):
        db = loaded_db()
        conn = db.connect()
        cursor = conn.cursor()
        cursor.close()
        with pytest.raises(InterfaceError):
            cursor.execute("SELECT 1 FROM kv")
        conn.close()
        with pytest.raises(InterfaceError):
            conn.cursor()
        conn.close()  # idempotent

    def test_multi_statement_text_rejected(self):
        db = loaded_db()
        with pytest.raises(ParseError):
            db.connect().execute("SELECT v FROM kv; SELECT id FROM kv")


class TestConnection:
    def test_autocommit_default(self):
        db = loaded_db()
        conn = db.connect()
        conn.execute("INSERT INTO kv VALUES (?, ?)", (300, 0))
        assert not conn.in_transaction
        assert db.query("SELECT COUNT(*) FROM kv WHERE id = 300") == [(1,)]

    def test_manual_mode_rolls_back(self):
        db = loaded_db()
        conn = db.connect(autocommit=False)
        conn.execute("INSERT INTO kv VALUES (?, ?)", (400, 0))
        assert conn.in_transaction
        conn.rollback()
        assert db.query("SELECT COUNT(*) FROM kv WHERE id = 400") == [(0,)]
        conn.execute("INSERT INTO kv VALUES (?, ?)", (401, 0))
        conn.commit()
        assert db.query("SELECT COUNT(*) FROM kv WHERE id = 401") == [(1,)]

    def test_close_aborts_open_transaction(self):
        db = loaded_db()
        conn = db.connect(autocommit=False)
        conn.execute("INSERT INTO kv VALUES (?, ?)", (500, 0))
        session_id = conn.session.session_id
        conn.close()
        assert session_id not in db.gdh.sessions
        assert db.query("SELECT COUNT(*) FROM kv WHERE id = 500") == [(0,)]

    def test_prepared_statement_reuse(self):
        db = loaded_db()
        conn = db.connect()
        prepared = conn.prepare("SELECT v FROM kv WHERE id = ?")
        assert prepared.execute((3,)).fetchone() == (30,)
        assert prepared.execute((4,)).fetchone() == (40,)
        assert prepared.execute((3,)).fetchone() == (30,)
        # The third execute repeats a key: an exact-match cache hit.
        assert db.gdh.plan_cache.hits >= 1


# ---------------------------------------------------------------------------
# Plan cache.
# ---------------------------------------------------------------------------


class TestPlanCache:
    def test_repeat_statement_hits(self):
        db = loaded_db()
        conn = db.connect()
        for _ in range(5):
            conn.execute("SELECT v FROM kv WHERE id = ?", (7,))
        stats = db.gdh.plan_cache.stats()
        assert stats["lookups"] == 5
        assert stats["hits"] == 4
        assert stats["hit_rate"] == pytest.approx(0.8)

    def test_hit_charges_less_than_miss(self):
        db = loaded_db()
        conn = db.connect()
        session = conn.session
        before = session.clock
        conn.execute("SELECT v FROM kv WHERE id = ?", (7,))
        miss_cost = session.clock - before
        before = session.clock
        conn.execute("SELECT v FROM kv WHERE id = ?", (7,))
        hit_cost = session.clock - before
        assert hit_cost < miss_cost

    def test_ddl_invalidates(self):
        db = loaded_db()
        conn = db.connect()
        conn.execute("SELECT v FROM kv WHERE id = ?", (1,))
        assert len(db.gdh.plan_cache) > 0
        conn.execute("DROP TABLE kv")
        assert len(db.gdh.plan_cache) == 0
        assert db.gdh.plan_cache.invalidations >= 1
        # Same statement text against a *new* table must re-prepare
        # against the new catalog, not replay the dropped table's plan.
        conn.execute("CREATE TABLE kv (id INT PRIMARY KEY, v INT)")
        conn.execute("INSERT INTO kv VALUES (?, ?)", (1, 111))
        assert conn.execute(
            "SELECT v FROM kv WHERE id = ?", (1,)
        ).fetchone() == (111,)

    def test_create_index_invalidates(self):
        db = loaded_db()
        conn = db.connect()
        conn.execute("SELECT v FROM kv WHERE id = ?", (1,))
        epoch = db.gdh.ddl_epoch
        conn.execute("CREATE INDEX kv_v ON kv (v)")
        assert db.gdh.ddl_epoch == epoch + 1
        assert len(db.gdh.plan_cache) == 0

    def test_capacity_bound_evicts_fifo(self):
        cache = PlanCache(capacity=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.put(("c",), 3)
        assert cache.evictions == 1
        assert cache.get(("a",)) is None
        assert cache.get(("b",)) == 2
        assert cache.get(("c",)) == 3

    def test_snapshot_protocol(self):
        cache = PlanCache()
        cache.put(("a",), 1)
        cache.get(("a",))
        fingerprint = cache.fingerprint()
        assert cache.stats()["hits"] == 1
        cache.reset()
        assert cache.stats()["lookups"] == 0
        assert cache.fingerprint() != fingerprint


# ---------------------------------------------------------------------------
# Admission control.
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_saturation_queues_fifo(self):
        class FakeSession:
            def __init__(self, clock):
                self.clock = clock

        queue = AdmissionQueue(slots=2)
        first = FakeSession(0.0)
        slot_a = queue.admit(first)
        queue.release(slot_a, 10.0)
        second = FakeSession(0.0)
        slot_b = queue.admit(second)
        queue.release(slot_b, 12.0)
        # Both slots busy until 10.0/12.0: the third arrival waits for
        # the earliest release.
        third = FakeSession(1.0)
        queue.admit(third)
        assert third.clock == 10.0
        assert queue.delayed == 1
        assert queue.total_wait_s == pytest.approx(9.0)

    def test_statements_funnel_through_admission(self):
        db = loaded_db()
        install_serving(db, admission_slots=4)
        conn = db.connect()
        conn.execute("SELECT v FROM kv WHERE id = ?", (1,))
        db.execute("SELECT COUNT(*) FROM kv")
        db.execute_script("INSERT INTO kv VALUES (700, 0); DELETE FROM kv WHERE id = 700")
        assert db.gdh.admission.admitted == 4

    def test_observatory_sources_registered(self):
        db = loaded_db()
        install_serving(db, admission_slots=4)
        observatory = db.observe()
        assert "plan_cache" in observatory.sources()
        assert "admission" in observatory.sources()
        assert observatory.source("admission").stats()["slots"] == 4
        install_serving(db, admission_slots=4)  # idempotent

    def test_two_same_seed_runs_fingerprint_identical(self):
        def run(seed):
            db = loaded_db(n_rows=32)
            install_serving(db, admission_slots=4)
            db.quiesce()
            spec = ServingWorkloadSpec(
                n_sessions=12, ops_per_session=4, seed=seed, n_keys=32
            )
            outcome = ConcurrentSessionDriver(db, spec).run()
            return outcome.fingerprint(), db.gdh.admission.fingerprint()

        assert run(5) == run(5)
        assert run(5) != run(6)


# ---------------------------------------------------------------------------
# Session-lifecycle bugfixes.
# ---------------------------------------------------------------------------


class TestCrashLifecycle:
    def test_post_crash_commit_raises_transaction_aborted(self):
        db = loaded_db()
        session = db.session()
        session.begin()
        session.execute("INSERT INTO kv VALUES (600, 0)")
        db.crash()
        with pytest.raises(TransactionAborted):
            session.commit()
        # The stale pointer is gone: a second commit is "no transaction".
        with pytest.raises(TransactionError, match="no transaction"):
            session.commit()

    def test_post_crash_rollback_raises_transaction_aborted(self):
        db = loaded_db()
        session = db.session()
        session.begin()
        session.execute("INSERT INTO kv VALUES (601, 0)")
        db.crash()
        with pytest.raises(TransactionAborted):
            session.rollback()

    def test_post_crash_statement_raises_then_session_recovers(self):
        db = loaded_db()
        db.checkpoint()
        first = db.session()
        second = db.session()
        first.begin()
        first.execute("UPDATE kv SET v = v + 1 WHERE id = 1")
        second.begin()
        second.execute("UPDATE kv SET v = v + 1 WHERE id = 2")
        db.crash()
        db.restart()
        with pytest.raises(TransactionAborted):
            first.execute("SELECT COUNT(*) FROM kv")
        with pytest.raises(TransactionAborted):
            second.commit()
        # Both sessions are clean again: the uncommitted updates are
        # gone and new work proceeds.
        assert first.query("SELECT v FROM kv WHERE id = 1") == [(10,)]
        second.begin()
        second.execute("UPDATE kv SET v = v + 5 WHERE id = 2")
        second.commit()
        assert second.query("SELECT v FROM kv WHERE id = 2") == [(25,)]

    def test_crash_aborts_connection_transaction(self):
        db = loaded_db()
        conn = db.connect(autocommit=False)
        conn.execute("INSERT INTO kv VALUES (?, ?)", (602, 0))
        db.crash()
        db.restart()
        with pytest.raises(TransactionAborted):
            conn.commit()
        assert not conn.in_transaction


class TestQuiesce:
    def test_quiesce_advances_every_open_session(self):
        db = loaded_db()
        lagging = db.session()
        db.execute("SELECT COUNT(*) FROM kv")  # default session advances
        horizon = db.quiesce()
        assert lagging.clock == horizon
        assert db.session().clock >= horizon  # new sessions start current

    def test_closed_sessions_are_forgotten(self):
        db = loaded_db()
        session = db.session()
        session_id = session.session_id
        assert session_id in db.gdh.sessions
        session.close()
        assert session_id not in db.gdh.sessions


class TestExecuteScriptRouting:
    def test_script_statements_are_accounted(self):
        db = loaded_db()
        state = db._default_session._state
        before = state.statements
        db.execute_script(
            "INSERT INTO kv VALUES (800, 0);"
            " UPDATE kv SET v = 1 WHERE id = 800;"
            " SELECT v FROM kv WHERE id = 800"
        )
        assert state.statements == before + 3


# ---------------------------------------------------------------------------
# Workload pieces.
# ---------------------------------------------------------------------------


class TestServingWorkload:
    def test_zipf_sampler_is_skewed_and_deterministic(self):
        import random

        sampler = ZipfSampler(100, 1.3)
        rng = random.Random(1)
        draws = [sampler.sample(rng) for _ in range(2000)]
        assert draws == [
            sampler.sample(random.Random(1)) for _ in range(1)
        ] + draws[1:]  # same seed, same first draw
        assert all(0 <= draw < 100 for draw in draws)
        hot = sum(1 for draw in draws if draw < 10)
        assert hot > len(draws) * 0.5  # top-10 ranks dominate

    def test_driver_report_percentiles(self):
        from repro.core.workload import ServingReport

        outcome = ServingReport()
        for latency in (0.1, 0.2, 0.3, 0.4):
            outcome.record("read", latency)
        assert outcome.percentile("read", 50.0) == 0.2
        assert outcome.percentile("read", 99.0) == 0.4
        assert outcome.percentile("missing", 50.0) == 0.0

    def test_driver_runs_all_operations(self):
        db = loaded_db(n_rows=32)
        install_serving(db)
        db.quiesce()
        spec = ServingWorkloadSpec(
            n_sessions=6, ops_per_session=3, seed=11, n_keys=32
        )
        outcome = ConcurrentSessionDriver(db, spec).run()
        assert outcome.operations == 18
        assert outcome.statements == 18
        assert outcome.finished_at > outcome.started_at
        assert outcome.throughput_ops > 0
        # All driver connections were closed again.
        assert len(db.gdh.sessions) == 1  # just the facade's default
