"""Golden end-to-end fingerprints for the issue-6 behavior-preserving fixes.

``tests/golden/fingerprint_scenario.py`` drives one deterministic mixed
workload across aggregation, transitive closure, transactions, and the
observability facade — exactly the subsystems the PL101/PL102 lint
fixes touched.  The digests below were pinned *before* those fixes and
re-verified after (and under ``PYTHONHASHSEED=1`` and ``42``): the
sorted()/dict.fromkeys() determinism repairs must be pure refactorings.

PR 7 (columnar batch engine) re-pinned exactly three digests, all of
them cache-counter surfaces, and re-verified under ``PYTHONHASHSEED=1``
and ``42``:

* ``expressions`` — the compiler cache now also counts batch-kernel
  compilations/hits (predicates, projectors, join and agg kernels).
* ``shuffle`` — the splitter cache gained ``batch_invocations`` /
  ``row_invocations`` counters distinguishing the execution path.
* ``__facade__`` — the combined digest, which folds in both of the
  above.

``faults``/``metrics``/``nodes``/``runtime`` — every surface derived
from the *simulated clock* (busy totals, message counts, shipped
bytes, per-node work) — are byte-identical to the pre-batch pins,
which is the proof that the batch kernels are behavior-preserving.

If a deliberate behavior change moves these, re-pin with::

    PYTHONPATH=src python tests/golden/fingerprint_scenario.py
"""

from tests.golden.fingerprint_scenario import run_scenario

PINNED = {
    "__facade__": "f0ae2f45ca127ee2c9051c834a89522c7d2d108efae5360327879a3e153d7601",
    "expressions": "d688df5def39a77a7403d730e6eecc3394c75618721cc10cfeccac08a4477bb8",
    "faults": "ecffdbbb3f1d7e1f2cbb798288f3eebf849eba4a4c4aa3c6dd57edeeda6e2e07",
    "metrics": "bfa0c7c777d7d3a53770a7646d0a3f711bdfbb64d42d582299161f5176d654ae",
    "nodes": "8cc40392bc49e4c188590f7abb004f94de814f5fc8742659db3cde091203758a",
    "runtime": "e6910616bc7839ad1102e61dadf4037d3405b168f3644b96a68ca5ae6ec252c8",
    "shuffle": "84eebeaf98364ac1388438fe50a1bbc4de1ab83719b223f825dce4e30d4ae6a7",
}


def test_scenario_fingerprints_match_pins():
    got = run_scenario()
    assert got == PINNED


def test_scenario_is_run_to_run_deterministic():
    assert run_scenario() == run_scenario()
