"""Golden end-to-end fingerprints for the issue-6 behavior-preserving fixes.

``tests/golden/fingerprint_scenario.py`` drives one deterministic mixed
workload across aggregation, transitive closure, transactions, and the
observability facade — exactly the subsystems the PL101/PL102 lint
fixes touched.  The digests below were pinned *before* those fixes and
re-verified after (and under ``PYTHONHASHSEED=1`` and ``42``): the
sorted()/dict.fromkeys() determinism repairs must be pure refactorings.

If a deliberate behavior change moves these, re-pin with::

    PYTHONPATH=src python tests/golden/fingerprint_scenario.py
"""

from tests.golden.fingerprint_scenario import run_scenario

PINNED = {
    "__facade__": "31b7329840a015e7455c2eb5ede72d2788b55fb78d1127299ba1d17e9f6dfc37",
    "expressions": "465000eb957a2b55903f3e6b117a90f0a7d8708cfee2dd990e75ebd99d061816",
    "faults": "ecffdbbb3f1d7e1f2cbb798288f3eebf849eba4a4c4aa3c6dd57edeeda6e2e07",
    "metrics": "bfa0c7c777d7d3a53770a7646d0a3f711bdfbb64d42d582299161f5176d654ae",
    "nodes": "8cc40392bc49e4c188590f7abb004f94de814f5fc8742659db3cde091203758a",
    "runtime": "e6910616bc7839ad1102e61dadf4037d3405b168f3644b96a68ca5ae6ec252c8",
    "shuffle": "774e6cb78e97524b91337e3f4e98ad312ba358efd12c8ffada4e5ba8dd8c5625",
}


def test_scenario_fingerprints_match_pins():
    got = run_scenario()
    assert got == PINNED


def test_scenario_is_run_to_run_deterministic():
    assert run_scenario() == run_scenario()
