"""Tests for cardinality/size estimation (optimizer knowledge, E10)."""

import pytest

from repro.exec.expressions import Comparison, InList, IsNull, Like, Not, and_, col, eq, lit, or_
from repro.exec.operators import JoinKind
from repro.algebra.estimates import Estimator, RelProfile, TableStats
from repro.algebra.plan import (
    AggExpr,
    AggregateNode,
    ClosureNode,
    DistinctNode,
    JoinNode,
    LimitNode,
    ProjectNode,
    ScanNode,
    SelectNode,
    SetOpNode,
    ValuesNode,
)
from repro.storage import DataType, Schema

EMP = Schema.of(id=DataType.INT, dept=DataType.STRING, sal=DataType.FLOAT)
STATS = {
    "emp": TableStats(10_000, 24, {"id": 10_000, "dept": 20, "sal": 1_000}),
    "dept": TableStats(20, 30, {"dname": 20, "city": 8}),
}


@pytest.fixture
def estimator():
    return Estimator(STATS)


def emp():
    return ScanNode("emp", EMP)


def dept():
    return ScanNode("dept", Schema.of(dname=DataType.STRING, city=DataType.STRING))


class TestScanAndValues:
    def test_scan_uses_catalog_stats(self, estimator):
        profile = estimator.profile(emp())
        assert profile.rows == 10_000
        assert profile.row_bytes == 24
        assert profile.ndv[1] == 20

    def test_unknown_table_gets_default(self, estimator):
        unknown = ScanNode("mystery", EMP)
        assert estimator.rows(unknown) == 1000

    def test_values_exact(self, estimator):
        values = ValuesNode(Schema.of(a=DataType.INT), [(1,), (1,), (2,)])
        profile = estimator.profile(values)
        assert profile.rows == 3
        assert profile.ndv[0] == 2


class TestSelectivity:
    def test_equality_uses_ndv(self, estimator):
        plan = SelectNode(emp(), eq(col(1), lit("eng")))
        assert estimator.rows(plan) == pytest.approx(10_000 / 20)

    def test_range_selectivity(self, estimator):
        plan = SelectNode(emp(), Comparison(">", col(2), lit(50.0)))
        assert estimator.rows(plan) == pytest.approx(10_000 / 3)

    def test_conjunction_multiplies(self, estimator):
        plan = SelectNode(
            emp(), and_(eq(col(1), lit("eng")), Comparison(">", col(2), lit(0.0)))
        )
        assert estimator.rows(plan) == pytest.approx(10_000 / 20 / 3)

    def test_disjunction_inclusion_exclusion(self, estimator):
        plan = SelectNode(
            emp(), or_(eq(col(1), lit("eng")), eq(col(1), lit("hr")))
        )
        expected = 10_000 * (1 - (1 - 0.05) ** 2)
        assert estimator.rows(plan) == pytest.approx(expected)

    def test_negation(self, estimator):
        plan = SelectNode(emp(), Not(eq(col(1), lit("eng"))))
        assert estimator.rows(plan) == pytest.approx(10_000 * 0.95)

    def test_in_list(self, estimator):
        plan = SelectNode(emp(), InList(col(1), ("a", "b", "c")))
        assert estimator.rows(plan) == pytest.approx(10_000 * 3 / 20)

    def test_like_and_isnull(self, estimator):
        like_rows = estimator.rows(SelectNode(emp(), Like(col(1), "e%")))
        assert like_rows == pytest.approx(2500)
        null_rows = estimator.rows(SelectNode(emp(), IsNull(col(2))))
        assert null_rows == pytest.approx(1000)

    def test_never_exceeds_child(self, estimator):
        plan = SelectNode(emp(), or_(*[eq(col(1), lit(str(i))) for i in range(50)]))
        assert estimator.rows(plan) <= 10_000


class TestJoins:
    def test_equi_join_formula(self, estimator):
        join = JoinNode(emp(), dept(), eq(col(1), col(3)))
        # |emp| * |dept| / max(ndv) = 10000 * 20 / 20
        assert estimator.rows(join) == pytest.approx(10_000)

    def test_cross_join(self, estimator):
        join = JoinNode(emp(), dept(), None)
        assert estimator.rows(join) == pytest.approx(200_000)

    def test_left_outer_at_least_left(self, estimator):
        join = JoinNode(
            emp(), dept(), eq(col(0), col(3)), JoinKind.LEFT_OUTER
        )
        assert estimator.rows(join) >= 10_000

    def test_semi_join_bounded_by_left(self, estimator):
        join = JoinNode(emp(), dept(), eq(col(1), col(3)), JoinKind.SEMI)
        assert estimator.rows(join) <= 10_000


class TestOtherOperators:
    def test_aggregate_group_count(self, estimator):
        plan = AggregateNode(emp(), [1], [AggExpr("count", None)])
        assert estimator.rows(plan) == pytest.approx(20)

    def test_global_aggregate_single_row(self, estimator):
        plan = AggregateNode(emp(), [], [AggExpr("count", None)])
        assert estimator.rows(plan) == 1

    def test_distinct_capped_by_rows(self, estimator):
        plan = DistinctNode(emp())
        assert estimator.rows(plan) <= 10_000

    def test_limit_caps(self, estimator):
        plan = LimitNode(emp(), 7)
        assert estimator.rows(plan) == 7

    def test_setops(self, estimator):
        left = ProjectNode(emp(), [col(1)], ["d"])
        right = ProjectNode(emp(), [col(1)], ["d"])
        assert estimator.rows(SetOpNode("union_all", left, right)) == pytest.approx(20_000)
        assert estimator.rows(SetOpNode("intersect", left, right)) <= 10_000
        assert estimator.rows(SetOpNode("except", left, right)) <= 10_000

    def test_closure_expansion_capped(self, estimator):
        edges = ScanNode("dept", Schema.of(a=DataType.STRING, b=DataType.STRING))
        plan = ClosureNode(edges)
        rows = estimator.rows(plan)
        assert rows >= estimator.rows(edges)

    def test_projection_keeps_rows_updates_ndv(self, estimator):
        plan = ProjectNode(emp(), [col(1), lit(1)], ["dept", "one"])
        profile = estimator.profile(plan)
        assert profile.rows == 10_000
        assert profile.ndv[0] == 20
        assert profile.ndv[1] == 1

    def test_shared_profile_lookup(self):
        shared = {"cse0": RelProfile(77, 10, [77.0])}
        estimator = Estimator({}, shared)
        from repro.algebra.plan import SharedScanNode

        node = SharedScanNode("cse0", Schema.of(a=DataType.INT))
        assert estimator.rows(node) == 77
