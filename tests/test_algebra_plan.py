"""Tests for logical plan nodes."""

import pytest

from repro.errors import PlanError
from repro.exec.expressions import Arithmetic, col, eq, lit
from repro.exec.operators import JoinKind
from repro.algebra.plan import (
    AggExpr,
    AggregateNode,
    ClosureNode,
    DeltaScanNode,
    DistinctNode,
    FixpointNode,
    JoinNode,
    LimitNode,
    ProjectNode,
    ScanNode,
    SelectNode,
    SetOpNode,
    SortNode,
    ValuesNode,
)
from repro.storage import DataType, Schema


@pytest.fixture
def emp():
    return ScanNode("emp", Schema.of(id=DataType.INT, dept=DataType.STRING, sal=DataType.FLOAT))


@pytest.fixture
def dept():
    return ScanNode("dept", Schema.of(dname=DataType.STRING, city=DataType.STRING))


class TestSchemas:
    def test_select_preserves_schema(self, emp):
        node = SelectNode(emp, eq(col(0), lit(1)))
        assert node.schema == emp.schema

    def test_select_validates_column_range(self, emp):
        from repro.errors import ExpressionError

        with pytest.raises(ExpressionError):
            SelectNode(emp, eq(col(9), lit(1)))

    def test_project_derives_types(self, emp):
        node = ProjectNode(emp, [col(0), Arithmetic("/", col(2), lit(2))], ["id", "half"])
        assert node.schema.names() == ["id", "half"]
        assert node.schema.types() == [DataType.INT, DataType.FLOAT]

    def test_project_uniquifies_duplicate_names(self, emp):
        node = ProjectNode(emp, [col(0), col(0)], ["x", "x"])
        assert node.schema.names() == ["x", "x_2"]

    def test_project_identity_detection(self, emp):
        identity = ProjectNode(
            emp, [col(i, n) for i, n in enumerate(emp.schema.names())], emp.schema.names()
        )
        assert identity.is_identity()
        assert not ProjectNode(emp, [col(0, "id")], ["id"]).is_identity()

    def test_join_concatenates_and_disambiguates(self, emp, dept):
        node = JoinNode(emp, emp)
        assert node.schema.names() == ["id", "dept", "sal", "id_r", "dept_r", "sal_r"]

    def test_semi_join_keeps_left_schema(self, emp, dept):
        node = JoinNode(emp, dept, eq(col(1), col(3)), JoinKind.SEMI)
        assert node.schema == emp.schema

    def test_aggregate_schema(self, emp):
        node = AggregateNode(
            emp, [1], [AggExpr("count", None), AggExpr("avg", col(2))],
            ["dept", "n", "avg_sal"],
        )
        assert node.schema.names() == ["dept", "n", "avg_sal"]
        assert node.schema.types() == [DataType.STRING, DataType.INT, DataType.FLOAT]

    def test_setop_arity_checked(self, emp, dept):
        with pytest.raises(PlanError):
            SetOpNode("union", emp, dept)

    def test_closure_needs_binary_relation(self, emp, dept):
        ClosureNode(dept)  # binary: fine
        with pytest.raises(PlanError):
            ClosureNode(emp)

    def test_closure_mode_validated(self, dept):
        with pytest.raises(PlanError):
            ClosureNode(dept, mode="psychic")

    def test_sort_and_limit_validation(self, emp):
        with pytest.raises(PlanError):
            SortNode(emp, [])
        with pytest.raises(PlanError):
            SortNode(emp, [(9, False)])
        with pytest.raises(PlanError):
            LimitNode(emp, -1)

    def test_values_rows_validated(self):
        schema = Schema.of(a=DataType.INT)
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            ValuesNode(schema, [("not-int",)])

    def test_fixpoint_checks_token_and_arity(self, dept):
        delta = DeltaScanNode("tc", dept.schema)
        step = ProjectNode(delta, [col(0), col(1)], ["a", "b"])
        FixpointNode(dept, step, "tc")  # ok
        with pytest.raises(PlanError):
            FixpointNode(dept, step, "othertoken")
        narrow = ProjectNode(delta, [col(0)], ["a"])
        with pytest.raises(PlanError):
            FixpointNode(dept, narrow, "tc")


class TestIdentityAndRewriting:
    def test_structural_equality(self, emp):
        a = SelectNode(emp, eq(col(0), lit(1)))
        b = SelectNode(
            ScanNode("emp", emp.schema), eq(col(0), lit(1))
        )
        assert a == b
        assert hash(a) == hash(b)

    def test_different_predicates_differ(self, emp):
        assert SelectNode(emp, eq(col(0), lit(1))) != SelectNode(emp, eq(col(0), lit(2)))

    def test_with_children_reuses_unchanged(self, emp):
        node = SelectNode(emp, eq(col(0), lit(1)))
        assert node.with_children([emp]) is node

    def test_with_children_rebuilds(self, emp):
        node = SelectNode(emp, eq(col(0), lit(1)))
        other = ScanNode("emp2", emp.schema)
        rebuilt = node.with_children([other])
        assert rebuilt is not node
        assert rebuilt.child is other

    def test_with_children_arity_checked(self, emp):
        node = SelectNode(emp, eq(col(0), lit(1)))
        with pytest.raises(PlanError):
            node.with_children([])

    def test_walk_preorder(self, emp, dept):
        join = JoinNode(emp, dept)
        top = DistinctNode(join)
        kinds = [type(n).__name__ for n in top.walk()]
        assert kinds == ["DistinctNode", "JoinNode", "ScanNode", "ScanNode"]

    def test_explain_is_indented_tree(self, emp):
        node = SelectNode(emp, eq(col(0, "id"), lit(1)))
        text = node.explain()
        assert "Select[(id = 1)]" in text.splitlines()[0]
        assert text.splitlines()[1].startswith("  Scan(emp)")


class TestEquiKeys:
    def test_simple_equi_join(self, emp, dept):
        join = JoinNode(emp, dept, eq(col(1), col(3)))
        left, right, residual = join.equi_keys()
        assert left == [1]
        assert right == [0]
        assert residual is None

    def test_reversed_sides_normalize(self, emp, dept):
        join = JoinNode(emp, dept, eq(col(3), col(1)))
        left, right, _ = join.equi_keys()
        assert left == [1]
        assert right == [0]

    def test_residual_kept(self, emp, dept):
        from repro.exec.expressions import Comparison, and_

        condition = and_(eq(col(1), col(3)), Comparison("<", col(2), lit(100.0)))
        join = JoinNode(emp, dept, condition)
        left, right, residual = join.equi_keys()
        assert left == [1]
        assert residual is not None

    def test_non_equi_only(self, emp, dept):
        from repro.exec.expressions import Comparison

        join = JoinNode(emp, dept, Comparison("<", col(0), col(3)))
        left, right, residual = join.equi_keys()
        assert left == []
        assert residual is not None

    def test_same_side_equality_is_residual(self, emp, dept):
        join = JoinNode(emp, dept, eq(col(0), col(2)))  # both left side
        left, right, residual = join.equi_keys()
        assert left == []
        assert residual is not None

    def test_cross_join(self, emp, dept):
        join = JoinNode(emp, dept, None)
        assert join.equi_keys() == ([], [], None)
