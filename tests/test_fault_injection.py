"""Fault injection: crash points, element/link failures, recovery.

The crash matrix is the heart of this suite: every named crash point of
the commit/abort protocol, on the 1PC path, the multi-participant 2PC
path, and the abort path, asserting the crash-consistency contract —

* no transaction the protocol made durable is ever lost,
* no transaction that must abort leaves rows visible after recovery,
* the number of in-doubt participants at the instant of the crash is
  exactly what the protocol state implies,

and that two same-seed runs produce bit-identical fault/recovery
fingerprints (the determinism contract the CI gate enforces).
"""

import pytest

from repro import MachineConfig, PrismaDB
from repro.errors import (
    InjectedCrash,
    LinkDownError,
    PrismaError,
    ProcessCrashed,
    RecoveryError,
)
from repro.core.faults import (
    ABORT_POINTS,
    ONE_PC_POINTS,
    TWO_PC_POINTS,
    CrashPoint,
    FaultInjector,
)

CONFIG = MachineConfig(n_nodes=4, disk_nodes=(0, 2), topology="ring")

#: Crash points after which the transaction MUST survive recovery
#: (something durable — the participant's or the coordinator's forced
#: record — already says "commit").
DURABLE_POINTS = {
    CrashPoint.ONE_PC_AFTER_PARTICIPANT_COMMIT,
    CrashPoint.ONE_PC_AFTER_LOG_FORCE,
    CrashPoint.TWO_PC_AFTER_LOG_FORCE,
    CrashPoint.TWO_PC_MID_PHASE_TWO,
}


def make_db(seed: int = 0) -> PrismaDB:
    db = PrismaDB(CONFIG, faults=FaultInjector(seed))
    db.execute(
        "CREATE TABLE t (k INT PRIMARY KEY, v INT)"
        " FRAGMENTED BY HASH(k) INTO 3"
    )
    return db


def keys_per_fragment(db: PrismaDB, count: int, start: int = 1000) -> list[int]:
    """Keys hitting *count* distinct fragments (one key each)."""
    scheme = db.catalog.table("t").scheme
    chosen: dict[int, int] = {}
    for key in range(start, start + 5000):
        fragment = scheme.fragment_of((key, 0))
        if fragment not in chosen:
            chosen[fragment] = key
        if len(chosen) == count:
            return [chosen[f] for f in sorted(chosen)]
    raise AssertionError(f"could not find keys for {count} fragments")


def key_in_fragment(db: PrismaDB, fragment_id: int, start: int = 3000) -> int:
    """A fresh key that hashes to *fragment_id*."""
    scheme = db.catalog.table("t").scheme
    for key in range(start, start + 5000):
        if scheme.fragment_of((key, 0)) == fragment_id:
            return key
    raise AssertionError(f"no key found for fragment {fragment_id}")


def table_contents(db: PrismaDB) -> set[tuple]:
    return set(db.query("SELECT k, v FROM t"))


def in_doubt_count(db: PrismaDB) -> int:
    return sum(
        len(ofm.in_doubt_transactions())
        for ofm in db.gdh.fragment_ofms.values()
        if ofm.alive
    )


def run_crash_scenario(mode: str, point: CrashPoint, seed: int = 0):
    """Drive one (protocol path, crash point) cell of the matrix.

    Returns everything a caller wants to assert on or fingerprint:
    (db, survivors expected?, in-doubt count at crash, fingerprints).
    """
    db = make_db(seed)
    session = db.session()
    # A committed baseline row per fragment: recovery must never lose these.
    baseline_keys = keys_per_fragment(db, 3)
    for key in baseline_keys:
        db.execute(f"INSERT INTO t VALUES ({key}, 1)")
    baseline = table_contents(db)

    n_participants = 1 if mode == "1pc" else 3
    victim_keys = keys_per_fragment(db, n_participants, start=3000)
    session.execute("BEGIN")
    for key in victim_keys:
        session.execute(f"INSERT INTO t VALUES ({key}, 2)")
    db.faults.arm(point)
    with pytest.raises(InjectedCrash) as crash_info:
        session.execute("COMMIT")
    assert crash_info.value.point == point.value
    in_doubt = in_doubt_count(db)

    # The whole machine now goes down and recovers from stable storage.
    crash_report = db.crash()
    recovery_report = db.restart()
    return (
        db,
        baseline,
        set(victim_keys),
        in_doubt,
        crash_report.fingerprint(),
        recovery_report.fingerprint(),
        db.faults.fingerprint(),
    )


MATRIX = (
    [("1pc", point) for point in ONE_PC_POINTS]
    + [("npc", point) for point in TWO_PC_POINTS]
    + [("abort", point) for point in ABORT_POINTS]
    + [("abort-1pc", point) for point in ABORT_POINTS]
)


def expected_in_doubt(mode: str, point: CrashPoint) -> int:
    """Participants left prepared-undecided at the instant of the crash."""
    n = 3 if mode == "npc" else 1
    return {
        CrashPoint.TWO_PC_MID_PREPARE: 1,
        CrashPoint.TWO_PC_AFTER_PREPARE: n,
        CrashPoint.TWO_PC_AFTER_LOG_FORCE: n,
        CrashPoint.TWO_PC_MID_PHASE_TWO: n - 1,
    }.get(point, 0)


class TestCrashMatrix:
    @pytest.mark.parametrize(
        "mode,point", MATRIX, ids=[f"{m}-{p.value}" for m, p in MATRIX]
    )
    def test_crash_consistency(self, mode, point):
        db, baseline, victims, in_doubt, *_ = run_crash_scenario_for(
            mode, point
        )
        after = table_contents(db)
        # 1. No committed row is ever lost.
        assert baseline <= after, "committed baseline rows lost in recovery"
        surviving_victims = {row[0] for row in after} & victims
        if mode.startswith("abort") or point not in DURABLE_POINTS:
            # 2. Nothing of an aborted/undecided-then-aborted txn shows.
            assert not surviving_victims, (
                f"rows of a rolled-back transaction visible after {point.value}"
            )
            assert after == baseline
        else:
            # 3. A durably-decided commit is fully there.
            assert surviving_victims == victims, (
                f"committed rows lost after crash at {point.value}"
            )
        # 4. In-doubt participants at crash time match the protocol state.
        assert in_doubt == expected_in_doubt(
            "npc" if mode == "npc" else "1pc", point
        )

    def test_matrix_is_deterministic(self):
        """Same seed, same driver => bit-identical fingerprints."""
        def sweep():
            prints = []
            for mode, point in MATRIX:
                *_, in_doubt, crash_fp, recovery_fp, faults_fp = (
                    run_crash_scenario_for(mode, point, seed=7)
                )
                prints.append((in_doubt, crash_fp, recovery_fp, faults_fp))
            return prints

        assert sweep() == sweep()


def run_crash_scenario_for(mode: str, point: CrashPoint, seed: int = 0):
    """Matrix cell dispatch: abort cells run with 1 or 3 participants."""
    if mode == "abort":
        return run_abort_scenario(point, participants=3, seed=seed)
    if mode == "abort-1pc":
        return run_abort_scenario(point, participants=1, seed=seed)
    return run_crash_scenario(mode, point, seed=seed)


def run_abort_scenario(point: CrashPoint, participants: int, seed: int = 0):
    db = make_db(seed)
    session = db.session()
    baseline_keys = keys_per_fragment(db, 3)
    for key in baseline_keys:
        db.execute(f"INSERT INTO t VALUES ({key}, 1)")
    baseline = table_contents(db)
    victim_keys = keys_per_fragment(db, participants, start=3000)
    session.execute("BEGIN")
    for key in victim_keys:
        session.execute(f"INSERT INTO t VALUES ({key}, 2)")
    db.faults.arm(point)
    with pytest.raises(InjectedCrash):
        session.execute("ROLLBACK")
    in_doubt = in_doubt_count(db)
    crash_report = db.crash()
    recovery_report = db.restart()
    return (
        db,
        baseline,
        set(victim_keys),
        in_doubt,
        crash_report.fingerprint(),
        recovery_report.fingerprint(),
        db.faults.fingerprint(),
    )


class TestOnePhaseAuthority:
    """Pins the 1PC crash-consistency fix (satellite #1).

    The single participant's forced WAL commit record is authoritative:
    a crash after it — before the coordinator's own log force — must
    still recover the transaction as committed, with the commit log
    repaired from the participant.
    """

    def test_participant_record_wins_and_repairs_log(self):
        db = make_db()
        key = keys_per_fragment(db, 1)[0]
        session = db.session()
        session.execute("BEGIN")
        session.execute(f"INSERT INTO t VALUES ({key}, 42)")
        db.faults.arm(CrashPoint.ONE_PC_AFTER_PARTICIPANT_COMMIT)
        with pytest.raises(InjectedCrash):
            session.execute("COMMIT")
        # The coordinator never logged the decision...
        assert db.gdh.commit_log.outcomes() == {}
        db.crash()
        report = db.restart()
        # ...yet the transaction is committed, and the log was repaired.
        assert (key, 42) in table_contents(db)
        assert report.log_repairs == 1
        assert db.gdh.commit_log.outcomes() != {}

    def test_commit_record_not_flipped_by_later_abort_record(self):
        """ROLLBACK of an unknown txn never appends an undoing record."""
        db = make_db()
        key = keys_per_fragment(db, 1)[0]
        db.execute(f"INSERT INTO t VALUES ({key}, 1)")
        # Aborting a transaction with no state at this OFM is a no-op at
        # the WAL level; a durably committed txn stays committed.
        ofm = next(iter(db.gdh.fragment_ofms.values()))
        ofm.abort(999999)  # unknown txn: must not write an AbortRecord
        db.crash()
        db.restart()
        assert (key, 1) in table_contents(db)


class TestResolveInDoubt:
    """Surviving-system resolution after a coordinator halt (no crash)."""

    @pytest.mark.parametrize(
        "point,expect_commit",
        [
            (CrashPoint.TWO_PC_AFTER_PREPARE, False),  # presumed abort
            (CrashPoint.TWO_PC_AFTER_LOG_FORCE, True),  # log decides
            (CrashPoint.TWO_PC_MID_PHASE_TWO, True),
            (CrashPoint.ONE_PC_AFTER_PARTICIPANT_COMMIT, True),  # WAL decides
            (CrashPoint.ONE_PC_BEFORE_PARTICIPANT_COMMIT, False),
        ],
        ids=lambda p: p.value if isinstance(p, CrashPoint) else str(p),
    )
    def test_resolution(self, point, expect_commit):
        db = make_db()
        one_pc = point in ONE_PC_POINTS
        keys = keys_per_fragment(db, 1 if one_pc else 3)
        session = db.session()
        session.execute("BEGIN")
        for key in keys:
            session.execute(f"INSERT INTO t VALUES ({key}, 5)")
        db.faults.arm(point)
        with pytest.raises(InjectedCrash):
            session.execute("COMMIT")
        # The machine is fine; only the coordinator died mid-protocol.
        result = db.resolve_in_doubt()
        assert result.resolved == 1
        assert result.committed == (1 if expect_commit else 0)
        rows = table_contents(db)
        if expect_commit:
            assert {(key, 5) for key in keys} <= rows
        else:
            assert not ({(key, 5) for key in keys} & rows)
        # Locks were released: the same keys are writable again.
        db.execute(f"INSERT INTO t VALUES ({keys[0] + 5000}, 9)")
        assert in_doubt_count(db) == 0

    def test_resolution_repairs_log_from_participant(self):
        db = make_db()
        key = keys_per_fragment(db, 1)[0]
        session = db.session()
        session.execute("BEGIN")
        session.execute(f"INSERT INTO t VALUES ({key}, 5)")
        db.faults.arm(CrashPoint.ONE_PC_AFTER_PARTICIPANT_COMMIT)
        with pytest.raises(InjectedCrash):
            session.execute("COMMIT")
        result = db.resolve_in_doubt()
        assert result.log_repairs == 1
        assert "commit" in db.gdh.commit_log.outcomes().values()
        assert (key, 5) in table_contents(db)


def make_replicated_db(seed: int = 0) -> PrismaDB:
    db = PrismaDB(CONFIG, faults=FaultInjector(seed))
    db.execute(
        "CREATE TABLE t (k INT PRIMARY KEY, v INT)"
        " FRAGMENTED BY HASH(k) INTO 2 WITH 2 REPLICAS"
    )
    return db


def node_of_primary(db: PrismaDB, fragment_id: int = 0) -> int:
    return db.catalog.table("t").fragments[fragment_id].node_id


class TestElementCrash:
    def test_reads_fail_over_to_replica(self):
        db = make_replicated_db()
        for key in range(20):
            db.execute(f"INSERT INTO t VALUES ({key}, {key * 10})")
        before = table_contents(db)
        node = node_of_primary(db)
        report = db.crash_element(node)
        assert report.kind == "element"
        assert report.fragments_lost >= 1
        assert report.processes_killed
        # Every row is still readable through surviving copies.
        assert table_contents(db) == before

    def test_writes_continue_and_replica_catches_up(self):
        db = make_replicated_db()
        for key in range(10):
            db.execute(f"INSERT INTO t VALUES ({key}, 0)")
        node = node_of_primary(db)
        db.crash_element(node)
        # Writes during the outage land on the surviving copies only.
        for key in range(10, 20):
            db.execute(f"INSERT INTO t VALUES ({key}, 1)")
        db.execute("UPDATE t SET v = 7 WHERE k = 3")
        expected = table_contents(db)
        report = db.restart_element(node)
        assert report.fragments_recovered >= 1
        # The returned copies caught up from their live siblings.
        assert report.replica_catchups >= 1
        assert table_contents(db) == expected
        # All copies of every fragment agree row-for-row.
        for info_fragment in db.catalog.table("t").fragments:
            copies = [
                dict(db.gdh.fragment_ofms[name].table.scan())
                for _node, name in info_fragment.all_copies()
            ]
            assert all(copy == copies[0] for copy in copies)

    def test_active_transactions_with_dead_participant_abort(self):
        db = make_replicated_db()
        for key in range(8):
            db.execute(f"INSERT INTO t VALUES ({key}, 0)")
        session = db.session()
        session.execute("BEGIN")
        # Update a key on fragment 0: its primary copy is about to die
        # (writes touch every copy, so the txn has a dead participant).
        key = key_in_fragment(db, 0, start=0)
        session.execute(f"UPDATE t SET v = 99 WHERE k = {key}")
        node = node_of_primary(db)
        report = db.crash_element(node)
        assert report.aborted_transactions
        assert (key, 99) not in table_contents(db)
        # The session's txn is gone; COMMIT now fails cleanly.
        with pytest.raises(PrismaError):
            session.execute("COMMIT")

    def test_write_with_no_live_copy_fails_loudly(self):
        db = make_db()  # no replicas
        keys = keys_per_fragment(db, 3)
        db.execute(f"INSERT INTO t VALUES ({keys[0]}, 1)")
        info = db.catalog.table("t")
        victim_fragment = info.scheme.fragment_of((keys[0], 0))
        node = info.fragments[victim_fragment].node_id
        db.crash_element(node)
        with pytest.raises(PrismaError):
            db.execute(
                f"INSERT INTO t VALUES ({key_in_fragment(db, victim_fragment)}, 2)"
            )
        # Reads of that fragment fail too (no copy anywhere).
        with pytest.raises(PrismaError):
            db.query("SELECT k, v FROM t")

    def test_unreplicated_fragment_recovers_from_wal(self):
        """A lone crashed fragment replays its own WAL on restart."""
        db = make_db()
        keys = keys_per_fragment(db, 3)
        for key in keys:
            db.execute(f"INSERT INTO t VALUES ({key}, 6)")
        before = table_contents(db)
        info = db.catalog.table("t")
        victim_fragment = info.scheme.fragment_of((keys[0], 0))
        node = info.fragments[victim_fragment].node_id
        db.crash_element(node)
        report = db.restart_element(node)
        assert report.fragments_recovered >= 1
        assert report.replica_catchups == 0  # nothing to catch up from
        assert report.commit_log_scan_s > 0  # scan cost is charged
        assert report.duration_s >= report.commit_log_scan_s
        assert table_contents(db) == before

    def test_cannot_crash_supervisor_element(self):
        db = make_db()
        with pytest.raises(RecoveryError):
            db.crash_element(0)

    def test_send_to_dead_process_raises(self):
        db = make_replicated_db()
        db.execute("INSERT INTO t VALUES (1, 1)")
        node = node_of_primary(db)
        victims = [
            ofm
            for ofm in list(db.gdh.fragment_ofms.values())
            if ofm.node_id == node
        ]
        db.crash_element(node)
        assert victims and all(not ofm.alive for ofm in victims)
        with pytest.raises(ProcessCrashed):
            db.runtime.send(db.gdh.gdh_process, victims[0], 64)


class TestLinkFailures:
    def test_traffic_reroutes_around_failed_link(self):
        db = make_replicated_db()
        for key in range(10):
            db.execute(f"INSERT INTO t VALUES ({key}, 2)")
        before = table_contents(db)
        machine = db.machine
        neighbor = machine.topology.neighbors(0)[0]
        db.fail_link(0, neighbor)
        # Ring of 4: the other direction still connects everything.
        assert machine.reachable(0, neighbor)
        assert table_contents(db) == before
        db.restore_link(0, neighbor)

    def test_partition_surfaces_as_error_and_heals(self):
        db = make_db()
        keys = keys_per_fragment(db, 3)
        for key in keys:
            db.execute(f"INSERT INTO t VALUES ({key}, 3)")
        before = table_contents(db)
        machine = db.machine
        # Cut node 2 (a fragment host on the 4-ring) off entirely.
        for neighbor in machine.topology.neighbors(2):
            db.fail_link(2, neighbor)
        assert not machine.reachable(0, 2)
        with pytest.raises((PrismaError, LinkDownError)):
            db.query("SELECT k, v FROM t")
        for neighbor in machine.topology.neighbors(2):
            db.restore_link(2, neighbor)
        assert table_contents(db) == before

    def test_scheduled_fault_fires_on_event_loop(self):
        db = make_replicated_db()
        db.execute("INSERT INTO t VALUES (1, 1)")
        node = node_of_primary(db)
        at = db.simulated_time() + 1.0
        db.faults.schedule(at, "crash_element", node)
        db.runtime.run(until=at + 1.0)
        assert not db.machine.node_is_up(node)
        assert any(entry[0] == "crash_element" for entry in db.faults.injections)


class TestDeterminism:
    def test_same_seed_same_fingerprints(self):
        def run(seed):
            db = make_replicated_db(seed)
            for key in range(12):
                db.execute(f"INSERT INTO t VALUES ({key}, {key})")
            node = node_of_primary(db)
            crash = db.crash_element(node)
            db.execute("INSERT INTO t VALUES (100, 100)")
            recovery = db.restart_element(node)
            return (
                crash.fingerprint(),
                recovery.fingerprint(),
                db.faults.fingerprint(),
                sorted(table_contents(db)),
            )

        assert run(11) == run(11)

    def test_fingerprint_sensitive_to_injections(self):
        db = make_replicated_db()
        clean = db.faults.fingerprint()
        db.crash_element(node_of_primary(db))
        assert db.faults.fingerprint() != clean
