"""Tests for markings and cursors (OFM features, paper Section 2.5)."""

import pytest

from repro.errors import StorageError
from repro.storage import Cursor, DataType, Marking, MarkingSet, Schema, Table


@pytest.fixture
def table():
    t = Table("t", Schema.of(id=DataType.INT, grp=DataType.STRING))
    t.insert_many([(i, "even" if i % 2 == 0 else "odd") for i in range(6)])
    return t


class TestMarkings:
    def test_mark_where(self, table):
        markings = MarkingSet(table)
        evens = markings.mark_where("evens", lambda row: row[1] == "even")
        assert len(evens) == 3
        assert [row for _, row in evens.rows()] == [
            (0, "even"), (2, "even"), (4, "even"),
        ]

    def test_set_algebra(self, table):
        markings = MarkingSet(table)
        evens = markings.mark_where("evens", lambda r: r[1] == "even")
        small = markings.mark_where("small", lambda r: r[0] < 3)
        both = evens.intersect(small, "both")
        assert sorted(both.rids()) == [0, 2]
        either = evens.union(small, "either")
        assert sorted(either.rids()) == [0, 1, 2, 4]
        only_even = evens.difference(small, "only_even")
        assert sorted(only_even.rids()) == [4]
        complement = evens.complement("odds")
        assert sorted(complement.rids()) == [1, 3, 5]

    def test_markings_survive_deletion(self, table):
        markings = MarkingSet(table)
        evens = markings.mark_where("evens", lambda r: r[1] == "even")
        table.delete(2)
        assert sorted(evens.rids()) == [0, 4]
        assert 2 not in evens

    def test_cross_table_algebra_rejected(self, table):
        other = Table("u", table.schema)
        other.insert((1, "x"))
        m1 = Marking("a", table, [0])
        m2 = Marking("b", other, [0])
        with pytest.raises(StorageError):
            m1.union(m2, "c")

    def test_marking_set_management(self, table):
        markings = MarkingSet(table)
        markings.create("m", [0, 1])
        assert markings.names() == ["m"]
        assert len(markings.get("m")) == 2
        with pytest.raises(StorageError):
            markings.create("m")
        markings.drop("m")
        with pytest.raises(StorageError):
            markings.get("m")

    def test_store_external_marking(self, table):
        markings = MarkingSet(table)
        a = markings.create("a", [0])
        b = markings.create("b", [2])
        union = a.union(b, "u")
        markings.store(union)
        assert sorted(markings.get("u").rids()) == [0, 2]


class TestCursor:
    def test_full_scan(self, table):
        cursor = Cursor(table)
        fetched = list(cursor)
        assert len(fetched) == 6
        assert cursor.fetch() is None

    def test_fetch_many(self, table):
        cursor = Cursor(table)
        batch = cursor.fetch_many(4)
        assert [rid for rid, _ in batch] == [0, 1, 2, 3]
        rest = cursor.fetch_many(100)
        assert [rid for rid, _ in rest] == [4, 5]

    def test_predicate_filter(self, table):
        cursor = Cursor(table, predicate=lambda row: row[1] == "odd")
        assert [rid for rid, _ in cursor] == [1, 3, 5]

    def test_marking_restriction(self, table):
        marking = Marking("m", table, [1, 4])
        cursor = Cursor(table, marking=marking)
        assert [rid for rid, _ in cursor] == [1, 4]

    def test_rows_deleted_mid_scan_are_skipped(self, table):
        cursor = Cursor(table)
        cursor.fetch()  # rid 0
        table.delete(3)
        remaining = [rid for rid, _ in cursor]
        assert remaining == [1, 2, 4, 5]

    def test_rows_inserted_behind_cursor_not_revisited(self, table):
        cursor = Cursor(table)
        fetched = [cursor.fetch()[0] for _ in range(6)]
        table.insert((99, "late"))
        assert cursor.fetch() == (6, (99, "late"))
        assert fetched == [0, 1, 2, 3, 4, 5]

    def test_never_yields_same_rid_twice(self, table):
        cursor = Cursor(table)
        seen = set()
        while True:
            item = cursor.fetch()
            if item is None:
                break
            assert item[0] not in seen
            seen.add(item[0])

    def test_rewind(self, table):
        cursor = Cursor(table)
        cursor.fetch_many(3)
        cursor.rewind()
        assert cursor.fetch()[0] == 0

    def test_close(self, table):
        cursor = Cursor(table)
        cursor.close()
        assert cursor.closed
        with pytest.raises(StorageError):
            cursor.fetch()
        with pytest.raises(StorageError):
            cursor.rewind()

    def test_negative_fetch_count_rejected(self, table):
        with pytest.raises(StorageError):
            Cursor(table).fetch_many(-1)

    def test_cursor_marking_table_mismatch(self, table):
        other = Table("u", table.schema)
        with pytest.raises(StorageError):
            Cursor(table, marking=Marking("m", other))
