"""Edge cases across the facade: error paths, script execution,
recovery failure modes, and less-travelled statement shapes."""

import pytest

from repro import MachineConfig, PrismaDB
from repro.errors import (
    BindError,
    CatalogError,
    PrismalogError,
    RecoveryError,
    TransactionError,
)


def make_db(**kwargs):
    return PrismaDB(MachineConfig(n_nodes=8, disk_nodes=(0, 4)), **kwargs)


class TestFacade:
    def test_execute_script(self):
        db = make_db()
        results = db.execute_script(
            """
            CREATE TABLE t (a INT);
            INSERT INTO t VALUES (1), (2);
            SELECT COUNT(*) FROM t;
            """
        )
        assert len(results) == 3
        assert results[2].scalar() == 2

    def test_simulated_time_advances(self):
        db = make_db()
        before = db.simulated_time()
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.simulated_time() > before

    def test_quiesce_is_idempotent(self):
        db = make_db()
        first = db.quiesce()
        assert db.quiesce() == first

    def test_default_fragments_applied_with_pk(self):
        db = make_db(default_fragments=4)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        assert len(db.catalog.table("t").fragments) == 4
        # Without a primary key there is no hash column: single fragment.
        db.execute("CREATE TABLE u (v INT)")
        assert len(db.catalog.table("u").fragments) == 1

    def test_unsupported_statement_kind(self):
        from repro.sql import ast as sql_ast

        db = make_db()

        class Weird(sql_ast.Statement):
            pass

        with pytest.raises(TransactionError):
            db.gdh.execute_statement(Weird(), db._default_session._state)

    def test_explain_rejects_non_queries(self):
        db = make_db()
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(BindError):
            db.execute("EXPLAIN INSERT INTO t VALUES (1)")

    def test_order_by_inside_setop_branch_rejected(self):
        db = make_db()
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(Exception):
            # The parser attaches trailing ORDER BY to the whole set op;
            # forcing one inside a branch is not expressible, but LIMIT
            # inside a branch via nested parse is — check the binder guard.
            from repro.sql import ast as sql_ast
            from repro.sql.binder import Binder

            inner = sql_ast.SelectStmt(
                items=[sql_ast.SelectItem(sql_ast.Name("a"))],
                from_items=[sql_ast.TableRef("t")],
                limit=1,
            )
            outer = sql_ast.SetOpStmt("union", inner, inner)
            Binder(db.catalog.schemas()).bind_query(outer)


class TestDdlEdges:
    def test_drop_table_in_use_rejected(self):
        db = make_db()
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        session = db.session()
        session.begin()
        session.execute("UPDATE t SET a = 2")
        with pytest.raises(TransactionError):
            db.execute("DROP TABLE t")
        session.rollback()
        db.execute("DROP TABLE t")

    def test_index_on_unknown_column(self):
        from repro.errors import StorageError

        db = make_db()
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(StorageError):
            db.execute("CREATE INDEX i ON t (nope)")

    def test_create_index_backfills(self):
        db = make_db()
        db.execute("CREATE TABLE t (a INT) FRAGMENTED BY ROUNDROBIN INTO 2")
        db.bulk_load("t", [(i,) for i in range(10)])
        db.execute("CREATE INDEX i ON t (a)")
        result = db.execute("SELECT COUNT(*) FROM t WHERE a = 3")
        assert result.scalar() == 1
        assert result.report.index_scans > 0


class TestRecoveryEdges:
    def test_restart_without_crash_is_consistent(self):
        db = make_db()
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        report = db.restart()  # recovery from live state: same contents
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 1
        assert report.fragments_recovered == 1

    def test_restart_detects_catalog_mismatch(self):
        db = make_db()
        db.execute("CREATE TABLE t (a INT)")
        db.crash()
        # Sneak an extra volatile table in: the durable dictionary no
        # longer matches and restart must refuse.
        from repro.core.catalog import TableInfo
        from repro.core.fragmentation import SingleFragment
        from repro.storage import DataType, Schema

        db.catalog.create_table(
            TableInfo("ghost", Schema.of(x=DataType.INT), SingleFragment())
        )
        with pytest.raises(RecoveryError):
            db.restart()

    def test_crash_aborts_open_transactions(self):
        db = make_db()
        db.execute("CREATE TABLE t (a INT)")
        session = db.session()
        session.begin()
        session.execute("INSERT INTO t VALUES (1)")
        report = db.crash()
        assert report.aborted_transactions
        db.restart()
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0


class TestPrismalogEdges:
    def test_mismatched_edb_tables_and_schemas(self):
        from repro.prismalog import PrismalogEngine
        from repro.storage import Column, DataType, Schema

        with pytest.raises(PrismalogError):
            PrismalogEngine(edb_tables={"p": []}, edb_schemas={})

    def test_program_over_missing_table(self):
        db = make_db()
        with pytest.raises(PrismalogError):
            db.execute_prismalog("q(X) :- nothing(X). ? q(X).")

    def test_prismalog_respects_read_locks(self):
        from repro.core.locks import WouldBlock

        db = make_db()
        db.execute("CREATE TABLE p (a INT, b INT)")
        db.execute("INSERT INTO p VALUES (1, 2)")
        writer = db.session()
        writer.begin()
        writer.execute("UPDATE p SET b = 3")
        reader = db.session()
        with pytest.raises(WouldBlock):
            reader.execute_prismalog("q(X) :- p(X, Y). ? q(X).")
        writer.commit()
        (answer,) = reader.execute_prismalog("q(X) :- p(X, Y). ? q(X).")
        assert answer.rows == [(1,)]

    def test_empty_program_no_queries(self):
        db = make_db()
        db.execute("CREATE TABLE p (a INT)")
        results = db.execute_prismalog("q(X) :- p(X).")
        assert results == []


class TestStatementFailureSemantics:
    """A statement that fails mid-flight aborts its transaction and
    releases its locks (statement atomicity via transaction abort)."""

    @pytest.fixture
    def db(self):
        db = make_db()
        db.execute(
            "CREATE TABLE t (k INT PRIMARY KEY, v INT)"
            " FRAGMENTED BY HASH(k) INTO 2"
        )
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        return db

    def test_duplicate_key_releases_locks(self, db):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            db.execute("INSERT INTO t VALUES (1, 99)")
        # The failed autocommit transaction must not block the next one.
        db.execute("INSERT INTO t VALUES (3, 30)")
        assert db.table_row_count("t") == 3

    def test_multi_row_insert_is_atomic(self, db):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            db.execute("INSERT INTO t VALUES (7, 70), (1, 99), (8, 80)")
        # Neither the rows before nor after the duplicate survive.
        assert db.table_row_count("t") == 2

    def test_update_expression_error_aborts(self, db):
        from repro.errors import PrismaError

        with pytest.raises(PrismaError):
            db.execute("UPDATE t SET v = v / 0")
        assert sorted(db.query("SELECT v FROM t")) == [(10,), (20,)]
        db.execute("UPDATE t SET v = v + 1")  # locks were released

    def test_explicit_txn_aborted_by_failure(self, db):
        from repro.errors import StorageError

        session = db.session()
        session.begin()
        session.execute("UPDATE t SET v = 0 WHERE k = 2")
        with pytest.raises(StorageError):
            session.execute("INSERT INTO t VALUES (1, 99)")
        assert not session.in_transaction
        # The earlier update in the same transaction was rolled back too.
        assert db.query("SELECT v FROM t WHERE k = 2") == [(20,)]

    def test_select_division_by_zero_releases_locks(self, db):
        from repro.errors import PrismaError

        with pytest.raises(PrismaError):
            db.execute("SELECT 1 FROM t WHERE v / 0 > 1")
        # Reads and writes still work afterwards.
        db.execute("DELETE FROM t WHERE k = 1")
        assert db.table_row_count("t") == 1
