"""Tests for the POOL-X-like process runtime (paper Section 3.1)."""

import pytest

from repro.errors import AllocationError, MachineError
from repro.machine import Machine, MachineConfig, small_machine
from repro.pool import (
    DiskNodes,
    LeastLoaded,
    MostFreeMemory,
    Pinned,
    PoolProcess,
    PoolRuntime,
    RoundRobin,
)


class TestSpawn:
    def test_explicit_allocation(self, runtime4):
        process = runtime4.spawn(PoolProcess, node=2)
        assert process.node_id == 2
        assert process.alive

    def test_spawn_charges_startup_cost(self, runtime4):
        process = runtime4.spawn(PoolProcess, node=1)
        assert process.ready_at == pytest.approx(
            runtime4.machine.config.cpu_start_cost_s
        )

    def test_start_at_delays_clock(self, runtime4):
        process = runtime4.spawn(PoolProcess, node=0, start_at=5.0)
        assert process.ready_at == pytest.approx(
            5.0 + runtime4.machine.config.cpu_start_cost_s
        )

    def test_names_unique_and_lookup(self, runtime4):
        a = runtime4.spawn(PoolProcess, name="ofm-a", node=0)
        assert runtime4.process("ofm-a") is a
        with pytest.raises(MachineError):
            runtime4.spawn(PoolProcess, name="ofm-a", node=1)

    def test_node_and_placement_mutually_exclusive(self, runtime4):
        with pytest.raises(MachineError):
            runtime4.spawn(PoolProcess, node=1, placement=RoundRobin())

    def test_terminate_frees_name(self, runtime4):
        process = runtime4.spawn(PoolProcess, name="temp", node=0)
        runtime4.terminate(process)
        assert not process.alive
        with pytest.raises(MachineError):
            runtime4.process("temp")
        with pytest.raises(MachineError):
            process.charge(1.0)

    def test_bad_node_rejected(self, runtime4):
        with pytest.raises(MachineError):
            runtime4.spawn(PoolProcess, node=99)


class TestPlacement:
    def test_round_robin_cycles(self, machine4):
        policy = RoundRobin()
        picks = [policy.choose(machine4) for _ in range(6)]
        assert picks == [0, 1, 2, 3, 0, 1]

    def test_round_robin_subset(self, machine4):
        policy = RoundRobin(nodes=[1, 3])
        assert [policy.choose(machine4) for _ in range(4)] == [1, 3, 1, 3]

    def test_round_robin_empty_subset_raises(self, machine4):
        with pytest.raises(AllocationError):
            RoundRobin(nodes=[]).choose(machine4)

    def test_least_loaded_prefers_idle_node(self, machine4):
        machine4.node(0).charge(10.0)
        machine4.node(1).charge(5.0)
        assert LeastLoaded().choose(machine4) == 2

    def test_most_free_memory(self, machine4):
        machine4.node(0).memory.allocate(1000, "x")
        chosen = MostFreeMemory().choose(machine4)
        assert chosen != 0

    def test_most_free_memory_spreads(self, machine4):
        picks = MostFreeMemory().choose_many(machine4, 4)
        assert sorted(picks) == [0, 1, 2, 3]

    def test_pinned_validates_range(self, machine4):
        assert Pinned(3).choose(machine4) == 3
        with pytest.raises(AllocationError):
            Pinned(12).choose(machine4)

    def test_disk_nodes_policy(self):
        machine = Machine(MachineConfig(n_nodes=8, disk_nodes=(2, 5)))
        policy = DiskNodes()
        assert [policy.choose(machine) for _ in range(3)] == [2, 5, 2]

    def test_disk_nodes_requires_disks(self, ):
        machine = Machine(MachineConfig(n_nodes=4))
        with pytest.raises(AllocationError):
            DiskNodes().choose(machine)


class TestTimelineMessaging:
    def test_send_advances_receiver_past_transfer(self, runtime4):
        sender = runtime4.spawn(PoolProcess, node=0)
        receiver = runtime4.spawn(PoolProcess, node=1)
        before = receiver.ready_at
        arrival = runtime4.send(sender, receiver, 10_000)
        assert arrival > before
        assert receiver.ready_at == arrival

    def test_send_does_not_rewind_busy_receiver(self, runtime4):
        sender = runtime4.spawn(PoolProcess, node=0)
        receiver = runtime4.spawn(PoolProcess, node=1)
        receiver.charge(100.0)  # receiver busy until t=100+
        runtime4.send(sender, receiver, 100)
        assert receiver.ready_at >= 100.0

    def test_parallel_fanout_critical_path(self, runtime4):
        """Response time of a fan-out/fan-in is the max branch, not the sum."""
        coordinator = runtime4.spawn(PoolProcess, node=0)
        workers = [runtime4.spawn(PoolProcess, node=n) for n in (1, 2, 3)]
        work = [0.5, 2.0, 1.0]
        arrivals = []
        for worker, seconds in zip(workers, work):
            runtime4.send(coordinator, worker, 200)
            worker.charge(seconds)
            arrivals.append(runtime4.send(worker, coordinator, 200))
        finish = max(arrivals)
        assert finish < sum(work) + 1.0
        assert finish >= 2.0  # at least the slowest branch

    def test_send_counts_stats(self, runtime4):
        sender = runtime4.spawn(PoolProcess, node=0)
        receiver = runtime4.spawn(PoolProcess, node=1)
        runtime4.send(sender, receiver, 500)
        assert runtime4.stats.messages == 1
        assert runtime4.stats.bytes_moved == 500
        node0 = runtime4.machine.node(0).stats
        node1 = runtime4.machine.node(1).stats
        assert node0.messages_sent == 1
        assert node1.messages_received == 1
        assert node1.bytes_received == 500

    def test_local_send_is_fast_but_counted(self, runtime4):
        a = runtime4.spawn(PoolProcess, node=0)
        b = runtime4.spawn(PoolProcess, node=0)
        runtime4.send(a, b, 1_000_000)
        assert runtime4.stats.local_messages == 1
        # No network time, only CPU overheads.
        assert b.ready_at < a.ready_at + 0.01

    def test_negative_size_rejected(self, runtime4):
        a = runtime4.spawn(PoolProcess, node=0)
        b = runtime4.spawn(PoolProcess, node=1)
        with pytest.raises(MachineError):
            runtime4.send(a, b, -1)

    def test_horizon_is_max_clock(self, runtime4):
        a = runtime4.spawn(PoolProcess, node=0)
        b = runtime4.spawn(PoolProcess, node=1)
        a.charge(3.0)
        b.charge(7.0)
        assert runtime4.horizon() == pytest.approx(b.ready_at)


class _Echo(PoolProcess):
    """Reactive process: forwards each payload to a collector."""

    def __init__(self, runtime, name, node_id, collector=None):
        super().__init__(runtime, name, node_id)
        self.collector = collector

    def handle(self, sender, payload):
        self.charge(0.001)
        if self.collector is not None:
            self.runtime.post(self, self.collector, payload)


class _Collector(PoolProcess):
    def __init__(self, runtime, name, node_id):
        super().__init__(runtime, name, node_id)
        self.received = []

    def handle(self, sender, payload):
        self.received.append(payload)


class TestReactiveMessaging:
    def test_post_delivers_through_handler_chain(self, runtime4):
        collector = runtime4.spawn(_Collector, node=2)
        echo = runtime4.spawn(_Echo, node=1, collector=collector)
        runtime4.post(None, echo, "ping")
        runtime4.run()
        assert collector.received == ["ping"]
        assert echo.messages_handled == 1

    def test_messages_to_dead_process_dropped(self, runtime4):
        collector = runtime4.spawn(_Collector, node=1)
        runtime4.post(None, collector, "a")
        runtime4.terminate(collector)
        runtime4.run()
        assert collector.received == []

    def test_base_process_handle_not_implemented(self, runtime4):
        process = runtime4.spawn(PoolProcess, node=0)
        with pytest.raises(NotImplementedError):
            process.handle(None, "x")
