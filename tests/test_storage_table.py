"""Tests for in-memory tables, including memory accounting."""

import pytest

from repro.errors import OutOfMemoryError, StorageError
from repro.machine.memory import MemoryAccount
from repro.storage import DataType, Schema, Table
from repro.storage.indexes import DuplicateKeyError


@pytest.fixture
def schema():
    return Schema.of(id=DataType.INT, name=DataType.STRING)


class TestBasicOperations:
    def test_insert_assigns_increasing_rids(self, schema):
        table = Table("t", schema)
        rids = table.insert_many([(1, "a"), (2, "b")])
        assert rids == [0, 1]
        assert len(table) == 2

    def test_get_and_scan(self, schema):
        table = Table("t", schema)
        table.insert((1, "a"))
        assert table.get(0) == (1, "a")
        assert list(table.scan()) == [(0, (1, "a"))]
        assert list(table.rows()) == [(1, "a")]

    def test_get_missing_raises(self, schema):
        table = Table("t", schema)
        with pytest.raises(StorageError):
            table.get(0)

    def test_delete_returns_row_and_frees_rid(self, schema):
        table = Table("t", schema)
        table.insert_many([(1, "a"), (2, "b")])
        assert table.delete(0) == (1, "a")
        assert not table.has_rid(0)
        assert len(table) == 1
        # rid is NOT reused: next insert gets a fresh id.
        assert table.insert((3, "c")) == 2

    def test_update_replaces_and_returns_old(self, schema):
        table = Table("t", schema)
        table.insert((1, "a"))
        old = table.update(0, (1, "z"))
        assert old == (1, "a")
        assert table.get(0) == (1, "z")

    def test_truncate(self, schema):
        table = Table("t", schema)
        table.insert_many([(1, "a"), (2, "b")])
        assert table.truncate() == 2
        assert len(table) == 0

    def test_insert_validates_schema(self, schema):
        table = Table("t", schema)
        with pytest.raises(StorageError):
            table.insert(("one", "a"))

    def test_insert_with_rid_for_recovery(self, schema):
        table = Table("t", schema)
        table.insert_with_rid(7, (1, "a"))
        assert table.get(7) == (1, "a")
        # Fresh inserts continue past the restored rid.
        assert table.insert((2, "b")) == 8
        with pytest.raises(StorageError):
            table.insert_with_rid(7, (9, "z"))


class TestIndexMaintenance:
    def test_hash_index_follows_mutations(self, schema):
        table = Table("t", schema)
        table.insert_many([(1, "a"), (2, "b")])
        index = table.create_hash_index("byid", ["id"])
        assert index.lookup((2,)) == [1]
        table.update(1, (5, "b"))
        assert index.lookup((2,)) == []
        assert index.lookup((5,)) == [1]
        table.delete(1)
        assert index.lookup((5,)) == []

    def test_unique_violation_rolls_back_insert(self, schema):
        table = Table("t", schema)
        table.create_hash_index("pk", ["id"], unique=True)
        table.insert((1, "a"))
        with pytest.raises(DuplicateKeyError):
            table.insert((1, "b"))
        assert len(table) == 1

    def test_unique_violation_on_update_restores_old_entries(self, schema):
        table = Table("t", schema)
        table.create_hash_index("pk", ["id"], unique=True)
        table.insert_many([(1, "a"), (2, "b")])
        with pytest.raises(DuplicateKeyError):
            table.update(1, (1, "b"))
        # Old state fully restored.
        assert table.get(1) == (2, "b")
        assert table.indexes["pk"].lookup((2,)) == [1]

    def test_index_backfills_existing_rows(self, schema):
        table = Table("t", schema)
        table.insert_many([(1, "a"), (2, "b")])
        index = table.create_ordered_index("byid", ["id"])
        assert index.lookup((1,)) == [0]

    def test_duplicate_index_name_rejected(self, schema):
        table = Table("t", schema)
        table.create_hash_index("i", ["id"])
        with pytest.raises(StorageError):
            table.create_ordered_index("i", ["id"])

    def test_drop_index(self, schema):
        table = Table("t", schema)
        table.create_hash_index("i", ["id"])
        table.drop_index("i")
        assert table.indexes == {}
        with pytest.raises(StorageError):
            table.drop_index("i")

    def test_index_on_finds_matching_key(self, schema):
        table = Table("t", schema)
        index = table.create_hash_index("i", ["name"])
        assert table.index_on(["name"]) is index
        assert table.index_on(["id"]) is None

    def test_truncate_clears_indexes(self, schema):
        table = Table("t", schema)
        table.insert((1, "a"))
        index = table.create_hash_index("i", ["id"])
        table.truncate()
        assert table.indexes["i"].lookup((1,)) == []
        table.insert((1, "x"))
        assert table.indexes["i"].lookup((1,)) == [0 + 1]


class TestMemoryAccounting:
    def test_footprint_grows_and_shrinks(self, schema):
        memory = MemoryAccount(10_000, owner="PE0")
        table = Table("t", schema, memory=memory)
        table.insert((1, "abc"))
        used_after_insert = memory.used
        assert used_after_insert == table.footprint_bytes() > 0
        table.delete(0)
        assert memory.used == 0

    def test_out_of_memory_rejects_insert_cleanly(self, schema):
        memory = MemoryAccount(40, owner="PE0")
        table = Table("t", schema, memory=memory)
        table.insert((1, "ab"))
        with pytest.raises(OutOfMemoryError):
            table.insert((2, "this-row-is-way-too-large-to-fit"))
        # The failed row is not half-inserted.
        assert len(table) == 1
        assert memory.used == table.footprint_bytes()

    def test_indexes_count_against_memory(self, schema):
        memory = MemoryAccount(100_000)
        table = Table("t", schema, memory=memory)
        table.insert_many([(i, "x") for i in range(50)])
        before = memory.used
        table.create_hash_index("i", ["id"])
        assert memory.used > before

    def test_release_memory(self, schema):
        memory = MemoryAccount(10_000)
        table = Table("t", schema, memory=memory)
        table.insert((1, "a"))
        table.release_memory()
        assert memory.used == 0
