"""Distributed execution correctness: every strategy must produce the
same rows as single-site evaluation, at any fragment count.

The oracle is :class:`LocalExecutor` over the gathered base tables; the
subject is :class:`DistributedExecutor` over fragmented OFMs.
"""

import pytest

from repro.exec.expressions import (
    Arithmetic,
    Comparison,
    and_,
    col,
    eq,
    lit,
)
from repro.exec.operators import JoinKind
from repro.machine import Machine, MachineConfig
from repro.algebra.local_exec import LocalExecutor
from repro.algebra.optimizer import OptimizedPlan
from repro.algebra.plan import (
    AggExpr,
    AggregateNode,
    ClosureNode,
    DeltaScanNode,
    DistinctNode,
    FixpointNode,
    JoinNode,
    LimitNode,
    ProjectNode,
    ScanNode,
    SelectNode,
    SetOpNode,
    SortNode,
    ValuesNode,
)
from repro.algebra.subexpr import extract_common_subexpressions
from repro.core.catalog import Catalog, FragmentInfo, TableInfo
from repro.core.executor import DistributedExecutor
from repro.core.fragmentation import HashFragmentation, RoundRobinFragmentation
from repro.ofm.manager import OFMProfile, OneFragmentManager
from repro.pool import PoolProcess, PoolRuntime
from repro.storage import DataType, Schema

EMP = Schema.of(id=DataType.INT, name=DataType.STRING, dept=DataType.STRING, sal=DataType.FLOAT)
DEPT = Schema.of(dname=DataType.STRING, city=DataType.STRING)
EDGE = Schema.of(src=DataType.INT, dst=DataType.INT)

EMP_ROWS = [
    (i, f"name{i}", ["eng", "sales", "hr"][i % 3], 50.0 + i * 3) for i in range(30)
]
DEPT_ROWS = [("eng", "ams"), ("sales", "rtm"), ("hr", "utr"), ("ops", "ein")]
EDGE_ROWS = [(i, i + 1) for i in range(8)] + [(0, 5)]


class Harness:
    """A machine + catalog + fragment OFMs, without the full GDH."""

    def __init__(self, fragments: dict[str, int]):
        config = MachineConfig(n_nodes=16, disk_nodes=(0,))
        self.runtime = PoolRuntime(Machine(config))
        self.catalog = Catalog()
        self.fragment_ofms: dict[str, OneFragmentManager] = {}
        tables = {"emp": (EMP, EMP_ROWS), "dept": (DEPT, DEPT_ROWS), "edge": (EDGE, EDGE_ROWS)}
        node = 1
        for name, (schema, rows) in tables.items():
            n = fragments.get(name, 1)
            scheme = HashFragmentation(0, n) if n > 1 else RoundRobinFragmentation(1)
            infos = []
            buckets = {}
            for row in rows:
                buckets.setdefault(scheme.fragment_of(row), []).append(row)
            for fragment_id in range(n):
                ofm_name = f"{name}.{fragment_id}"
                ofm = self.runtime.spawn(
                    OneFragmentManager, name=ofm_name,
                    node=(node % 15) + 1, schema=schema,
                    profile=OFMProfile.QUERY,
                )
                node += 1
                ofm.bulk_load(buckets.get(fragment_id, []))
                self.fragment_ofms[ofm_name] = ofm
                infos.append(FragmentInfo(fragment_id, ofm.node_id, ofm_name))
            self.catalog.create_table(
                TableInfo(name=name, schema=schema, scheme=scheme, fragments=infos)
            )
        self.executor = DistributedExecutor(
            self.runtime, self.catalog, self.fragment_ofms
        )
        self.query_process = self.runtime.spawn(PoolProcess, name="qp", node=0)

    def run(self, plan, shared=()):
        optimized = OptimizedPlan(plan=plan, shared=list(shared))
        rows, report = self.executor.execute(optimized, self.query_process)
        return rows, report


def oracle(plan, shared_plans=()):
    tables = {"emp": EMP_ROWS, "dept": DEPT_ROWS, "edge": EDGE_ROWS}
    shared_rows = {}
    for shared in shared_plans:
        shared_rows[shared.token] = LocalExecutor(tables, shared=shared_rows).run(shared.plan)
    return LocalExecutor(tables, shared=shared_rows).run(plan)


def check(plan, fragments, shared=()):
    harness = Harness(fragments)
    rows, report = harness.run(plan, shared)
    expected = oracle(plan, shared)
    assert sorted(rows, key=repr) == sorted(expected, key=repr)
    return report


FRAGMENT_CONFIGS = [
    {"emp": 1, "dept": 1, "edge": 1},
    {"emp": 4, "dept": 1, "edge": 2},
    {"emp": 8, "dept": 2, "edge": 4},
]


@pytest.mark.parametrize("fragments", FRAGMENT_CONFIGS)
class TestDistributedCorrectness:
    def test_scan(self, fragments):
        check(ScanNode("emp", EMP), fragments)

    def test_select_project(self, fragments):
        plan = ProjectNode(
            SelectNode(
                ScanNode("emp", EMP), Comparison(">", col(3), lit(80.0))
            ),
            [col(1), Arithmetic("*", col(3), lit(2.0))],
            ["name", "dsal"],
        )
        check(plan, fragments)

    def test_point_select_prunes_hash_fragments(self, fragments):
        plan = SelectNode(ScanNode("emp", EMP), eq(col(0), lit(7)))
        report = check(plan, fragments)
        if fragments["emp"] > 1:
            assert report.fragments_pruned > 0

    def test_equi_join_repartition(self, fragments):
        plan = JoinNode(
            ScanNode("emp", EMP), ScanNode("dept", DEPT), eq(col(2), col(4))
        )
        check(plan, fragments)

    def test_co_partitioned_join(self, fragments):
        # Self-join on the fragmentation key: no repartition needed.
        plan = JoinNode(
            ScanNode("emp", EMP), ScanNode("emp", EMP), eq(col(0), col(4))
        )
        check(plan, fragments)

    def test_non_equi_join_broadcast(self, fragments):
        plan = JoinNode(
            ScanNode("dept", DEPT),
            ScanNode("dept", DEPT),
            Comparison("<", col(0), col(2)),
        )
        check(plan, fragments)

    def test_left_outer_join(self, fragments):
        plan = JoinNode(
            ScanNode("dept", DEPT),
            ScanNode("emp", EMP),
            eq(col(0), col(4)),
            JoinKind.LEFT_OUTER,
        )
        check(plan, fragments)

    def test_semi_and_anti_join(self, fragments):
        for kind in (JoinKind.SEMI, JoinKind.ANTI):
            plan = JoinNode(
                ScanNode("dept", DEPT),
                ScanNode("emp", EMP),
                eq(col(0), col(4)),
                kind,
            )
            check(plan, fragments)

    def test_global_aggregate(self, fragments):
        plan = AggregateNode(
            ScanNode("emp", EMP), [],
            [AggExpr("count", None), AggExpr("sum", col(3)),
             AggExpr("avg", col(3)), AggExpr("min", col(0)), AggExpr("max", col(0))],
        )
        check(plan, fragments)

    def test_grouped_aggregate_two_phase(self, fragments):
        plan = AggregateNode(
            ScanNode("emp", EMP), [2],
            [AggExpr("count", None), AggExpr("avg", col(3)), AggExpr("max", col(3))],
        )
        check(plan, fragments)

    def test_distinct_aggregate_gathers(self, fragments):
        plan = AggregateNode(
            ScanNode("emp", EMP), [2],
            [AggExpr("count", col(3), distinct=True)],
        )
        check(plan, fragments)

    def test_distinct(self, fragments):
        plan = DistinctNode(ProjectNode(ScanNode("emp", EMP), [col(2)], ["dept"]))
        check(plan, fragments)

    def test_sort_limit(self, fragments):
        plan = LimitNode(
            SortNode(ScanNode("emp", EMP), [(3, True), (0, False)]), 5, 2
        )
        harness = Harness(fragments)
        rows, _ = harness.run(plan)
        expected = oracle(plan)
        assert rows == expected  # ordered comparison

    def test_set_operations(self, fragments):
        eng = ProjectNode(
            SelectNode(ScanNode("emp", EMP), eq(col(2), lit("eng"))),
            [col(2)], ["d"],
        )
        all_depts = ProjectNode(ScanNode("emp", EMP), [col(2)], ["d"])
        for op in ("union", "union_all", "intersect", "except"):
            check(SetOpNode(op, all_depts, eng), fragments)

    def test_closure(self, fragments):
        plan = ClosureNode(ScanNode("edge", EDGE))
        check(plan, fragments)

    def test_fixpoint_with_distributed_base(self, fragments):
        edge = ScanNode("edge", EDGE)
        step = ProjectNode(
            JoinNode(DeltaScanNode("tc", EDGE), edge, eq(col(1), col(2))),
            [col(0), col(3)], ["src", "dst"],
        )
        plan = FixpointNode(edge, step, "tc")
        check(plan, fragments)

    def test_values(self, fragments):
        plan = ValuesNode(Schema.of(a=DataType.INT), [(1,), (2,)])
        check(plan, fragments)

    def test_shared_subexpressions(self, fragments):
        filtered = SelectNode(ScanNode("emp", EMP), Comparison(">", col(3), lit(90.0)))
        self_join = JoinNode(filtered, filtered, eq(col(0), col(4)))
        rewritten, shared = extract_common_subexpressions(self_join)
        assert shared
        harness = Harness(fragments)
        rows, _ = harness.run(rewritten, shared)
        assert sorted(rows, key=repr) == sorted(oracle(self_join), key=repr)


class TestSimulatedAccounting:
    def test_parallel_scan_is_faster_than_serial(self):
        plan = SelectNode(ScanNode("emp", EMP), Comparison(">", col(3), lit(0.0)))
        serial = Harness({"emp": 1})
        serial_report = serial.run(plan)[1]
        parallel = Harness({"emp": 8})
        parallel_report = parallel.run(plan)[1]
        assert parallel_report.response_time < serial_report.response_time

    def test_messages_scale_with_fragments(self):
        plan = ScanNode("emp", EMP)
        few = Harness({"emp": 2}).run(plan)[1]
        many = Harness({"emp": 8}).run(plan)[1]
        assert many.messages > few.messages

    def test_temp_ofms_cleaned_up(self):
        harness = Harness({"emp": 4, "edge": 2})
        harness.run(ClosureNode(ScanNode("edge", EDGE)))
        assert all(
            not process.name.startswith("temp-ofm")
            for process in harness.runtime.live_processes()
        )

    def test_report_counts_rows_and_fragments(self):
        harness = Harness({"emp": 4})
        rows, report = harness.run(ScanNode("emp", EMP))
        assert report.rows_returned == len(EMP_ROWS)
        assert report.fragments_scanned == 4
        assert report.bytes_shipped > 0


class TestDistributedClosure:
    """The parallel fixpoint strategy must agree with the gathered one."""

    def _closure_plan(self):
        return ClosureNode(ScanNode("edge", EDGE))

    def test_strategies_agree(self):
        expected = oracle(self._closure_plan())
        for distributed in (True, False):
            harness = Harness({"edge": 4})
            harness.executor.distributed_closure = distributed
            rows, _ = harness.run(self._closure_plan())
            assert sorted(rows) == sorted(expected), distributed

    def test_distributed_spreads_work(self):
        harness = Harness({"edge": 4})
        harness.executor.distributed_closure = True
        harness.run(self._closure_plan())
        busy = [
            node.stats.busy_time_s
            for node in harness.runtime.machine.nodes
            if node.stats.busy_time_s > 0
        ]
        assert len(busy) >= 3  # several elements participated

    def test_single_fragment_uses_local_operator(self):
        harness = Harness({"edge": 1})
        harness.executor.distributed_closure = True
        rows, _ = harness.run(self._closure_plan())
        assert sorted(rows) == sorted(oracle(self._closure_plan()))

    def test_cycles_converge_distributed(self):
        # A cyclic graph exercises convergence of the distributed rounds.
        cyclic = [(0, 1), (1, 2), (2, 0), (2, 3)]
        harness = Harness({"edge": 2})
        # Overwrite fragment contents with the cyclic graph.
        info = harness.catalog.table("edge")
        for fragment in info.fragments:
            ofm = harness.fragment_ofms[fragment.ofm_name]
            ofm.table.truncate()
        scheme = info.scheme
        for row in cyclic:
            fragment = info.fragments[scheme.fragment_of(row)]
            harness.fragment_ofms[fragment.ofm_name].table.insert(row)
        harness.executor.distributed_closure = True
        rows, _ = harness.run(self._closure_plan())
        import networkx as nx

        expected = sorted(nx.transitive_closure(nx.DiGraph(cyclic)).edges())
        assert sorted(rows) == expected
