"""Tests for interconnect topologies and routing."""

import pytest

from repro.errors import TopologyError
from repro.machine import MachineConfig
from repro.machine.router import Router
from repro.machine.topology import (
    Topology,
    build_chordal_ring,
    build_complete,
    build_hypercube,
    build_mesh,
    build_ring,
    build_topology,
)


class TestMesh:
    def test_8x8_mesh_matches_prototype(self):
        mesh = build_mesh(64)
        assert mesh.n_nodes == 64
        assert mesh.name == "mesh_8x8"
        # Interior nodes use exactly the four links of a processing element.
        assert mesh.max_degree == 4
        assert mesh.n_links == 2 * 7 * 8
        assert mesh.is_connected()
        assert mesh.diameter() == 14

    def test_corner_and_interior_degrees(self):
        mesh = build_mesh(16)  # 4x4
        assert mesh.degree(0) == 2  # corner
        assert mesh.degree(5) == 4  # interior

    def test_non_square_counts_factorize(self):
        mesh = build_mesh(12)
        assert mesh.name == "mesh_3x4"
        assert mesh.is_connected()

    def test_torus_wraps(self):
        torus = build_mesh(16, wrap=True)
        assert torus.max_degree == 4
        # Every node in a 4x4 torus has full degree.
        assert all(torus.degree(n) == 4 for n in range(16))
        assert torus.diameter() == 4

    def test_mesh_mean_hops_smaller_than_ring(self):
        assert build_mesh(64).mean_hops() < build_ring(64).mean_hops()


class TestChordalRing:
    def test_prototype_chordal_ring_degree_four(self):
        ring = build_chordal_ring(64, skips=(8,))
        assert ring.max_degree == 4
        assert ring.is_connected()
        assert ring.n_links == 128

    def test_chords_shrink_diameter(self):
        plain = build_ring(64)
        chordal = build_chordal_ring(64, skips=(8,))
        assert chordal.diameter() < plain.diameter()
        assert chordal.diameter() == 7

    def test_bad_skip_rejected(self):
        with pytest.raises(TopologyError):
            build_chordal_ring(64, skips=(1,))
        with pytest.raises(TopologyError):
            build_chordal_ring(64, skips=(40,))


class TestOtherTopologies:
    def test_hypercube_structure(self):
        cube = build_hypercube(16)
        assert all(cube.degree(n) == 4 for n in range(16))
        assert cube.diameter() == 4

    def test_hypercube_requires_power_of_two(self):
        with pytest.raises(TopologyError):
            build_hypercube(12)

    def test_complete_graph(self):
        complete = build_complete(5)
        assert complete.n_links == 10
        assert complete.diameter() == 1

    def test_ring_of_two(self):
        ring = build_ring(2)
        assert ring.n_links == 1
        assert ring.is_connected()


class TestTopologyValidation:
    def test_self_loops_rejected(self):
        with pytest.raises(TopologyError):
            Topology("bad", 3, [(0, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(TopologyError):
            Topology("bad", 3, [(0, 7)])

    def test_degree_check_enforces_link_budget(self):
        star = Topology("star", 6, [(0, i) for i in range(1, 6)])
        with pytest.raises(TopologyError):
            star.check_degree(4)

    def test_build_topology_from_config(self):
        config = MachineConfig(n_nodes=64, topology="chordal_ring")
        topology = build_topology(config)
        assert topology.n_nodes == 64
        assert topology.max_degree <= config.links_per_node

    def test_build_topology_rejects_overdegree(self):
        # A 64-node hypercube has degree 6 > 4 links.
        config = MachineConfig(n_nodes=64, topology="hypercube")
        with pytest.raises(TopologyError):
            build_topology(config)


class TestRouter:
    def test_routes_are_shortest_paths(self):
        mesh = build_mesh(16)
        router = Router(mesh)
        for source in range(16):
            distances = mesh.bfs_distances(source)
            for destination in range(16):
                assert router.hops(source, destination) == distances[destination]

    def test_path_endpoints_and_length(self):
        mesh = build_mesh(64)
        router = Router(mesh)
        path = router.path(0, 63)
        assert path[0] == 0
        assert path[-1] == 63
        assert len(path) == router.hops(0, 63) + 1
        # Consecutive path nodes must be adjacent.
        for a, b in zip(path, path[1:]):
            assert b in mesh.neighbors(a)

    def test_routing_is_deterministic(self):
        mesh = build_mesh(64)
        assert Router(mesh).path(5, 40) == Router(mesh).path(5, 40)

    def test_disconnected_topology_rejected(self):
        disconnected = Topology("parts", 4, [(0, 1), (2, 3)])
        with pytest.raises(TopologyError):
            Router(disconnected)

    def test_mean_hops_matches_topology(self):
        mesh = build_mesh(16)
        assert Router(mesh).mean_hops() == pytest.approx(mesh.mean_hops())
