"""Reactive POOL-X semantics and machine-model edge cases."""

import pytest

from repro.machine import Machine, MachineConfig
from repro.pool import PoolProcess, PoolRuntime


class _Recorder(PoolProcess):
    def __init__(self, runtime, name, node_id):
        super().__init__(runtime, name, node_id)
        self.received = []

    def handle(self, sender, payload):
        self.received.append((self.runtime.loop.now, payload))


class _Relay(PoolProcess):
    """Forwards payloads through a chain, charging work at each hop."""

    def __init__(self, runtime, name, node_id, target=None, work=0.001):
        super().__init__(runtime, name, node_id)
        self.target = target
        self.work = work

    def handle(self, sender, payload):
        self.charge(self.work)
        if self.target is not None:
            self.runtime.post(self, self.target, payload, n_bytes=128)


class TestReactiveSemantics:
    def test_messages_delivered_in_arrival_order(self):
        runtime = PoolRuntime(Machine(MachineConfig(n_nodes=4)))
        recorder = runtime.spawn(_Recorder, node=0)
        for payload in ("a", "b", "c"):
            runtime.post(None, recorder, payload)
        runtime.run()
        assert [payload for _, payload in recorder.received] == ["a", "b", "c"]

    def test_chain_latency_accumulates_hops_and_work(self):
        runtime = PoolRuntime(Machine(MachineConfig(n_nodes=8)))
        sink = runtime.spawn(_Recorder, node=7)
        middle = runtime.spawn(_Relay, node=3, target=sink)
        head = runtime.spawn(_Relay, node=0, target=middle)
        runtime.post(None, head, "token")
        runtime.run()
        assert len(sink.received) == 1
        arrival_time = sink.received[0][0]
        # At least the two hops' work plus network travel.
        assert arrival_time > 0.002

    def test_each_hop_counts_messages(self):
        runtime = PoolRuntime(Machine(MachineConfig(n_nodes=4)))
        sink = runtime.spawn(_Recorder, node=2)
        relay = runtime.spawn(_Relay, node=1, target=sink)
        runtime.post(None, relay, "x")
        runtime.run()
        # Only the relay->sink hop is a counted inter-process message
        # (external injections have no sender).
        assert runtime.stats.messages == 1
        assert runtime.machine.node(1).stats.messages_sent == 1
        assert runtime.machine.node(2).stats.messages_received == 1

    def test_run_until_pauses_delivery(self):
        runtime = PoolRuntime(Machine(MachineConfig(n_nodes=4)))
        sink = runtime.spawn(_Recorder, node=3)
        relay = runtime.spawn(_Relay, node=0, target=sink, work=0.5)
        runtime.post(None, relay, "slow")
        runtime.run(until=0.1)
        assert sink.received == []
        runtime.run()
        assert len(sink.received) == 1


class TestMachineEdges:
    def test_single_node_machine(self):
        machine = Machine(MachineConfig(n_nodes=1, topology="complete", disk_nodes=(0,)))
        assert machine.transfer_time(0, 0, 10_000) == 0.0
        assert machine.broadcast_time(0, 100) == 0.0
        assert machine.nearest_disk_node(0) == 0

    def test_zero_byte_transfer_free(self):
        machine = Machine(MachineConfig(n_nodes=4))
        assert machine.transfer_time(0, 1, 0) == 0.0

    def test_disk_time_requires_disk(self):
        from repro.errors import MachineError

        machine = Machine(MachineConfig(n_nodes=2))
        with pytest.raises(MachineError):
            machine.disk_time(0, 100)

    def test_memory_peak_survives_frees(self):
        machine = Machine(MachineConfig(n_nodes=2))
        memory = machine.node(0).memory
        memory.allocate(1_000_000, "spike")
        memory.free("spike")
        assert memory.peak >= 1_000_000
        assert memory.used == 0

    def test_startup_time_scales(self):
        machine = Machine(MachineConfig(n_nodes=2))
        assert machine.startup_time(3) == pytest.approx(
            3 * machine.config.cpu_start_cost_s
        )
