"""Tests for the fragment lock manager: S/X modes, FIFO queues,
deadlock detection, release-time accounting."""

import pytest

from repro.errors import DeadlockError
from repro.core.locks import LockManager, LockMode, WouldBlock

R1 = ("emp", 0)
R2 = ("emp", 1)
R3 = ("dept", 0)

S = LockMode.SHARED
X = LockMode.EXCLUSIVE


@pytest.fixture
def locks():
    return LockManager()


class TestGrants:
    def test_shared_locks_coexist(self, locks):
        locks.acquire(1, R1, S)
        locks.acquire(2, R1, S)
        assert set(locks.holders(R1)) == {1, 2}

    def test_exclusive_excludes(self, locks):
        locks.acquire(1, R1, X)
        with pytest.raises(WouldBlock):
            locks.acquire(2, R1, X)
        with pytest.raises(WouldBlock):
            locks.acquire(2, R1, S)

    def test_shared_blocks_exclusive(self, locks):
        locks.acquire(1, R1, S)
        with pytest.raises(WouldBlock):
            locks.acquire(2, R1, X)

    def test_reentrant(self, locks):
        locks.acquire(1, R1, X)
        locks.acquire(1, R1, X)
        locks.acquire(1, R1, S)  # covered by X
        assert locks.holders(R1) == {1: X}

    def test_upgrade_sole_holder(self, locks):
        locks.acquire(1, R1, S)
        locks.acquire(1, R1, X)
        assert locks.holders(R1) == {1: X}

    def test_upgrade_with_other_reader_blocks(self, locks):
        locks.acquire(1, R1, S)
        locks.acquire(2, R1, S)
        with pytest.raises(WouldBlock):
            locks.acquire(1, R1, X)

    def test_different_resources_independent(self, locks):
        locks.acquire(1, R1, X)
        locks.acquire(2, R2, X)
        locks.acquire(3, R3, X)
        assert locks.locks_of(1) == [R1]


class TestReleaseAndWaiters:
    def test_release_grants_waiter_with_release_time(self, locks):
        locks.acquire(1, R1, X)
        with pytest.raises(WouldBlock):
            locks.acquire(2, R1, X)
        locks.release_all(1, release_time=42.0)
        floor = locks.acquire(2, R1, X)
        assert floor == 42.0

    def test_release_time_monotone(self, locks):
        locks.acquire(1, R1, X)
        locks.release_all(1, release_time=50.0)
        locks.acquire(2, R1, X)
        locks.release_all(2, release_time=30.0)  # out-of-order stamp
        floor = locks.acquire(3, R1, X)
        assert floor == 50.0

    def test_fifo_fairness_incompatible_waiters(self, locks):
        locks.acquire(1, R1, X)
        with pytest.raises(WouldBlock):
            locks.acquire(2, R1, X)
        with pytest.raises(WouldBlock):
            locks.acquire(3, R1, X)
        locks.release_all(1, 1.0)
        # 3 retries first but 2 is ahead in the queue.
        with pytest.raises(WouldBlock):
            locks.acquire(3, R1, X)
        locks.acquire(2, R1, X)

    def test_shared_waiters_join_each_other(self, locks):
        locks.acquire(1, R1, X)
        with pytest.raises(WouldBlock):
            locks.acquire(2, R1, S)
        with pytest.raises(WouldBlock):
            locks.acquire(3, R1, S)
        locks.release_all(1, 1.0)
        locks.acquire(3, R1, S)  # S behind S: no fairness barrier
        locks.acquire(2, R1, S)
        assert set(locks.holders(R1)) == {2, 3}

    def test_release_returns_contended_resources(self, locks):
        locks.acquire(1, R1, X)
        locks.acquire(1, R2, X)
        with pytest.raises(WouldBlock):
            locks.acquire(2, R1, X)
        unblocked = locks.release_all(1, 1.0)
        assert unblocked == [R1]

    def test_conflict_counter(self, locks):
        locks.acquire(1, R1, X)
        with pytest.raises(WouldBlock):
            locks.acquire(2, R1, X)
        assert locks.conflicts == 1


class TestDeadlocks:
    def test_two_party_deadlock_detected(self, locks):
        locks.acquire(1, R1, X)
        locks.acquire(2, R2, X)
        with pytest.raises(WouldBlock):
            locks.acquire(1, R2, X)  # 1 waits for 2
        with pytest.raises(DeadlockError):
            locks.acquire(2, R1, X)  # 2 waits for 1: cycle
        assert locks.deadlocks_detected == 1

    def test_three_party_cycle(self, locks):
        locks.acquire(1, R1, X)
        locks.acquire(2, R2, X)
        locks.acquire(3, R3, X)
        with pytest.raises(WouldBlock):
            locks.acquire(1, R2, X)
        with pytest.raises(WouldBlock):
            locks.acquire(2, R3, X)
        with pytest.raises(DeadlockError):
            locks.acquire(3, R1, X)

    def test_victim_edges_removed_after_deadlock(self, locks):
        locks.acquire(1, R1, X)
        locks.acquire(2, R2, X)
        with pytest.raises(WouldBlock):
            locks.acquire(1, R2, X)
        with pytest.raises(DeadlockError):
            locks.acquire(2, R1, X)
        # Victim (2) releases; 1 can proceed.
        locks.release_all(2, 1.0)
        locks.acquire(1, R2, X)

    def test_chain_without_cycle_is_not_deadlock(self, locks):
        locks.acquire(1, R1, X)
        locks.acquire(2, R2, X)
        with pytest.raises(WouldBlock):
            locks.acquire(2, R1, X)  # 2 -> 1
        with pytest.raises(WouldBlock):
            locks.acquire(3, R2, X)  # 3 -> 2 (chain, no cycle)
        assert locks.deadlocks_detected == 0
        assert locks.waiting_transactions() == {2, 3}

    def test_shared_requests_do_not_deadlock_each_other(self, locks):
        locks.acquire(1, R1, S)
        locks.acquire(2, R2, S)
        locks.acquire(1, R2, S)
        locks.acquire(2, R1, S)  # all compatible
        assert locks.deadlocks_detected == 0


class TestIdleEntryPurge:
    """Regression: release_all must not leak one _LockState per
    fragment ever touched (unbounded growth under multi-fragment
    traffic).  Idle entries past the retain horizon are purged."""

    def test_idle_entries_purged_past_horizon(self):
        locks = LockManager(retain_horizon_s=10.0)
        for txn in range(200):
            resource = ("t", txn)  # a different fragment every time
            locks.acquire(txn, resource, X)
            locks.release_all(txn, float(txn))
        # Sweeps ran as simulated time passed; old idle entries are gone.
        assert locks.entries_purged > 0
        assert len(locks._locks) < 200

    def test_recent_entries_survive_the_sweep(self):
        locks = LockManager(retain_horizon_s=10.0)
        locks.acquire(1, R1, X)
        locks.release_all(1, 100.0)
        # R1's release stamp is recent relative to the next sweep time.
        locks.acquire(2, R2, X)
        locks.release_all(2, 105.0)
        locks.acquire(3, R3, X)
        locks.release_all(3, 120.0)  # sweep fires; cutoff = 110
        assert R1 not in locks._locks and R2 not in locks._locks
        # Entries released within the horizon keep their wait floor.
        state = locks._locks.get(R3)
        assert state is not None and state.last_release_time == 120.0

    def test_held_and_waited_entries_never_purged(self):
        locks = LockManager(retain_horizon_s=1.0)
        locks.acquire(1, R1, X)
        with pytest.raises(WouldBlock):
            locks.acquire(2, R1, X)
        locks.acquire(3, R2, X)
        locks.release_all(3, 1000.0)  # sweep fires far in the future
        state = locks._locks[R1]
        assert 1 in state.holders  # still held: survived
        assert state.waiters  # still waited on: survived

    def test_purged_floor_is_safe(self):
        """A purged entry re-acquires with floor 0.0 — harmless, since
        any live requester's clock is already past the old release time
        (advance_to is a max)."""
        locks = LockManager(retain_horizon_s=5.0)
        locks.acquire(1, R1, X)
        locks.release_all(1, 3.0)
        locks.acquire(2, R2, X)
        locks.release_all(2, 50.0)  # sweeps R1's idle entry
        assert locks.acquire(3, R1, X) == 0.0
