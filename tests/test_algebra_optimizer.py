"""Tests for pruning, CSE, join ordering, and the optimizer pipeline."""

import pytest

from repro.exec.expressions import Arithmetic, Comparison, and_, col, eq, lit
from repro.algebra.estimates import Estimator, TableStats
from repro.algebra.join_order import reorder_joins
from repro.algebra.local_exec import LocalExecutor
from repro.algebra.optimizer import Optimizer, OptimizerOptions
from repro.algebra.plan import (
    AggExpr,
    AggregateNode,
    DistinctNode,
    JoinNode,
    ProjectNode,
    ScanNode,
    SelectNode,
    SharedScanNode,
    SortNode,
    ValuesNode,
)
from repro.algebra.pruning import prune_columns
from repro.algebra.subexpr import extract_common_subexpressions
from repro.storage import DataType, Schema

EMP = Schema.of(id=DataType.INT, name=DataType.STRING, dept=DataType.STRING, sal=DataType.FLOAT)
DEPT = Schema.of(dname=DataType.STRING, city=DataType.STRING)
PROJ = Schema.of(pid=DataType.INT, owner=DataType.INT, budget=DataType.FLOAT)

TABLES = {
    "emp": [
        (1, "ada", "eng", 120.0), (2, "bob", "eng", 95.0),
        (3, "cy", "sales", 80.0), (4, "dee", "sales", 85.0),
        (5, "eve", "hr", 70.0),
    ],
    "dept": [("eng", "ams"), ("sales", "rtm"), ("hr", "utr")],
    "proj": [(10, 1, 5.0), (11, 2, 9.0), (12, 1, 2.0)],
}

STATS = {
    "emp": TableStats(5, 30, {"id": 5, "dept": 3}),
    "dept": TableStats(3, 20, {"dname": 3}),
    "proj": TableStats(3, 16, {"pid": 3, "owner": 2}),
}


def emp():
    return ScanNode("emp", EMP)


def dept():
    return ScanNode("dept", DEPT)


def proj():
    return ScanNode("proj", PROJ)


def run(plan, shared=None):
    executor = LocalExecutor(TABLES, shared=shared)
    return sorted(executor.run(plan), key=repr)


class TestPruning:
    def test_root_schema_unchanged(self):
        plan = ProjectNode(
            JoinNode(emp(), dept(), eq(col(2), col(4))),
            [col(1), col(5)], ["name", "city"],
        )
        pruned = prune_columns(plan)
        assert pruned.schema.names() == plan.schema.names()
        assert run(plan) == run(pruned)

    def test_join_inputs_narrowed(self):
        plan = ProjectNode(
            JoinNode(emp(), dept(), eq(col(2), col(4))),
            [col(1)], ["name"],
        )
        pruned = prune_columns(plan)
        # The emp side must not carry id/sal into the join.
        join = next(n for n in pruned.walk() if isinstance(n, JoinNode))
        assert len(join.left.schema) == 2  # name + dept
        assert run(plan) == run(pruned)

    def test_select_columns_preserved_for_predicate(self):
        plan = ProjectNode(
            SelectNode(emp(), Comparison(">", col(3), lit(80.0))),
            [col(1)], ["name"],
        )
        pruned = prune_columns(plan)
        assert run(plan) == run(pruned)

    def test_aggregate_drops_unused_aggregates(self):
        agg = AggregateNode(
            emp(), [2],
            [AggExpr("count", None), AggExpr("sum", col(3)), AggExpr("max", col(0))],
            ["dept", "n", "total", "maxid"],
        )
        plan = ProjectNode(agg, [col(0), col(2)], ["dept", "total"])
        pruned = prune_columns(plan)
        inner = next(n for n in pruned.walk() if isinstance(n, AggregateNode))
        assert len(inner.aggregates) == 1  # only SUM survives
        assert run(plan) == run(pruned)

    def test_sort_and_distinct_preserved(self):
        plan = SortNode(DistinctNode(ProjectNode(emp(), [col(2)], ["dept"])), [(0, False)])
        pruned = prune_columns(plan)
        assert run(plan) == run(pruned)

    def test_pruning_shrinks_intermediate_width(self):
        # 16-wide scan, output needs 1 column: join inputs should shrink.
        wide_schema = Schema.of(**{f"c{i}": DataType.INT for i in range(16)})
        wide_rows = [tuple(range(j, j + 16)) for j in range(4)]
        tables = {"wide": wide_rows}
        scan = ScanNode("wide", wide_schema)
        plan = ProjectNode(
            SelectNode(scan, Comparison(">", col(0), lit(0))),
            [col(15)], ["last"],
        )
        pruned = prune_columns(plan)
        select = next(n for n in pruned.walk() if isinstance(n, SelectNode))
        assert len(select.schema) == 2  # c0 (predicate) + c15 (output)
        assert sorted(LocalExecutor(tables).run(plan)) == sorted(
            LocalExecutor(tables).run(pruned)
        )


class TestCommonSubexpressions:
    def test_repeated_subtree_extracted_once(self):
        filtered = SelectNode(emp(), Comparison(">", col(3), lit(80.0)))
        self_join = JoinNode(filtered, filtered, eq(col(0), col(4)))
        rewritten, shared = extract_common_subexpressions(self_join)
        assert len(shared) == 1
        assert shared[0].occurrences == 2
        scans = [n for n in rewritten.walk() if isinstance(n, SharedScanNode)]
        assert len(scans) == 2

    def test_results_preserved_through_sharing(self):
        filtered = SelectNode(emp(), Comparison(">", col(3), lit(80.0)))
        self_join = JoinNode(filtered, filtered, eq(col(0), col(4)))
        rewritten, shared = extract_common_subexpressions(self_join)
        shared_rows = {s.token: run(s.plan) for s in shared}
        assert run(self_join) == run(rewritten, shared=shared_rows)

    def test_leaves_never_extracted(self):
        self_join = JoinNode(emp(), emp(), eq(col(0), col(4)))
        rewritten, shared = extract_common_subexpressions(self_join)
        assert shared == []

    def test_no_repeats_no_change(self):
        plan = SelectNode(emp(), eq(col(0), lit(1)))
        rewritten, shared = extract_common_subexpressions(plan)
        assert shared == []
        assert rewritten.key() == plan.key()


class TestJoinOrdering:
    def _three_way(self):
        # (emp x dept) x proj with conditions chosen so the optimizer
        # should join the small tables first.
        j1 = JoinNode(emp(), dept(), eq(col(2), col(4)))
        j2 = JoinNode(j1, proj(), eq(col(0), col(7)))  # emp.id = proj.owner
        return j2

    def test_reorder_preserves_results_and_schema(self):
        plan = self._three_way()
        estimator = Estimator(STATS)
        reordered = reorder_joins(plan, estimator)
        assert reordered.schema.names() == plan.schema.names()
        assert run(plan) == run(reordered)

    def test_reorder_handles_cross_products(self):
        plan = JoinNode(JoinNode(emp(), dept(), None), proj(), None)
        estimator = Estimator(STATS)
        reordered = reorder_joins(plan, estimator)
        assert run(plan) == run(reordered)

    def test_two_way_left_alone(self):
        plan = JoinNode(emp(), dept(), eq(col(2), col(4)))
        estimator = Estimator(STATS)
        assert reorder_joins(plan, estimator) is plan


class TestOptimizerPipeline:
    def _query(self):
        join = JoinNode(emp(), dept(), eq(col(2), col(4)))
        return ProjectNode(
            SelectNode(join, and_(
                Comparison(">", col(3), lit(75.0)),
                eq(col(5), lit("ams")),
            )),
            [col(1), Arithmetic("*", col(3), lit(2.0))],
            ["name", "dsal"],
        )

    def test_optimized_results_match(self):
        plan = self._query()
        optimized = Optimizer(STATS).optimize(plan)
        shared_rows = {s.token: run(s.plan) for s in optimized.shared}
        assert run(plan) == run(optimized.plan, shared=shared_rows)

    def test_all_stages_can_be_disabled(self):
        plan = self._query()
        options = OptimizerOptions(
            enable_rewrites=False,
            enable_join_reorder=False,
            enable_prune=False,
            enable_cse=False,
        )
        optimized = Optimizer(STATS, options).optimize(plan)
        assert optimized.plan.key() == plan.key()
        assert optimized.fired_rules == []

    def test_estimates_attached(self):
        optimized = Optimizer(STATS).optimize(self._query())
        assert optimized.estimated_rows >= 0

    def test_explain_mentions_rules(self):
        optimized = Optimizer(STATS).optimize(self._query())
        assert "rules fired" in optimized.explain()

    def test_cse_materializes_self_join(self):
        filtered = SelectNode(emp(), Comparison(">", col(3), lit(80.0)))
        plan = JoinNode(filtered, filtered, eq(col(0), col(4)))
        optimized = Optimizer(STATS).optimize(plan)
        assert len(optimized.shared) == 1
        shared_rows = {s.token: run(s.plan) for s in optimized.shared}
        assert run(plan) == run(optimized.plan, shared=shared_rows)
