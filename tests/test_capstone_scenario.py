"""Capstone: a day in the life of the PRISMA machine.

One scenario that crosses every subsystem: DDL with fragmentation,
replication and indexes; bulk loading; concurrent OLTP with conflicts
and a deadlock; parallel analytics through the optimizer; recursive
queries through both front-ends; a checkpoint; a crash mid-transaction;
restart recovery; and a final audit that everything adds up.
"""

import pytest

from repro import MachineConfig, PrismaDB
from repro.core.workload import InterleavedDriver
from repro.workloads import genealogy


@pytest.fixture(scope="module")
def world():
    db = PrismaDB(MachineConfig(n_nodes=24, disk_nodes=(0, 8, 16)))

    db.execute(
        "CREATE TABLE customer (id INT PRIMARY KEY, name STRING, city STRING)"
        " FRAGMENTED BY HASH(id) INTO 6 WITH 2 REPLICAS"
    )
    db.execute(
        "CREATE TABLE orders (oid INT PRIMARY KEY, cust INT, amount FLOAT)"
        " FRAGMENTED BY HASH(oid) INTO 6"
    )
    db.execute("CREATE INDEX orders_by_cust ON orders (cust)")
    db.execute(
        "CREATE TABLE refers (sponsor STRING, recruit STRING)"
        " FRAGMENTED BY HASH(sponsor) INTO 3"
    )

    cities = ["ams", "rtm", "utr", "ein"]
    db.bulk_load(
        "customer",
        [(i, f"cust{i}", cities[i % 4]) for i in range(60)],
    )
    db.bulk_load(
        "orders",
        [(o, o % 60, float(10 + o % 90)) for o in range(300)],
    )
    pairs, _people = genealogy(4, 2, seed=6)
    db.bulk_load("refers", pairs)
    db.execute("ANALYZE")
    db.quiesce()
    return db


def test_01_analytics_through_the_optimizer(world):
    result = world.execute(
        "SELECT c.city, COUNT(*) AS orders, SUM(o.amount) AS revenue"
        " FROM orders o JOIN customer c ON o.cust = c.id"
        " GROUP BY c.city ORDER BY revenue DESC"
    )
    assert len(result.rows) == 4
    total = world.execute("SELECT SUM(amount) FROM orders").scalar()
    assert sum(row[2] for row in result.rows) == pytest.approx(total)
    assert result.report.fragments_scanned >= 12  # both tables, all frags


def test_02_index_point_lookups(world):
    result = world.execute("SELECT amount FROM orders WHERE oid = 123")
    assert result.rows == [(10.0 + 123 % 90,)]
    assert result.report.index_scans >= 1
    by_customer = world.execute("SELECT COUNT(*) FROM orders WHERE cust = 7")
    assert by_customer.scalar() == 5
    assert by_customer.report.index_scans >= 1


def test_03_concurrent_oltp_with_conflicts(world):
    before = world.execute("SELECT SUM(amount) FROM orders").scalar()
    scripts = []
    for client in range(4):
        transactions = []
        for t in range(3):
            oid = client * 3 + t
            transactions.append([
                f"UPDATE orders SET amount = amount + 5 WHERE oid = {oid}",
                f"UPDATE orders SET amount = amount - 5 WHERE oid = {oid + 100}",
            ])
        scripts.append(transactions)
    report = InterleavedDriver(world).run(scripts)
    assert report.transactions_committed == 12
    after = world.execute("SELECT SUM(amount) FROM orders").scalar()
    assert after == pytest.approx(before)


def test_04_recursion_through_both_interfaces(world):
    (logic,) = world.execute_prismalog(
        """
        downline(X, Y) :- refers(X, Y).
        downline(X, Z) :- refers(X, Y), downline(Y, Z).
        ? downline(X, Y).
        """
    )
    assert logic.prismalog_stats["compiled_to_algebra"] is True
    sql_rows = world.query("SELECT sponsor, recruit FROM CLOSURE(refers)")
    assert sorted(logic.rows) == sorted(sql_rows)
    assert len(sql_rows) > len(world.query("SELECT * FROM refers"))


def test_05_replicated_reads_and_writes(world):
    info = world.catalog.table("customer")
    assert all(fragment.replicas for fragment in info.fragments)
    world.execute("UPDATE customer SET city = 'ley' WHERE id = 5")
    fragment = info.fragments[info.scheme.fragment_of((5, "", ""))]
    for _node, ofm_name in fragment.all_copies():
        ofm = world.gdh.fragment_ofms[ofm_name]
        row = next(r for r in ofm.table.rows() if r[0] == 5)
        assert row[2] == "ley"


def test_06_crash_and_recovery_preserve_committed_state(world):
    orders_before = world.execute("SELECT SUM(amount) FROM orders").scalar()
    customers_before = world.table_row_count("customer")
    world.checkpoint()

    # Committed after the checkpoint: must survive via the WAL.
    world.execute("INSERT INTO customer VALUES (1000, 'late', 'ams')")
    # In-flight at crash time: must vanish.
    doomed = world.session()
    doomed.begin()
    doomed.execute("DELETE FROM orders")

    world.crash()
    recovery = world.restart()
    assert recovery.fragments_recovered == 6 * 2 + 6 + 3  # customer copies + orders + refers

    assert world.execute("SELECT SUM(amount) FROM orders").scalar() == pytest.approx(
        orders_before
    )
    assert world.table_row_count("customer") == customers_before + 1
    assert world.query("SELECT name FROM customer WHERE id = 1000") == [("late",)]


def test_07_post_recovery_everything_still_works(world):
    result = world.execute(
        "SELECT city, COUNT(*) FROM customer GROUP BY city ORDER BY 2 DESC, city"
    )
    assert sum(row[1] for row in result.rows) == world.table_row_count("customer")
    (logic,) = world.execute_prismalog(
        "big_spender(C) :- orders(O, C, A), A > 94.0. ? big_spender(X)."
    )
    sql = world.query("SELECT DISTINCT cust FROM orders WHERE amount > 94.0")
    assert sorted(logic.rows) == sorted(sql)
    fragments = world.execute("SHOW FRAGMENTS customer")
    assert len(fragments.rows) == 12  # 6 fragments x 2 copies
