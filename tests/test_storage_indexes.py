"""Tests for hash and ordered indexes."""

import pytest

from repro.errors import StorageError
from repro.storage.indexes import DuplicateKeyError, HashIndex, OrderedIndex


class TestHashIndex:
    def test_insert_lookup_delete(self):
        index = HashIndex("i", [0])
        index.insert(10, ("a", 1))
        index.insert(11, ("a", 2))
        index.insert(12, ("b", 3))
        assert sorted(index.lookup(("a",))) == [10, 11]
        index.delete(10, ("a", 1))
        assert index.lookup(("a",)) == [11]
        assert len(index) == 2

    def test_composite_key(self):
        index = HashIndex("i", [0, 2])
        index.insert(1, ("x", "ignored", 5))
        assert index.lookup(("x", 5)) == [1]
        assert index.lookup(("x", 6)) == []

    def test_unique_enforced(self):
        index = HashIndex("i", [0], unique=True)
        index.insert(1, ("k",))
        with pytest.raises(DuplicateKeyError):
            index.insert(2, ("k",))

    def test_delete_absent_is_noop(self):
        index = HashIndex("i", [0])
        index.delete(1, ("nope",))
        index.insert(1, ("a",))
        index.delete(99, ("a",))
        assert index.lookup(("a",)) == [1]

    def test_empty_key_columns_rejected(self):
        with pytest.raises(StorageError):
            HashIndex("i", [])

    def test_keys_iteration(self):
        index = HashIndex("i", [0])
        index.insert(1, ("a",))
        index.insert(2, ("b",))
        assert sorted(index.keys()) == [("a",), ("b",)]


class TestOrderedIndex:
    def make_index(self):
        index = OrderedIndex("i", [0])
        for rid, value in enumerate([30, 10, 20, 20, 40]):
            index.insert(rid, (value,))
        return index

    def test_point_lookup(self):
        index = self.make_index()
        assert sorted(index.lookup((20,))) == [2, 3]
        assert index.lookup((99,)) == []

    def test_range_inclusive(self):
        index = self.make_index()
        rids = index.range((10,), (30,))
        values = sorted(rids)
        assert values == [0, 1, 2, 3]

    def test_range_exclusive_bounds(self):
        index = self.make_index()
        assert sorted(index.range((10,), (30,), include_low=False, include_high=False)) == [2, 3]

    def test_open_ended_ranges(self):
        index = self.make_index()
        assert sorted(index.range(low=(30,))) == [0, 4]
        assert sorted(index.range(high=(10,))) == [1]
        assert len(index.range()) == 5

    def test_min_max(self):
        index = self.make_index()
        assert index.min_key() == (10,)
        assert index.max_key() == (40,)
        assert OrderedIndex("e", [0]).min_key() is None

    def test_delete_specific_rid_among_duplicates(self):
        index = self.make_index()
        index.delete(2, (20,))
        assert index.lookup((20,)) == [3]

    def test_unique_enforced(self):
        index = OrderedIndex("i", [0], unique=True)
        index.insert(1, (5,))
        with pytest.raises(DuplicateKeyError):
            index.insert(2, (5,))
        index.insert(3, (6,))

    def test_null_keys_rejected(self):
        index = OrderedIndex("i", [0])
        with pytest.raises(StorageError):
            index.insert(1, (None,))

    def test_ordering_is_by_key_not_rid(self):
        index = OrderedIndex("i", [0])
        index.insert(100, (1,))
        index.insert(1, (2,))
        assert index.range() == [100, 1]
