"""Message-ownership sanitizer: mutate-after-send is caught, clean
traffic is not, and the env-var switch works."""

import dataclasses

import pytest

from repro.errors import MessageOwnershipError
from repro.machine.config import MachineConfig
from repro.pool import PoolProcess, PoolRuntime
from repro.pool.sanitizer import first_divergence, snapshot


class Recorder(PoolProcess):
    def __init__(self, runtime, name, node_id):
        super().__init__(runtime, name, node_id)
        self.received = []

    def handle(self, sender, payload):
        self.received.append(payload)


def _runtime(**kwargs):
    return PoolRuntime(MachineConfig(n_nodes=4), **kwargs)


# -- snapshot / diff unit behaviour ------------------------------------------


def test_snapshot_unchanged_payloads_have_no_divergence():
    payloads = [
        42,
        "hello",
        None,
        (1, 2, ("a", "b")),
        [1, [2, 3]],
        {"k": [1, 2], "j": {"x": 1}},
        {1, 2, 3},
    ]
    for payload in payloads:
        assert first_divergence(snapshot(payload), payload) is None


def test_diff_names_the_mutated_path_in_nested_containers():
    payload = {"rows": [[1, 2], [3, 4]], "tag": "q1"}
    fingerprint = snapshot(payload)
    payload["rows"][1][0] = 99
    assert first_divergence(fingerprint, payload) == "payload['rows'][1][0]"


def test_diff_sees_added_and_removed_keys():
    payload = {"a": 1}
    fingerprint = snapshot(payload)
    payload["b"] = 2
    assert first_divergence(fingerprint, payload) == "payload"


def test_diff_walks_object_attributes():
    @dataclasses.dataclass
    class Row:
        key: int
        balance: float

    payload = {"row": Row(7, 100.0)}
    fingerprint = snapshot(payload)
    payload["row"].balance = 90.0
    assert first_divergence(fingerprint, payload) == "payload['row'].balance"


def test_snapshot_handles_cycles():
    payload = []
    payload.append(payload)
    fingerprint = snapshot(payload)
    assert first_divergence(fingerprint, payload) is None


# -- runtime integration ------------------------------------------------------


def test_sanitizer_off_by_default_lets_mutation_slide(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    runtime = _runtime()
    assert runtime.sanitize is False
    recorder = runtime.spawn(Recorder)
    payload = {"n": 1}
    runtime.post(None, recorder, payload)
    payload["n"] = 2  # prismalint: disable=PL104 -- intentional violation: proves the sanitizer is off by default
    runtime.run()
    assert recorder.received == [{"n": 2}]


def test_sanitizer_catches_mutate_after_send():
    runtime = _runtime(sanitize=True)
    sender = runtime.spawn(Recorder, name="alice")
    receiver = runtime.spawn(Recorder, name="bob")
    payload = {"rows": [1, 2, 3]}
    runtime.post(sender, receiver, payload)
    payload["rows"].append(4)  # prismalint: disable=PL104 -- intentional violation: the runtime sanitizer must catch this
    with pytest.raises(MessageOwnershipError) as excinfo:
        runtime.run()
    message = str(excinfo.value)
    assert "alice" in message
    assert "bob" in message
    assert "payload['rows']" in message


def test_sanitizer_passes_clean_traffic():
    runtime = _runtime(sanitize=True)
    recorder = runtime.spawn(Recorder)
    for n in range(5):
        runtime.post(None, recorder, {"n": n})
    runtime.run()
    assert [p["n"] for p in recorder.received] == list(range(5))


def test_env_var_enables_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert _runtime().sanitize is True
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert _runtime().sanitize is False
    monkeypatch.setenv("REPRO_SANITIZE", "off")
    assert _runtime().sanitize is False
    monkeypatch.delenv("REPRO_SANITIZE")
    assert _runtime().sanitize is False
    # explicit argument wins over the environment
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert _runtime(sanitize=False).sanitize is False


def test_external_sender_named_in_diagnostic():
    runtime = _runtime(sanitize=True)
    recorder = runtime.spawn(Recorder, name="sink")
    payload = [1, 2]
    runtime.post(None, recorder, payload)
    payload[0] = 9  # prismalint: disable=PL104 -- intentional violation: the runtime sanitizer must catch this
    with pytest.raises(MessageOwnershipError, match="<external>"):
        runtime.run()
