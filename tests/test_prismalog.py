"""Tests for PRISMAlog: parser, safety analysis, translation, engine."""

import pytest

from repro.errors import ParseError, PrismalogError
from repro.prismalog import (
    PrismalogEngine,
    analyze_program,
    detect_transitive_closure,
    parse_program,
    parse_query,
)
from repro.prismalog.ast import Atom, Const, Var
from repro.storage import Column, DataType, Schema


def any_schema(width):
    return Schema([Column(f"c{i}", DataType.ANY) for i in range(width)])


class TestParser:
    def test_facts_rules_queries(self):
        program = parse_program(
            """
            % a genealogy
            parent(jan, piet).
            parent(piet, kees).
            ancestor(X, Y) :- parent(X, Y).
            ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
            ? ancestor(jan, X).
            """
        )
        assert len(program.facts()) == 2
        assert len(program.proper_rules()) == 2
        assert len(program.queries) == 1

    def test_constants_and_numbers(self):
        program = parse_program('p(foo, 3, -2, 1.5, "hello world").')
        terms = program.rules[0].head.terms
        assert terms == (
            Const("foo"), Const(3), Const(-2), Const(1.5), Const("hello world")
        )

    def test_variables_uppercase_or_underscore(self):
        program = parse_program("q(a). p(X) :- q(X), q(_ignored).")
        rule = program.proper_rules()[0]
        assert rule.head.terms == (Var("X"),)

    def test_builtins(self):
        program = parse_program("q(1). p(X) :- q(X), X > 0, X <> 2.")
        builtins = program.proper_rules()[0].body_builtins()
        assert [b.op for b in builtins] == [">", "<>"]

    def test_non_ground_fact_rejected(self):
        with pytest.raises(ParseError):
            parse_program("p(X).")

    def test_comment_and_whitespace(self):
        program = parse_program("% nothing\n  p(1).  % trailing\n")
        assert len(program.rules) == 1

    def test_parse_query_convenience(self):
        query = parse_query("ancestor(jan, X)")
        assert query.atom.predicate == "ancestor"

    def test_query_syntax_variants(self):
        assert parse_program("q(1). ?- q(X).").queries
        assert parse_program("q(1). ? q(X).").queries

    def test_errors_carry_position(self):
        with pytest.raises(ParseError) as info:
            parse_program("p(1) :- ,")
        assert "line" in str(info.value)


class TestAnalysis:
    def test_arity_consistency(self):
        with pytest.raises(PrismalogError):
            analyze_program(parse_program("p(1). p(1, 2)."))

    def test_unsafe_head_variable(self):
        with pytest.raises(PrismalogError) as info:
            analyze_program(parse_program("q(1). p(X, Y) :- q(X)."))
        assert "unsafe" in str(info.value)

    def test_unsafe_builtin_variable(self):
        with pytest.raises(PrismalogError):
            analyze_program(parse_program("q(1). p(X) :- q(X), Y > 3."))

    def test_rule_with_only_builtins_rejected(self):
        with pytest.raises(PrismalogError):
            analyze_program(parse_program("q(1). p(1) :- 1 > 0."))

    def test_edb_cannot_be_redefined(self):
        schemas = {"base": any_schema(1)}
        with pytest.raises(PrismalogError):
            analyze_program(parse_program("base(1)."), schemas)

    def test_components_in_dependency_order(self):
        program = parse_program(
            """
            a(1).
            b(X) :- a(X).
            c(X) :- b(X).
            """
        )
        analysis = analyze_program(program)
        order = [component[0] for component in analysis.components]
        assert order.index("a") < order.index("b") < order.index("c")

    def test_recursion_detected(self):
        program = parse_program(
            "e(1, 2). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z)."
        )
        analysis = analyze_program(program)
        assert "t" in analysis.recursive
        assert "e" not in analysis.recursive

    def test_mutual_recursion_single_component(self):
        program = parse_program(
            """
            s(0).
            even(X) :- s(X).
            odd(X) :- even(X).
            even(X) :- odd(X).
            """
        )
        analysis = analyze_program(program)
        assert ["even", "odd"] in [sorted(c) for c in analysis.components]


class TestClosureDetection:
    def detect(self, text):
        program = parse_program(text)
        analysis = analyze_program(program)
        return detect_transitive_closure(
            "t", analysis.predicates["t"], analysis.predicates
        )

    def test_right_linear_detected(self):
        plan = self.detect(
            "e(1,2). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z)."
        )
        assert plan is not None

    def test_left_linear_detected(self):
        plan = self.detect(
            "e(1,2). t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z)."
        )
        assert plan is not None

    def test_nonlinear_not_detected(self):
        plan = self.detect(
            "e(1,2). t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), t(Y, Z)."
        )
        assert plan is None

    def test_wrong_variable_pattern_not_detected(self):
        plan = self.detect(
            "e(1,2). t(X, Y) :- e(X, Y). t(X, Z) :- e(Y, X), t(Y, Z)."
        )
        assert plan is None


class TestEngine:
    def test_ancestor_answers(self):
        engine = PrismalogEngine()
        results = engine.consult(
            """
            parent(jan, piet). parent(piet, kees). parent(kees, anna).
            ancestor(X, Y) :- parent(X, Y).
            ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
            ? ancestor(jan, X).
            ? ancestor(X, anna).
            """
        )
        assert [row[0] for row in results[0].rows] == ["anna", "kees", "piet"]
        assert [row[0] for row in results[1].rows] == ["jan", "kees", "piet"]

    def test_ground_query_truth(self):
        engine = PrismalogEngine()
        yes, no = engine.consult(
            """
            parent(a, b).
            ? parent(a, b).
            ? parent(b, a).
            """
        )
        assert yes.is_true
        assert not no.is_true

    def test_repeated_variable_in_query(self):
        engine = PrismalogEngine()
        (result,) = engine.consult("e(1, 1). e(1, 2). ? e(X, X).")
        assert result.rows == [(1,)]

    def test_builtins_filter(self):
        engine = PrismalogEngine()
        (result,) = engine.consult(
            "n(1). n(5). n(9). big(X) :- n(X), X > 3. ? big(X)."
        )
        assert result.rows == [(5,), (9,)]

    def test_edb_relations(self):
        engine = PrismalogEngine(
            edb_tables={"parent": [("a", "b"), ("b", "c")]},
            edb_schemas={"parent": any_schema(2)},
        )
        (result,) = engine.consult(
            "gp(X, Z) :- parent(X, Y), parent(Y, Z). ? gp(X, Z)."
        )
        assert result.rows == [("a", "c")]

    def test_closure_operator_used_and_ablatable(self):
        text = (
            "e(1, 2). e(2, 3). tc(X, Y) :- e(X, Y)."
            " tc(X, Z) :- e(X, Y), tc(Y, Z). ? tc(1, X)."
        )
        fast = PrismalogEngine()
        (result,) = fast.consult(text)
        assert fast.stats.closure_operator_hits == ["tc"]
        slow = PrismalogEngine(use_closure_operator=False)
        (result2,) = slow.consult(text)
        assert slow.stats.closure_operator_hits == []
        assert result.rows == result2.rows

    def test_mutual_recursion(self):
        engine = PrismalogEngine()
        even, odd = engine.consult(
            """
            succ(0, 1). succ(1, 2). succ(2, 3). succ(3, 4).
            even(0).
            odd(Y) :- even(X), succ(X, Y).
            even(Y) :- odd(X), succ(X, Y).
            ? even(X).
            ? odd(X).
            """
        )
        assert even.rows == [(0,), (2,), (4,)]
        assert odd.rows == [(1,), (3,)]

    def test_nonlinear_recursion(self):
        engine = PrismalogEngine()
        (result,) = engine.consult(
            """
            e(1, 2). e(2, 3). e(3, 4).
            t(X, Y) :- e(X, Y).
            t(X, Z) :- t(X, Y), t(Y, Z).
            ? t(1, X).
            """
        )
        assert result.rows == [(2,), (3,), (4,)]

    def test_same_generation(self):
        engine = PrismalogEngine()
        (result,) = engine.consult(
            """
            up(a, p1). up(b, p1). up(c, p2). up(d, p2).
            flat(p1, p2).
            down(p2, x). down(p2, y).
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, A), sg(A, B), down(B, Y).
            ? sg(X, Y).
            """
        )
        assert ("a", "x") in result.rows
        assert ("b", "y") in result.rows
        assert ("p1", "p2") in result.rows

    def test_head_constants(self):
        engine = PrismalogEngine()
        (result,) = engine.consult(
            "n(1). n(2). tagged(fixed, X) :- n(X). ? tagged(Y, X)."
        )
        assert result.rows == [("fixed", 1), ("fixed", 2)]

    def test_ask_after_consult(self):
        engine = PrismalogEngine()
        engine.consult("p(1). p(2). q(X) :- p(X), X > 1.")
        result = engine.ask("q(X)")
        assert result.rows == [(2,)]

    def test_unknown_predicate_in_query(self):
        engine = PrismalogEngine()
        with pytest.raises(PrismalogError):
            engine.consult("? nothing(X).")

    def test_query_arity_mismatch(self):
        engine = PrismalogEngine()
        with pytest.raises(PrismalogError):
            engine.consult("p(1). ? p(X, Y).")

    def test_fixpoint_iterations_reported(self):
        engine = PrismalogEngine(use_closure_operator=False)
        chain = " ".join(f"e({i}, {i + 1})." for i in range(6))
        engine.consult(
            chain + " t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z)."
        )
        assert engine.stats.fixpoint_iterations["t"] == 6


class TestWholeProgramCompilation:
    """Programs compile to pure algebra when recursion fits the closure
    operator; general recursion falls back (compile returns None)."""

    def compile(self, text, schemas=None):
        from repro.prismalog.compile import compile_program

        return compile_program(parse_program(text), schemas or {})

    def test_tc_program_compiles(self):
        compiled = self.compile(
            "e(1, 2). e(2, 3)."
            " tc(X, Y) :- e(X, Y). tc(X, Z) :- e(X, Y), tc(Y, Z)."
            " ? tc(1, X)."
        )
        assert compiled is not None
        assert compiled.closure_predicates == ["tc"]
        assert len(compiled.query_plans) == 1

    def test_mutual_recursion_does_not_compile(self):
        compiled = self.compile(
            "s(0, 1). even(0). odd(Y) :- even(X), s(X, Y)."
            " even(Y) :- odd(X), s(X, Y). ? even(X)."
        )
        assert compiled is None

    def test_nonlinear_recursion_does_not_compile(self):
        compiled = self.compile(
            "e(1, 2). t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), t(Y, Z). ? t(1, X)."
        )
        assert compiled is None

    def test_compiled_plans_evaluate_correctly(self):
        from repro.algebra.local_exec import LocalExecutor

        compiled = self.compile(
            """
            p(a, b). p(b, c). p(b, d).
            sib(X, Y) :- p(Z, X), p(Z, Y), X <> Y.
            ? sib(X, Y).
            """
        )
        assert compiled is not None
        _query, plan = compiled.query_plans[0]
        rows = LocalExecutor({}).run(plan)
        assert sorted(rows) == [("c", "d"), ("d", "c")]

    def test_multi_rule_predicate_unions_with_set_semantics(self):
        from repro.algebra.local_exec import LocalExecutor

        compiled = self.compile(
            """
            a(1). a(2).
            b(2). b(3).
            u(X) :- a(X).
            u(X) :- b(X).
            ? u(X).
            """
        )
        _query, plan = compiled.query_plans[0]
        rows = LocalExecutor({}).run(plan)
        assert sorted(rows) == [(1,), (2,), (3,)]

    def test_distributed_execution_matches_engine(self):
        from repro import MachineConfig, PrismaDB

        program = (
            "anc(X, Y) :- par(X, Y)."
            " anc(X, Z) :- par(X, Y), anc(Y, Z)."
            " ? anc(X, Y)."
        )
        db = PrismaDB(MachineConfig(n_nodes=8, disk_nodes=(0,)))
        db.execute("CREATE TABLE par (p STRING, c STRING) FRAGMENTED BY HASH(p) INTO 3")
        db.execute(
            "INSERT INTO par VALUES ('a','b'),('b','c'),('c','d'),('a','e')"
        )
        (result,) = db.execute_prismalog(program)
        assert result.prismalog_stats["compiled_to_algebra"] is True
        engine = PrismalogEngine(
            edb_tables={"par": [("a","b"),("b","c"),("c","d"),("a","e")]},
            edb_schemas={"par": any_schema(2)},
        )
        (expected,) = engine.consult(program)
        assert sorted(result.rows) == sorted(expected.rows)

    def test_fallback_marks_uncompiled(self):
        from repro import MachineConfig, PrismaDB

        db = PrismaDB(MachineConfig(n_nodes=4, disk_nodes=(0,)))
        (result,) = db.execute_prismalog(
            "s(0, 1). even(0). odd(Y) :- even(X), s(X, Y)."
            " even(Y) :- odd(X), s(X, Y). ? odd(X)."
        )
        assert result.prismalog_stats["compiled_to_algebra"] is False
        assert result.rows == [(1,)]
