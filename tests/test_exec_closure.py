"""Tests for the transitive-closure operator and fixpoint driver (E6)."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.exec.closure import (
    naive_closure,
    reachable_from,
    seminaive_closure,
    seminaive_fixpoint,
    smart_closure,
)
from repro.exec.operators import WorkMeter

ALGORITHMS = [naive_closure, seminaive_closure, smart_closure]


def chain(n):
    return [(i, i + 1) for i in range(n)]


def expected_closure(edges):
    graph = nx.DiGraph(edges)
    return sorted(nx.transitive_closure(graph).edges())


class TestClosureCorrectness:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_chain(self, algorithm):
        result = algorithm(chain(8), WorkMeter())
        assert result.rows == expected_closure(chain(8))

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_cycle(self, algorithm):
        edges = [(0, 1), (1, 2), (2, 0)]
        result = algorithm(edges, WorkMeter())
        assert result.rows == sorted((a, b) for a in range(3) for b in range(3))

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_empty(self, algorithm):
        assert algorithm([], WorkMeter()).rows == []

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_dag_with_shared_substructure(self, algorithm):
        edges = [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]
        assert algorithm(edges, WorkMeter()).rows == expected_closure(edges)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_duplicate_edges_tolerated(self, algorithm):
        edges = [(0, 1), (0, 1), (1, 2)]
        assert algorithm(edges, WorkMeter()).rows == [(0, 1), (0, 2), (1, 2)]

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_string_nodes(self, algorithm):
        edges = [("a", "b"), ("b", "c")]
        assert algorithm(edges, WorkMeter()).rows == [
            ("a", "b"), ("a", "c"), ("b", "c"),
        ]


class TestIterationCounts:
    def test_smart_uses_logarithmically_fewer_rounds(self):
        edges = chain(64)
        semi = seminaive_closure(edges, WorkMeter())
        smart = smart_closure(edges, WorkMeter())
        assert semi.iterations >= 64
        assert smart.iterations <= 8  # ~log2(64) + 1

    def test_seminaive_does_less_work_than_naive(self):
        edges = chain(48)
        naive_meter, semi_meter = WorkMeter(), WorkMeter()
        naive_closure(edges, naive_meter)
        seminaive_closure(edges, semi_meter)
        assert semi_meter.tuples < naive_meter.tuples / 2


class TestReachableFrom:
    def test_single_source(self):
        edges = [(0, 1), (1, 2), (3, 4)]
        result = reachable_from(edges, [0], WorkMeter())
        assert result.rows == [1, 2]

    def test_multiple_sources(self):
        edges = [(0, 1), (2, 3)]
        assert reachable_from(edges, [0, 2], WorkMeter()).rows == [1, 3]

    def test_cycle_terminates(self):
        edges = [(0, 1), (1, 0)]
        assert reachable_from(edges, [0], WorkMeter()).rows == [0, 1]

    def test_matches_full_closure_selection(self):
        edges = [(0, 1), (0, 2), (1, 3), (2, 4), (4, 0)]
        full = seminaive_closure(edges, WorkMeter())
        from_zero = sorted(b for a, b in full.rows if a == 0)
        assert reachable_from(edges, [0], WorkMeter()).rows == from_zero


class TestGenericFixpoint:
    def test_same_generation_program(self):
        """sg(X,Y) :- flat(X,Y).  sg(X,Y) :- up(X,A), sg(A,B), down(B,Y)."""
        up = {(1, 3), (2, 3)}
        flat = {(3, 3)}
        down = {(3, 4), (3, 5)}

        def step(total, delta):
            for a, b in delta:
                for x, a2 in up:  # prismalint: disable=PL102 -- feeds a set-union fixpoint; asserted result is order-free
                    if a2 == a:
                        for b2, y in down:  # prismalint: disable=PL102 -- feeds a set-union fixpoint; asserted result is order-free
                            if b2 == b:
                                yield (x, y)

        result = seminaive_fixpoint(flat, step, WorkMeter())
        assert set(result.rows) == {(3, 3), (1, 4), (1, 5), (2, 4), (2, 5)}

    def test_divergent_step_hits_iteration_bound(self):
        from repro.errors import ExecutionError

        def runaway(total, delta):
            return [(max(r[0] for r in delta) + 1,)]

        with pytest.raises(ExecutionError):
            seminaive_fixpoint([(0,)], runaway, WorkMeter(), max_iterations=50)

    def test_empty_initial_set(self):
        result = seminaive_fixpoint([], lambda t, d: [], WorkMeter())
        assert result.rows == []
        assert result.iterations == 0


# ---------------------------------------------------------------------------
# Property: all three algorithms agree with networkx on random graphs.
# ---------------------------------------------------------------------------

_edges = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(lambda e: e[0] != e[1]),
    max_size=30,
)


@given(edges=_edges)
@settings(max_examples=80, deadline=None)
def test_property_closures_agree_with_networkx(edges):
    expected = expected_closure(edges)
    for algorithm in ALGORITHMS:
        assert algorithm(edges, WorkMeter()).rows == expected
