"""Tests for One-Fragment Managers: profiles, WAL, undo, recovery."""

import pytest

from repro.errors import InvalidTransactionState
from repro.machine import Machine, MachineConfig
from repro.exec.expressions import Comparison, col, eq, lit
from repro.ofm import (
    CommitRecord,
    InsertRecord,
    OFMProfile,
    OneFragmentManager,
    PrepareRecord,
    WriteAheadLog,
)
from repro.pool import PoolRuntime
from repro.storage import DataType, Schema

SCHEMA = Schema.of(id=DataType.INT, name=DataType.STRING)


@pytest.fixture
def runtime():
    config = MachineConfig(n_nodes=4, disk_nodes=(0,))
    return PoolRuntime(Machine(config))


@pytest.fixture
def ofm(runtime):
    return runtime.spawn(
        OneFragmentManager, name="frag.0", node=1, schema=SCHEMA,
        profile=OFMProfile.FULL,
    )


def always_commit(txn_id: int) -> str:
    return "commit"


def always_abort(txn_id: int) -> str:
    return "abort"


class TestWal:
    def test_records_survive_roundtrip(self, runtime):
        wal = WriteAheadLog(runtime.machine, 1, "t.0")
        wal.append(InsertRecord(1, 0, (1, "a")))
        wal.append(PrepareRecord(1))
        wal.append(CommitRecord(1))
        cost = wal.force()
        assert cost > 0
        records, _ = wal.read_records()
        assert records == [
            InsertRecord(1, 0, (1, "a")), PrepareRecord(1), CommitRecord(1),
        ]

    def test_unforced_records_are_volatile(self, runtime):
        wal = WriteAheadLog(runtime.machine, 1, "t.1")
        wal.append(InsertRecord(1, 0, (1, "a")))
        assert wal.pending == 1
        records, _ = wal.read_records()
        assert records == []

    def test_multiple_chunks_in_order(self, runtime):
        wal = WriteAheadLog(runtime.machine, 1, "t.2")
        for i in range(12):
            wal.append(InsertRecord(i, i, (i, "x")))
            wal.force()
        records, _ = wal.read_records()
        assert [record.rid for record in records] == list(range(12))

    def test_checkpoint_truncates(self, runtime):
        wal = WriteAheadLog(runtime.machine, 1, "t.3")
        wal.append(InsertRecord(1, 0, (1, "a")))
        wal.force()
        wal.checkpoint([(0, (1, "a"))])
        records, _ = wal.read_records()
        assert records == []
        snapshot, _ = wal.read_snapshot()
        assert snapshot == [(0, (1, "a"))]

    def test_wipe_removes_everything(self, runtime):
        wal = WriteAheadLog(runtime.machine, 1, "t.4")
        wal.append(InsertRecord(1, 0, (1, "a")))
        wal.force()
        wal.checkpoint([])
        wal.wipe()
        assert wal.durable_bytes() == 0

    def test_chunk_numbering_resumes_after_restart(self, runtime):
        wal = WriteAheadLog(runtime.machine, 1, "t.5")
        wal.append(InsertRecord(1, 0, (1, "a")))
        wal.force()
        # A new WAL object over the same name continues, not overwrites.
        wal2 = WriteAheadLog(runtime.machine, 1, "t.5")
        wal2.append(InsertRecord(2, 1, (2, "b")))
        wal2.force()
        records, _ = wal2.read_records()
        assert len(records) == 2


class TestTransactionalUpdates:
    def test_insert_visible_and_undoable(self, ofm):
        ofm.txn_insert(1, (1, "a"))
        assert len(ofm.table) == 1
        ofm.abort(1)
        assert len(ofm.table) == 0

    def test_delete_undone_restores_row_and_rid(self, ofm):
        rid = ofm.txn_insert(1, (1, "a"))
        ofm.commit(1)
        ofm.txn_delete_where(2, eq(col(0), lit(1)))
        assert len(ofm.table) == 0
        ofm.abort(2)
        assert ofm.table.get(rid) == (1, "a")

    def test_update_undone(self, ofm):
        ofm.txn_insert(1, (1, "a"))
        ofm.commit(1)
        pairs = ofm.txn_update_where(2, None, lambda row: (row[0], "changed"))
        assert pairs == [((1, "a"), (1, "changed"))]
        ofm.abort(2)
        assert list(ofm.table.rows()) == [(1, "a")]

    def test_abort_order_is_lifo(self, ofm):
        ofm.txn_insert(1, (1, "a"))
        ofm.txn_update_where(1, None, lambda row: (row[0], "b"))
        ofm.txn_delete_where(1, None)
        ofm.abort(1)
        assert len(ofm.table) == 0  # insert was also undone

    def test_commit_clears_undo(self, ofm):
        ofm.txn_insert(1, (1, "a"))
        ofm.commit(1)
        assert not ofm.has_transaction_state(1)
        ofm.abort(1)  # aborting a finished txn is a no-op undo
        assert len(ofm.table) == 1

    def test_prepare_is_idempotent(self, ofm):
        ofm.txn_insert(1, (1, "a"))
        assert ofm.prepare(1)
        assert ofm.prepare(1)
        assert ofm.wal.forces == 1

    def test_charge_advances_clock(self, ofm):
        before = ofm.ready_at
        ofm.txn_insert(1, (1, "a"))
        ofm.prepare(1)  # forces WAL -> disk time
        assert ofm.ready_at > before


class TestQueryProcessing:
    def test_run_subplan_over_fragment(self, ofm):
        ofm.bulk_load([(i, f"n{i}") for i in range(10)])
        from repro.algebra.plan import ScanNode, SelectNode

        plan = SelectNode(
            ScanNode("whatever", SCHEMA), Comparison(">", col(0), lit(6))
        )
        rows = ofm.run_subplan(plan)
        assert sorted(rows) == [(7, "n7"), (8, "n8"), (9, "n9")]

    def test_run_subplan_with_shipped_input(self, ofm):
        from repro.algebra.plan import ScanNode

        rows = ofm.run_subplan(
            ScanNode("__in", SCHEMA), extra_tables={"__in": [(42, "shipped")]}
        )
        assert rows == [(42, "shipped")]

    def test_cursor_and_markings_available(self, ofm):
        ofm.bulk_load([(i, "x") for i in range(4)])
        marking = ofm.markings.mark_where("evens", lambda row: row[0] % 2 == 0)
        cursor = ofm.open_cursor(marking="evens")
        assert [row[0] for _, row in cursor] == [0, 2]

    def test_create_index_both_methods(self, ofm):
        ofm.bulk_load([(i, "x") for i in range(4)])
        ofm.create_index("h", ["id"], unique=True, method="hash")
        ofm.create_index("o", ["name"], unique=False, method="btree")
        assert set(ofm.table.indexes) == {"h", "o"}


class TestCrashRecovery:
    def test_committed_work_survives(self, ofm):
        ofm.bulk_load([(1, "base")])
        ofm.txn_insert(5, (2, "committed"))
        ofm.prepare(5)
        ofm.commit(5)
        ofm.crash()
        assert len(ofm.table) == 0
        rows, cost = ofm.recover(always_commit)
        assert rows == 2
        assert cost > 0
        assert sorted(ofm.table.rows()) == [(1, "base"), (2, "committed")]

    def test_unprepared_transaction_lost(self, ofm):
        ofm.bulk_load([(1, "base")])
        ofm.txn_insert(5, (2, "dirty"))  # never prepared/forced
        ofm.crash()
        ofm.recover(always_commit)
        assert sorted(ofm.table.rows()) == [(1, "base")]

    def test_in_doubt_resolved_by_coordinator(self, ofm):
        ofm.bulk_load([(1, "base")])
        ofm.txn_insert(5, (2, "maybe"))
        ofm.prepare(5)  # durable but undecided locally
        ofm.crash()
        ofm.recover(always_abort)
        assert sorted(ofm.table.rows()) == [(1, "base")]
        ofm.crash()
        ofm.recover(always_commit)
        assert sorted(ofm.table.rows()) == [(1, "base"), (2, "maybe")]

    def test_updates_and_deletes_replayed(self, ofm):
        ofm.bulk_load([(1, "a"), (2, "b"), (3, "c")])
        ofm.txn_update_where(7, eq(col(0), lit(1)), lambda row: (row[0], "A"))
        ofm.txn_delete_where(7, eq(col(0), lit(3)))
        ofm.prepare(7)
        ofm.commit(7)
        ofm.crash()
        ofm.recover(always_commit)
        assert sorted(ofm.table.rows()) == [(1, "A"), (2, "b")]

    def test_recovery_time_scales_with_log(self, ofm, runtime):
        other = runtime.spawn(
            OneFragmentManager, name="frag.big", node=2, schema=SCHEMA,
            profile=OFMProfile.FULL,
        )
        ofm.bulk_load([(1, "x")])
        other.bulk_load([(1, "x")])
        for i in range(100):
            other.txn_insert(i + 10, (i + 10, "bulk"))
            other.prepare(i + 10)
            other.commit(i + 10)
        ofm.txn_insert(5, (2, "one"))
        ofm.prepare(5)
        ofm.commit(5)
        ofm.crash()
        other.crash()
        _, small_cost = ofm.recover(always_commit)
        _, big_cost = other.recover(always_commit)
        assert big_cost > small_cost

    def test_query_profile_has_no_recovery(self, runtime):
        transient = runtime.spawn(
            OneFragmentManager, name="tmp", node=1, schema=SCHEMA,
            profile=OFMProfile.QUERY,
        )
        assert transient.wal is None
        with pytest.raises(InvalidTransactionState):
            transient.recover(always_commit)

    def test_destroy_releases_memory_and_log(self, runtime, ofm):
        ofm.bulk_load([(1, "a")])
        node = runtime.machine.node(ofm.node_id)
        assert node.memory.used > 0
        ofm.destroy()
        assert node.memory.used == 0
        assert not ofm.alive
