"""Equivalence of the expression compiler and the interpreter.

The paper's generative approach (Section 2.5) only makes sense if the
compiled routines are *semantically identical* to interpretation; the
hypothesis test at the bottom enforces that over random expressions and
rows.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExpressionError
from repro.exec.compiler import (
    ExpressionCompilerCache,
    compile_key,
    compile_predicate,
    compile_projector,
    compile_scalar,
    guard_call,
)
from repro.exec.expressions import (
    Arithmetic,
    BoolOp,
    ColumnRef,
    Comparison,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    and_,
    col,
    eq,
    lit,
    or_,
)
from repro.exec.interpreter import evaluate, evaluate_predicate


class TestInterpreterSemantics:
    def test_null_comparisons_are_false(self):
        expr = Comparison(">", col(0), lit(5))
        assert evaluate(expr, (None,)) is False
        assert evaluate(eq(col(0), lit(None)), (5,)) is False

    def test_null_arithmetic_propagates(self):
        expr = Arithmetic("+", col(0), lit(1))
        assert evaluate(expr, (None,)) is None

    def test_function_on_null_is_null(self):
        assert evaluate(FunctionCall("abs", (col(0),)), (None,)) is None

    def test_is_null(self):
        assert evaluate(IsNull(col(0)), (None,)) is True
        assert evaluate(IsNull(col(0), negated=True), (None,)) is False

    def test_division_by_zero_raises(self):
        expr = Arithmetic("/", lit(1), col(0))
        with pytest.raises(ExpressionError):
            evaluate(expr, (0,))
        expr = FunctionCall("mod", (lit(5), col(0)))
        with pytest.raises(ExpressionError):
            evaluate(expr, (0,))

    def test_type_confusion_raises(self):
        with pytest.raises(ExpressionError):
            evaluate(Comparison("<", col(0), lit("x")), (1,))
        with pytest.raises(ExpressionError):
            evaluate(Arithmetic("+", col(0), lit("x")), (1,))

    def test_like_semantics(self):
        expr = Like(col(0), "a_c%")
        assert evaluate(expr, ("abcdef",)) is True
        assert evaluate(expr, ("abX",)) is False
        assert evaluate(expr, (None,)) is False
        assert evaluate(Like(col(0), "a%", negated=True), ("xyz",)) is True

    def test_like_is_anchored(self):
        assert evaluate(Like(col(0), "b"), ("abc",)) is False

    def test_in_list(self):
        expr = InList(col(0), (1, 2, 3))
        assert evaluate(expr, (2,)) is True
        assert evaluate(expr, (9,)) is False
        assert evaluate(expr, (None,)) is False

    def test_short_circuit_or_with_null(self):
        # TRUE OR (NULL comparison) must be TRUE.
        expr = or_(eq(col(0), lit(1)), Comparison(">", col(1), lit(5)))
        assert evaluate_predicate(expr, (1, None)) is True

    def test_functions(self):
        assert evaluate(FunctionCall("length", (lit("abcd"),)), ()) == 4
        assert evaluate(FunctionCall("upper", (lit("ab"),)), ()) == "AB"
        assert evaluate(FunctionCall("lower", (lit("AB"),)), ()) == "ab"
        assert evaluate(FunctionCall("mod", (lit(7), lit(3))), ()) == 1
        assert evaluate(FunctionCall("abs", (lit(-3),)), ()) == 3


class TestCompiledMatchesHandPicked:
    CASES = [
        (Comparison(">", col(0), lit(5)), [(6,), (5,), (None,)]),
        (eq(col(0), col(1)), [(1, 1), (1, 2), (None, None)]),
        (
            and_(Comparison(">=", col(0), lit(0)), Comparison("<", col(0), lit(10))),
            [(5,), (-1,), (10,), (None,)],
        ),
        (or_(IsNull(col(0)), eq(col(0), lit("x"))), [(None,), ("x",), ("y",)]),
        (Not(InList(col(0), (1, 2))), [(1,), (3,), (None,)]),
        (Like(col(0), "%@prisma.nl"), [("a@prisma.nl",), ("b@other",), (None,)]),
        (
            Comparison("<", Arithmetic("*", col(0), lit(2)), col(1)),
            [(2, 5), (3, 5), (None, 5), (2, None)],
        ),
        (eq(FunctionCall("mod", (col(0), lit(2))), lit(0)), [(4,), (5,), (None,)]),
    ]

    @pytest.mark.parametrize("expr,rows", CASES)
    def test_predicate_equivalence(self, expr, rows):
        compiled = compile_predicate(expr)
        for row in rows:
            assert bool(compiled(row)) == evaluate_predicate(expr, row), (
                expr.to_sql(),
                row,
            )

    def test_scalar_equivalence(self):
        expr = Arithmetic("+", Arithmetic("*", col(0), lit(3)), Negate(col(1)))
        compiled = compile_scalar(expr)
        for row in [(2, 5), (0, 0), (None, 1), (1, None)]:
            assert compiled(row) == evaluate(expr, row)

    def test_projector(self):
        projector = compile_projector([col(1), Arithmetic("+", col(0), lit(1)), lit("k")])
        assert projector((10, "a")) == ("a", 11, "k")

    def test_single_column_projector_returns_tuple(self):
        projector = compile_projector([col(0)])
        assert projector((7,)) == (7,)

    def test_compile_key(self):
        key = compile_key([2, 0])
        assert key(("a", "b", "c")) == ("c", "a")

    def test_guard_call_translates_runtime_faults(self):
        divider = compile_scalar(Arithmetic("/", lit(1), col(0)))
        with pytest.raises(ExpressionError):
            guard_call(divider, (0,))
        comparer = compile_predicate(Comparison("<", col(0), col(1)))
        with pytest.raises(ExpressionError):
            guard_call(comparer, (1, "x"))

    def test_generated_source_attached(self):
        fn = compile_predicate(eq(col(0), lit(1)))
        assert "def _compiled_predicate(row):" in fn.__prisma_source__


class TestCompilerCache:
    def test_cache_hits_on_equal_expressions(self):
        cache = ExpressionCompilerCache()
        a = cache.predicate(eq(col(0), lit(5)))
        b = cache.predicate(eq(col(0), lit(5)))
        assert a is b
        assert cache.compilations == 1
        assert cache.hits == 1

    def test_cache_distinguishes_different_expressions(self):
        cache = ExpressionCompilerCache()
        cache.predicate(eq(col(0), lit(5)))
        cache.predicate(eq(col(0), lit(6)))
        assert cache.compilations == 2

    def test_projector_cache(self):
        cache = ExpressionCompilerCache()
        exprs = (col(0), col(1))
        assert cache.projector(exprs) is cache.projector(exprs)


# ---------------------------------------------------------------------------
# Property: compiled == interpreted for random expressions and rows.
# ---------------------------------------------------------------------------

ROW_WIDTH = 4

_values = st.one_of(
    st.none(),
    st.integers(min_value=-50, max_value=50),
    st.floats(min_value=-50, max_value=50, allow_nan=False),
    st.text(alphabet="abc%_", max_size=4),
    st.booleans(),
)

_numeric_literal = st.one_of(
    st.integers(min_value=-20, max_value=20),
    st.floats(min_value=-20, max_value=20, allow_nan=False),
)

_columns = st.builds(ColumnRef, st.integers(min_value=0, max_value=ROW_WIDTH - 1))

_numeric_scalar = st.recursive(
    st.one_of(_columns, st.builds(Literal, _numeric_literal)),
    lambda children: st.builds(
        Arithmetic,
        st.sampled_from(["+", "-", "*"]),
        children,
        children,
    ),
    max_leaves=4,
)

_predicates = st.recursive(
    st.one_of(
        st.builds(
            Comparison,
            st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
            _numeric_scalar,
            _numeric_scalar,
        ),
        st.builds(IsNull, _columns, st.booleans()),
        st.builds(
            InList,
            _columns,
            st.tuples(_numeric_literal, _numeric_literal),
        ),
    ),
    lambda children: st.one_of(
        st.builds(lambda a, b: BoolOp("and", (a, b)), children, children),
        st.builds(lambda a, b: BoolOp("or", (a, b)), children, children),
        st.builds(Not, children),
    ),
    max_leaves=6,
)

_rows = st.tuples(*([_values] * ROW_WIDTH))


@given(expr=_predicates, row=_rows)
@settings(max_examples=300, deadline=None)
def test_property_compiled_equals_interpreted(expr, row):
    try:
        expected = evaluate_predicate(expr, row)
        expected_error = None
    except ExpressionError:
        expected = None
        expected_error = ExpressionError
    compiled = compile_predicate(expr)
    if expected_error is not None:
        with pytest.raises(ExpressionError):
            guard_call(compiled, row)
    else:
        assert bool(guard_call(compiled, row)) == expected


@given(expr=_numeric_scalar, row=_rows)
@settings(max_examples=200, deadline=None)
def test_property_scalar_compiled_equals_interpreted(expr, row):
    try:
        expected = evaluate(expr, row)
        failed = False
    except ExpressionError:
        failed = True
    compiled = compile_scalar(expr)
    if failed:
        with pytest.raises(ExpressionError):
            guard_call(compiled, row)
    else:
        result = guard_call(compiled, row)
        assert result == expected or (result != result and expected != expected)
