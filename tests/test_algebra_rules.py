"""Tests for the optimizer's rewrite-rule knowledge base.

Each rule is checked individually, and an end-to-end property asserts
that rule application never changes query results.
"""

import pytest

from repro.exec.expressions import (
    Arithmetic,
    Comparison,
    and_,
    col,
    eq,
    lit,
    or_,
)
from repro.exec.operators import JoinKind
from repro.algebra.local_exec import LocalExecutor
from repro.algebra.plan import (
    DistinctNode,
    JoinNode,
    ProjectNode,
    ScanNode,
    SelectNode,
    SetOpNode,
    SortNode,
    ValuesNode,
)
from repro.algebra.rules import apply_rules
from repro.storage import DataType, Schema

EMP = Schema.of(id=DataType.INT, dept=DataType.STRING, sal=DataType.FLOAT)
DEPT = Schema.of(dname=DataType.STRING, city=DataType.STRING)

TABLES = {
    "emp": [
        (1, "eng", 120.0), (2, "eng", 95.0), (3, "sales", 80.0),
        (4, "sales", 85.0), (5, "hr", 70.0),
    ],
    "dept": [("eng", "ams"), ("sales", "rtm"), ("hr", "utr")],
}


def emp():
    return ScanNode("emp", EMP)


def dept():
    return ScanNode("dept", DEPT)


def run(plan):
    return sorted(LocalExecutor(TABLES).run(plan), key=repr)


def rewrite(plan):
    return apply_rules(plan)


class TestSelectionRules:
    def test_merge_selects(self):
        plan = SelectNode(
            SelectNode(emp(), Comparison(">", col(2), lit(80.0))),
            eq(col(1), lit("eng")),
        )
        rewritten, fired = rewrite(plan)
        assert "merge_selects" in fired
        # Only one Select remains.
        selects = [n for n in rewritten.walk() if isinstance(n, SelectNode)]
        assert len(selects) == 1
        assert run(plan) == run(rewritten)

    def test_true_conjunct_dropped(self):
        plan = SelectNode(emp(), and_(lit(True), eq(col(1), lit("hr"))))
        rewritten, fired = rewrite(plan)
        assert "fold_constant_conjuncts" in fired
        assert run(rewritten) == run(plan)

    def test_false_predicate_empties_plan(self):
        plan = SelectNode(emp(), Comparison("=", lit(1), lit(2)))
        rewritten, fired = rewrite(plan)
        assert isinstance(rewritten, ValuesNode)
        assert rewritten.rows == ()

    def test_all_true_removes_select(self):
        plan = SelectNode(emp(), lit(True))
        rewritten, _ = rewrite(plan)
        assert isinstance(rewritten, ScanNode)

    def test_constant_folding_inside_predicate(self):
        plan = SelectNode(
            emp(), Comparison(">", col(2), Arithmetic("+", lit(40.0), lit(40.0)))
        )
        rewritten, fired = rewrite(plan)
        assert "constant_fold_expressions" in fired
        assert "80.0" in rewritten.label()
        assert run(plan) == run(rewritten)

    def test_select_on_values_folds(self):
        values = ValuesNode(Schema.of(a=DataType.INT), [(1,), (2,), (3,)])
        plan = SelectNode(values, Comparison(">", col(0), lit(1)))
        rewritten, fired = rewrite(plan)
        assert isinstance(rewritten, ValuesNode)
        assert rewritten.rows == ((2,), (3,))

    def test_push_select_below_project(self):
        project = ProjectNode(emp(), [col(1, "dept"), col(2, "sal")], ["dept", "sal"])
        plan = SelectNode(project, Comparison(">", col(1), lit(80.0)))
        rewritten, fired = rewrite(plan)
        assert "push_select_below_project" in fired
        assert isinstance(rewritten, ProjectNode)
        assert isinstance(rewritten.child, SelectNode)
        assert run(plan) == run(rewritten)

    def test_push_select_through_computed_projection(self):
        project = ProjectNode(
            emp(), [Arithmetic("*", col(2), lit(2))], ["double_sal"]
        )
        plan = SelectNode(project, Comparison(">", col(0), lit(170.0)))
        rewritten, _ = rewrite(plan)
        assert run(plan) == run(rewritten)

    def test_push_select_below_inner_join_both_sides(self):
        join = JoinNode(emp(), dept(), eq(col(1), col(3)))
        predicate = and_(
            Comparison(">", col(2), lit(80.0)),  # left only
            eq(col(4), lit("ams")),  # right only
        )
        plan = SelectNode(join, predicate)
        rewritten, fired = rewrite(plan)
        assert "push_select_below_join" in fired
        assert isinstance(rewritten, JoinNode)
        assert isinstance(rewritten.left, SelectNode)
        assert isinstance(rewritten.right, SelectNode)
        assert run(plan) == run(rewritten)

    def test_mixed_conjunct_joins_condition(self):
        join = JoinNode(emp(), dept(), None)  # cross product
        plan = SelectNode(join, eq(col(1), col(3)))
        rewritten, _ = rewrite(plan)
        assert isinstance(rewritten, JoinNode)
        assert rewritten.condition is not None
        assert run(plan) == run(rewritten)

    def test_left_outer_join_right_predicate_not_pushed(self):
        join = JoinNode(emp(), dept(), eq(col(1), col(3)), JoinKind.LEFT_OUTER)
        # Predicate on the right side of a LEFT OUTER must stay above.
        plan = SelectNode(join, eq(col(4), lit("ams")))
        rewritten, _ = rewrite(plan)
        assert run(plan) == run(rewritten)

    def test_left_outer_join_left_predicate_pushed(self):
        join = JoinNode(emp(), dept(), eq(col(1), col(3)), JoinKind.LEFT_OUTER)
        plan = SelectNode(join, Comparison(">", col(2), lit(80.0)))
        rewritten, _ = rewrite(plan)
        assert isinstance(rewritten, JoinNode)
        assert isinstance(rewritten.left, SelectNode)
        assert run(plan) == run(rewritten)

    def test_push_below_setop_distinct_sort(self):
        union = SetOpNode("union", ProjectNode(emp(), [col(1)], ["d"]),
                          ProjectNode(dept(), [col(0)], ["d"]))
        plan = SelectNode(DistinctNode(SortNode(union, [(0, False)])), eq(col(0), lit("eng")))
        rewritten, fired = rewrite(plan)
        assert run(plan) == run(rewritten)
        assert "push_select_below_sort" in fired or "push_select_below_distinct" in fired


class TestProjectionRules:
    def test_identity_project_removed(self):
        plan = ProjectNode(
            emp(), [col(i, n) for i, n in enumerate(EMP.names())], EMP.names()
        )
        rewritten, fired = rewrite(plan)
        assert isinstance(rewritten, ScanNode)
        assert "remove_identity_project" in fired

    def test_merge_projects(self):
        inner = ProjectNode(emp(), [col(2, "sal"), col(0, "id")], ["sal", "id"])
        outer = ProjectNode(inner, [Arithmetic("+", col(0), lit(1.0))], ["sal1"])
        rewritten, fired = rewrite(outer)
        assert "merge_projects" in fired
        projects = [n for n in rewritten.walk() if isinstance(n, ProjectNode)]
        assert len(projects) == 1
        assert run(outer) == run(rewritten)

    def test_project_on_values_folds(self):
        values = ValuesNode(Schema.of(a=DataType.INT), [(1,), (2,)])
        plan = ProjectNode(values, [Arithmetic("*", col(0), lit(10))], ["x"])
        rewritten, _ = rewrite(plan)
        assert isinstance(rewritten, ValuesNode)
        assert rewritten.rows == ((10,), (20,))

    def test_join_with_empty_side_becomes_empty(self):
        empty = ValuesNode(DEPT, [])
        plan = JoinNode(emp(), empty, eq(col(1), col(3)))
        rewritten, fired = rewrite(plan)
        assert isinstance(rewritten, ValuesNode)
        assert rewritten.rows == ()
        assert "join_with_empty_values" in fired


class TestRewriteSafety:
    """Rewrites must never change results."""

    PLANS = []

    @staticmethod
    def _plans():
        join = JoinNode(emp(), dept(), eq(col(1), col(3)))
        yield SelectNode(join, and_(
            Comparison(">=", col(2), lit(80.0)),
            or_(eq(col(4), lit("ams")), eq(col(4), lit("rtm"))),
            lit(True),
        ))
        yield SelectNode(
            ProjectNode(join, [col(0), col(4), col(2)], ["id", "city", "sal"]),
            Comparison("<", col(2), Arithmetic("+", lit(50.0), lit(45.0))),
        )
        yield DistinctNode(ProjectNode(
            SelectNode(emp(), Comparison("<>", col(1), lit("hr"))),
            [col(1)], ["dept"],
        ))
        yield SelectNode(
            SetOpNode(
                "except",
                ProjectNode(emp(), [col(1)], ["d"]),
                ValuesNode(Schema.of(d=DataType.STRING), [("hr",)]),
            ),
            eq(col(0), col(0)),
        )

    @pytest.mark.parametrize("plan", list(_plans.__func__()))
    def test_rewrite_preserves_results(self, plan):
        rewritten, _ = rewrite(plan)
        assert run(plan) == run(rewritten)
        # Idempotence: rewriting again changes nothing.
        again, fired = rewrite(rewritten)
        assert again.key() == rewritten.key()
