"""Tests for data types and schemas."""

import pytest

from repro.errors import StorageError
from repro.storage import Column, DataType, Schema, infer_type


class TestDataType:
    def test_coercion_accepts_matching_values(self):
        assert DataType.INT.coerce(5) == 5
        assert DataType.FLOAT.coerce(2) == 2.0
        assert isinstance(DataType.FLOAT.coerce(2), float)
        assert DataType.STRING.coerce("x") == "x"
        assert DataType.BOOL.coerce(True) is True

    def test_coercion_rejects_mismatches(self):
        with pytest.raises(StorageError):
            DataType.INT.coerce("5")
        with pytest.raises(StorageError):
            DataType.INT.coerce(True)  # bools are not ints here
        with pytest.raises(StorageError):
            DataType.BOOL.coerce(1)
        with pytest.raises(StorageError):
            DataType.STRING.coerce(5)
        with pytest.raises(StorageError):
            DataType.FLOAT.coerce("2.5")

    def test_none_passes_through(self):
        assert DataType.INT.coerce(None) is None

    def test_sizes(self):
        assert DataType.INT.size_of(7) == 4
        assert DataType.FLOAT.size_of(1.0) == 8
        assert DataType.BOOL.size_of(True) == 1
        assert DataType.STRING.size_of("abc") == 5
        assert DataType.STRING.size_of("") == 2
        assert DataType.INT.size_of(None) == 1

    def test_from_name_synonyms(self):
        assert DataType.from_name("INTEGER") is DataType.INT
        assert DataType.from_name("varchar") is DataType.STRING
        assert DataType.from_name(" Real ") is DataType.FLOAT
        with pytest.raises(StorageError):
            DataType.from_name("blob")

    def test_infer_type(self):
        assert infer_type(True) is DataType.BOOL
        assert infer_type(3) is DataType.INT
        assert infer_type(3.5) is DataType.FLOAT
        assert infer_type("s") is DataType.STRING
        with pytest.raises(StorageError):
            infer_type([1])


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(StorageError):
            Schema([Column("a", DataType.INT), Column("a", DataType.INT)])

    def test_empty_schema_rejected(self):
        with pytest.raises(StorageError):
            Schema([])

    def test_lookup(self):
        schema = Schema.of(a=DataType.INT, b=DataType.STRING)
        assert schema.index_of("b") == 1
        assert schema.has_column("a")
        assert not schema.has_column("z")
        with pytest.raises(StorageError):
            schema.index_of("z")

    def test_validate_row_coerces(self):
        schema = Schema.of(a=DataType.INT, b=DataType.FLOAT)
        assert schema.validate_row((1, 2)) == (1, 2.0)

    def test_validate_row_arity(self):
        schema = Schema.of(a=DataType.INT)
        with pytest.raises(StorageError):
            schema.validate_row((1, 2))

    def test_not_nullable_enforced(self):
        schema = Schema([Column("a", DataType.INT, nullable=False)])
        with pytest.raises(StorageError):
            schema.validate_row((None,))

    def test_row_bytes(self):
        schema = Schema.of(a=DataType.INT, b=DataType.STRING)
        assert schema.row_bytes((1, "xy")) == 4 + 4

    def test_project(self):
        schema = Schema.of(a=DataType.INT, b=DataType.STRING, c=DataType.FLOAT)
        projected = schema.project(["c", "a"])
        assert projected.names() == ["c", "a"]
        assert projected.types() == [DataType.FLOAT, DataType.INT]

    def test_project_indexes(self):
        schema = Schema.of(a=DataType.INT, b=DataType.STRING)
        assert schema.project_indexes([1]).names() == ["b"]

    def test_concat_disambiguates(self):
        left = Schema.of(id=DataType.INT, name=DataType.STRING)
        right = Schema.of(id=DataType.INT, city=DataType.STRING)
        joined = left.concat(right)
        assert joined.names() == ["id", "name", "id_r", "city"]

    def test_concat_double_clash(self):
        left = Schema.of(id=DataType.INT, id_r=DataType.INT)
        right = Schema.of(id=DataType.INT)
        assert left.concat(right).names() == ["id", "id_r", "id_r2"]

    def test_concat_strict_mode(self):
        left = Schema.of(id=DataType.INT)
        with pytest.raises(StorageError):
            left.concat(Schema.of(id=DataType.INT), disambiguate=False)

    def test_rename_and_prefix(self):
        schema = Schema.of(a=DataType.INT, b=DataType.INT)
        assert schema.rename({"a": "x"}).names() == ["x", "b"]
        assert schema.prefixed("t").names() == ["t.a", "t.b"]

    def test_equality_and_hash(self):
        a = Schema.of(x=DataType.INT)
        b = Schema.of(x=DataType.INT)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Schema.of(x=DataType.FLOAT)
