"""Golden equivalence pins for the network simulator (ISSUE 2).

The analytic-FIFO rewrite of the packet network (one event per hop,
``depart = max(now, link_next_free) + service``) claims *bit-identical*
results to the explicit service-completion model it replaced.  These
tests hold it to that claim: every statistic of representative E1/E2
load points — delivered counts, mean/max latency, mean hops, drops,
steady-state backlog — must equal, float-for-float, the values captured
from the pre-rewrite simulator (with the same drain-fixed
``run_load_point``) in ``tests/golden/network_golden.json``.

If a change to the event loop, router, network, or traffic generator
moves ANY of these numbers, it changed simulation results — either fix
it, or regenerate the golden file (and ``benchmarks/perf_baseline.json``)
in a commit that argues for the new numbers.
"""

import json
import pathlib

import pytest

from repro.machine import MachineConfig, PacketNetwork
from repro.machine.traffic import run_load_point

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "network_golden.json"

#: (key, topology, offered load pps/PE, seed) — E1 is the paper's mesh
#: sweep at seed 17 (one point below and one at the 20k claim); E2 pins
#: the chordal-ring-vs-ring comparison at seed 5.
POINTS = [
    ("e1_mesh_2000", "mesh", 2_000, 17),
    ("e1_mesh_20000", "mesh", 20_000, 17),
    ("e2_chordal_ring_10000", "chordal_ring", 10_000, 5),
    ("e2_ring_10000", "ring", 10_000, 5),
]


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize(("key", "topology", "load", "seed"), POINTS)
def test_load_point_matches_golden(golden, key, topology, load, seed):
    network = PacketNetwork(MachineConfig(n_nodes=64, topology=topology))
    point = run_load_point(
        network, load, warmup_s=0.005, measure_s=0.01, seed=seed
    )
    want = golden[key]
    assert set(point) == set(want), "result keys drifted from the golden file"
    for stat, value in want.items():
        # Exact equality on purpose: the rewrite promises bit-identical
        # floats, not approximations.
        assert point[stat] == value, (
            f"{key}: {stat} = {point[stat]!r}, golden pins {value!r}"
        )


def test_goldens_cover_the_interesting_stats(golden):
    for key, point in golden.items():
        for stat in (
            "delivered",
            "delivered_in_window",
            "mean_latency_s",
            "max_latency_s",
            "mean_hops",
            "dropped",
            "in_flight",
        ):
            assert stat in point, f"{key} golden entry is missing {stat}"


def test_event_count_is_exactly_one_per_hop():
    """The analytic model schedules exactly one event per link traversal.

    The pre-rewrite core fired a service-completion event AND an arrival
    event per hop; the analytic-FIFO law folds them into the single
    arrival.  Local packets never touch the loop at all.
    """
    network = PacketNetwork(MachineConfig(n_nodes=16, topology="mesh"))
    packets = [
        network.inject(0, 15),
        network.inject(3, 12),
        network.inject(1, 2),
        network.inject(5, 5),  # local: zero events
    ]
    network.loop.run()
    expected_hops = sum(p.hops_taken for p in packets)
    assert expected_hops == sum(
        network.router.hops(p.source, p.destination) for p in packets
    )
    assert network.loop.events_fired_total == expected_hops
