"""Spanning-tree gather/broadcast: same rows, bounded coordinator fan-in.

The executor collapses to the historical direct sends whenever the
remote part/target count is within ``multicast_fanin`` (the 64-PE
default never exceeds it, keeping the pinned fingerprints identical).
These tests force a tiny fan-in so the relay tree engages on the small
test machine, and check it changes charges — not answers.
"""

from repro.algebra.plan import AggExpr, AggregateNode, JoinNode, ScanNode
from repro.exec.expressions import col, eq

from tests.test_core_executor import DEPT, EMP, Harness, oracle


def _run(fragments, plan, fanin=None):
    harness = Harness(fragments)
    if fanin is not None:
        harness.executor.multicast_fanin = fanin
    rows, report = harness.run(plan)
    machine = harness.runtime.machine
    received = [node.stats.messages_received for node in machine.nodes]
    return harness, rows, report, received


def test_tree_gather_preserves_rows_and_bounds_fanin():
    plan = ScanNode("emp", EMP)
    fragments = {"emp": 8}
    _, direct_rows, direct_report, direct_recv = _run(fragments, plan)
    _, tree_rows, tree_report, tree_recv = _run(fragments, plan, fanin=2)
    assert sorted(tree_rows, key=repr) == sorted(direct_rows, key=repr)
    assert sorted(tree_rows, key=repr) == sorted(oracle(plan), key=repr)
    # The coordinator (query process at element 0) now takes at most
    # fanin data messages instead of one per fragment; relays add hops.
    assert tree_recv[0] < direct_recv[0]
    assert tree_report.messages >= direct_report.messages


def test_tree_gather_is_deterministic():
    plan = AggregateNode(ScanNode("emp", EMP), [2], [AggExpr("count", None)])
    runs = [_run({"emp": 8}, plan, fanin=2) for _ in range(2)]
    assert runs[0][1] == runs[1][1]
    assert runs[0][2].finished_at == runs[1][2].finished_at
    assert runs[0][2].messages == runs[1][2].messages
    assert runs[0][3] == runs[1][3]


def test_tree_broadcast_preserves_join_rows():
    # dept (4 rows) broadcasts to all 8 emp parts; fanout 2 forces the
    # scatter tree while the join result must not move.
    plan = JoinNode(
        ScanNode("emp", EMP), ScanNode("dept", DEPT), eq(col(2), col(4))
    )
    fragments = {"emp": 8, "dept": 1}
    _, direct_rows, _, _ = _run(fragments, plan)
    harness, tree_rows, _, _ = _run(fragments, plan, fanin=2)
    assert sorted(tree_rows, key=repr) == sorted(direct_rows, key=repr)
    assert sorted(tree_rows, key=repr) == sorted(oracle(plan), key=repr)
    assert harness.executor.metrics.counter("executor.tree_relays").value > 0


def test_direct_path_identical_below_fanin():
    """At the default fan-in the refactor reproduces the old charges."""
    plan = ScanNode("emp", EMP)
    _, rows_a, report_a, recv_a = _run({"emp": 8}, plan)
    _, rows_b, report_b, recv_b = _run({"emp": 8}, plan, fanin=32)
    assert rows_a == rows_b
    assert report_a.finished_at == report_b.finished_at
    assert report_a.messages == report_b.messages
    assert recv_a == recv_b
