"""Large-machine routing: algebraic == BFS oracle, lazy tables, faults.

The router's closed-form next-hop rules must reproduce the historical
ascending-neighbor BFS bit for bit on every (node, destination) pair —
that equivalence is what lets 1024-PE machines skip the dense all-pairs
tables while 64-PE fingerprints stay byte-identical.
"""

import pytest

from repro.errors import TopologyError
from repro.machine.config import MachineConfig
from repro.machine.machine import Machine
from repro.machine.router import Router
from repro.machine.topology import (
    build_chordal_ring,
    build_complete,
    build_hypercube,
    build_mesh,
    build_ring,
)

ORACLE_SIZES = [4, 9, 16, 64]


def _structured_builders(n):
    """The five structured families, at every size where they exist."""
    builders = {
        "mesh": lambda: build_mesh(n),
        "torus": lambda: build_mesh(n, wrap=True),
        "ring": lambda: build_ring(n),
        "chordal_ring": lambda: build_chordal_ring(
            n, skips=(min(max(2, n // 8), n // 2),)
        ),
    }
    if n & (n - 1) == 0:
        builders["hypercube"] = lambda: build_hypercube(n)
    return builders


# -- oracle: algebraic routing == BFS routing --------------------------------


@pytest.mark.parametrize("n", ORACLE_SIZES)
def test_algebraic_next_hop_matches_bfs_on_every_pair(n):
    for name, build in _structured_builders(n).items():
        router = Router(build())
        assert router.has_algebraic_routes, name
        for dest in range(n):
            bfs_dist = router.topology.bfs_distances(dest)
            for node in range(n):
                algebraic = router.algebraic_next_hop(node, dest)
                assert algebraic == router.bfs_next_hop(node, dest), (
                    f"{name} n={n}: next_hop({node} -> {dest})"
                )
                assert router.hops(node, dest) == bfs_dist[node], (
                    f"{name} n={n}: hops({node} -> {dest})"
                )


@pytest.mark.parametrize("n", [9, 16])
def test_algebraic_paths_match_bfs_paths(n):
    for name, build in _structured_builders(n).items():
        lazy = Router(build())
        eager = Router(build())
        for dest in range(n):
            eager.out_links_to(dest)  # force BFS columns on the oracle
        for source in range(n):
            for dest in range(n):
                # The lazy router has no columns: path() walks the
                # closed form.  It must equal the BFS-column chain.
                assert lazy.path(source, dest) == eager.path(source, dest), (
                    f"{name} n={n}: path({source} -> {dest})"
                )
        assert lazy.touched_destinations == 0


def test_multi_skip_chordal_ring_falls_back_to_bfs():
    router = Router(build_chordal_ring(32, skips=(4, 8)))
    assert not router.has_algebraic_routes
    assert router.algebraic_next_hop(0, 5) is None
    # Generic routing still answers correctly via lazy columns.
    assert router.hops(0, 4) == 1
    assert router.next_hop(0, 4) == 4


def test_complete_topology_uses_generic_fallback():
    router = Router(build_complete(12))
    assert not router.has_algebraic_routes
    for u in range(12):
        for v in range(12):
            assert router.hops(u, v) == (0 if u == v else 1)
            assert router.next_hop(u, v) == v


# -- builder validation at large N -------------------------------------------


@pytest.mark.parametrize("n", [6, 12, 100, 1000])
def test_hypercube_rejects_non_power_of_two(n):
    with pytest.raises(TopologyError, match="power of two"):
        build_hypercube(n)


def test_chordal_ring_rejects_bad_skips_at_large_n():
    with pytest.raises(TopologyError, match="chord skip"):
        build_chordal_ring(1024, skips=(513,))
    with pytest.raises(TopologyError, match="chord skip"):
        build_chordal_ring(1024, skips=(1,))
    assert build_chordal_ring(1024, skips=(512,)).n_nodes == 1024


# -- laziness and memory ------------------------------------------------------


def test_router_construction_builds_no_columns():
    router = Router(build_mesh(1024))
    assert router.touched_destinations == 0
    # Scalar queries on structured topologies stay table-free.
    assert router.hops(0, 1023) == 62
    assert router.next_hop(0, 1023) in router.topology.neighbors(0)
    assert router.touched_destinations == 0
    # Only destinations actually routed to pay for a column.
    router.out_links_to(7)
    assert router.touched_destinations == 1
    # Tables are O(links + touched destinations), nowhere near N^2.
    assert router.table_bytes() < 100_000


def test_disconnected_topology_still_rejected_at_construction():
    from repro.machine.topology import Topology

    with pytest.raises(TopologyError, match="disconnected"):
        Router(Topology("parts", 4, [(0, 1), (2, 3)]))


def test_1024_pe_machine_constructs_and_routes():
    for topology in ("mesh", "chordal_ring"):
        machine = Machine(MachineConfig(n_nodes=1024, topology=topology))
        assert machine.router.touched_destinations == 0
        assert machine.transfer_time(0, 1023, 4096) > 0.0
        assert machine.message_time(3, 900) > 0.0


# -- fault memo: targeted invalidation ----------------------------------------


def _reference_fault_hops(machine, source, destination):
    """Brute-force BFS avoiding faults, independent of the memo."""
    from collections import deque

    if source in machine._down_nodes or destination in machine._down_nodes:
        return -1
    dist = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        if node == destination:
            return dist[node]
        for neighbor in machine.topology.neighbors(node):
            if (
                neighbor in dist
                or neighbor in machine._down_nodes
                or (node, neighbor) in machine._down_links
            ):
                continue
            dist[neighbor] = dist[node] + 1
            frontier.append(neighbor)
    return -1


def _assert_memo_exact(machine):
    for source in range(machine.n_nodes):
        for destination in range(machine.n_nodes):
            assert machine._hops_under_faults(source, destination) == (
                _reference_fault_hops(machine, source, destination)
            ), f"({source} -> {destination})"


def test_fault_memo_survives_fault_sequences():
    machine = Machine(MachineConfig(n_nodes=16))
    machine.fail_link(0, 1)
    _assert_memo_exact(machine)
    machine.fail_node(5)
    _assert_memo_exact(machine)
    machine.fail_link(9, 10)
    _assert_memo_exact(machine)
    machine.restore_node(5)
    _assert_memo_exact(machine)
    machine.restore_link(0, 1)
    machine.fail_node(0)
    _assert_memo_exact(machine)


def test_fault_memo_keeps_columns_a_fault_cannot_affect():
    # Chordal ring 8 with skip 2: w.r.t. destination 0 the ring edge
    # (3, 4) connects two distance-2 elements, so no shortest path to 0
    # uses it and the memoized column must survive cutting it.
    machine = Machine(
        MachineConfig(n_nodes=8, topology="chordal_ring", chord_skips=(2,))
    )
    machine.fail_node(6)  # any fault, so the memo engages
    col = machine._fault_distances_to(0)
    assert col[3] == 2 and col[4] == 2
    # Destination 4 *does* route over (3, 4); its column must go stale.
    col4 = machine._fault_distances_to(4)
    assert abs(col4[3] - col4[4]) == 1
    machine.fail_link(3, 4)
    assert machine._fault_dist_cols[0] is col  # untouched, not rebuilt
    assert 4 not in machine._fault_dist_cols  # invalidated
    _assert_memo_exact(machine)
    machine.restore_link(3, 4)
    assert machine._fault_dist_cols == {}
    _assert_memo_exact(machine)
