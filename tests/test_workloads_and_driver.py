"""Tests for the workload generators and the interleaved driver (E8)."""

import pytest

from repro import MachineConfig, PrismaDB
from repro.core.workload import InterleavedDriver, transactions_from_transfers
from repro.workloads import (
    binary_tree,
    chain,
    generate_rows,
    generate_transfers,
    genealogy,
    load_edges,
    load_wisconsin,
    parts_explosion,
    random_dag,
    setup_bank,
    total_balance,
)


def small_db():
    return PrismaDB(MachineConfig(n_nodes=8, disk_nodes=(0, 4)))


class TestWisconsin:
    def test_row_shape_and_determinism(self):
        rows = list(generate_rows(200, seed=1))
        assert len(rows) == 200
        assert rows == list(generate_rows(200, seed=1))
        assert rows != list(generate_rows(200, seed=2))

    def test_column_invariants(self):
        for row in generate_rows(100):
            unique1, unique2 = row[0], row[1]
            assert row[2] == unique1 % 2
            assert row[6] == unique1 % 100
            assert row[10] == unique1
            assert len(row[13]) == 7

    def test_unique_columns_are_permutations(self):
        rows = list(generate_rows(50))
        assert sorted(row[0] for row in rows) == list(range(50))
        assert [row[1] for row in rows] == list(range(50))

    def test_load_into_db(self):
        db = small_db()
        loaded = load_wisconsin(db, "wisc", 100, fragments=4)
        assert loaded == 100
        assert db.execute("SELECT COUNT(*) FROM wisc").scalar() == 100
        # The classic 1% selection selects ~1%.
        assert db.execute(
            "SELECT COUNT(*) FROM wisc WHERE onepercent = 0"
        ).scalar() == 1


class TestGraphGenerators:
    def test_chain(self):
        assert chain(3) == [(0, 1), (1, 2), (2, 3)]

    def test_binary_tree_edges(self):
        edges = binary_tree(3)
        children = {}
        for parent, child in edges:
            children.setdefault(parent, []).append(child)
        assert children[1] == [2, 3]
        assert len(edges) == 2**4 - 2  # nodes minus root

    def test_random_dag_acyclic(self):
        edges = random_dag(20, 40, seed=5)
        assert all(a < b for a, b in edges)
        assert edges == random_dag(20, 40, seed=5)

    def test_parts_explosion_depth(self):
        triples = parts_explosion(2, fanout=2, depth=3)
        parents = {a for a, _, _ in triples}
        assert "product_0" in parents
        assert all(quantity >= 1 for _, _, quantity in triples)
        assert len(triples) == 2 * (2 + 4 + 8)

    def test_genealogy_links_generations(self):
        pairs, people = genealogy(3, 2, seed=1)
        assert set(people) == {0, 1, 2}
        children = {child for _, child in pairs}
        assert children.issuperset(set(people[1]))

    def test_load_edges(self):
        db = small_db()
        load_edges(db, "e", chain(5), fragments=2)
        assert db.execute("SELECT COUNT(*) FROM e").scalar() == 5


class TestBankingDriver:
    def test_transfers_preserve_total_balance(self):
        db = small_db()
        setup_bank(db, n_accounts=32, fragments=4)
        before = total_balance(db)
        transfers = generate_transfers(10, 32, seed=1)
        driver = InterleavedDriver(db)
        report = driver.run(
            [transactions_from_transfers(transfers[:5]),
             transactions_from_transfers(transfers[5:])]
        )
        assert report.transactions_committed == 10
        assert total_balance(db) == pytest.approx(before)

    def test_contention_produces_waits(self):
        db = small_db()
        setup_bank(db, n_accounts=16, fragments=4)
        hot = generate_transfers(6, 16, seed=2, hot_fraction=1.0, hot_accounts=2)
        scripts = [
            transactions_from_transfers(hot[:3]),
            transactions_from_transfers(hot[3:]),
        ]
        report = InterleavedDriver(db).run(scripts)
        assert report.transactions_committed == 6
        assert report.lock_waits + report.deadlocks > 0

    def test_disjoint_clients_dont_wait(self):
        db = small_db()
        setup_bank(db, n_accounts=4, fragments=4)
        # Each client only touches its own account pair -> no conflicts.
        scripts = [
            [[f"UPDATE account SET balance = balance - 1 WHERE id = {i}",
              f"UPDATE account SET balance = balance + 1 WHERE id = {i}"]]
            for i in range(4)
        ]
        report = InterleavedDriver(db).run(scripts)
        assert report.transactions_committed == 4
        assert report.deadlocks == 0

    def test_parallel_clients_beat_serial_on_disjoint_data(self):
        """The paper's claim: parallelism except on shared fragments."""

        def run_clients(n_clients, per_client):
            db = small_db()
            setup_bank(db, n_accounts=64, fragments=4)
            scripts = []
            for client in range(n_clients):
                base = client * 8
                txns = []
                for t in range(per_client):
                    txns.append([
                        f"UPDATE account SET balance = balance - 1 WHERE id = {base + t % 8}",
                    ])
                scripts.append(txns)
            return InterleavedDriver(db).run(scripts)

        serial = run_clients(1, 8)
        parallel = run_clients(4, 2)
        assert serial.transactions_committed == parallel.transactions_committed == 8
        assert parallel.makespan_s < serial.makespan_s

    def test_deadlock_retry_completes_workload(self):
        db = small_db()
        setup_bank(db, n_accounts=4, fragments=4)
        # Opposite-order transfers: classic deadlock shape.
        scripts = [
            [["UPDATE account SET balance = balance - 1 WHERE id = 0",
              "UPDATE account SET balance = balance + 1 WHERE id = 1"]],
            [["UPDATE account SET balance = balance - 1 WHERE id = 1",
              "UPDATE account SET balance = balance + 1 WHERE id = 0"]],
        ]
        report = InterleavedDriver(db).run(scripts)
        assert report.transactions_committed == 2
        assert total_balance(db) == pytest.approx(400.0)

    def test_crash_after_driver_keeps_committed_transfers(self):
        db = small_db()
        setup_bank(db, n_accounts=16, fragments=2)
        transfers = generate_transfers(4, 16, seed=3)
        InterleavedDriver(db).run([transactions_from_transfers(transfers)])
        expected = total_balance(db)
        db.crash()
        db.restart()
        assert total_balance(db) == pytest.approx(expected)
