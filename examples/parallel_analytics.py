"""Intra-query parallelism: the fragment-count speedup curve (E4 live).

Loads the same Wisconsin-style relation at several fragment counts and
shows how response time, per-element utilization, and network traffic
change — the paper's "performance improvement by introduction of
parallelism" (Section 2.1) made visible.

Run:  python examples/parallel_analytics.py
"""

from repro import MachineConfig, PrismaDB
from repro.workloads import load_wisconsin

QUERY = (
    "SELECT ten, COUNT(*) AS n, AVG(unique1) AS avg1"
    " FROM wisc GROUP BY ten"
)


def run(fragments: int, n_rows: int = 6000):
    config = MachineConfig(n_nodes=64, disk_nodes=(0, 32))
    db = PrismaDB(config)
    load_wisconsin(db, "wisc", n_rows, fragments=fragments)
    result = db.execute(QUERY)
    return result


def main() -> None:
    print(f"query: {QUERY}\n")
    print(f"{'fragments':>9}  {'response ms':>11}  {'speedup':>7}"
          f"  {'messages':>8}  {'KB shipped':>10}")
    baseline = None
    for fragments in (1, 2, 4, 8, 16, 32):
        result = run(fragments)
        response = result.report.response_time
        if baseline is None:
            baseline = response
        print(
            f"{fragments:>9}  {response * 1000:>11.1f}"
            f"  {baseline / response:>6.1f}x"
            f"  {result.report.messages:>8}"
            f"  {result.report.bytes_shipped / 1024:>10.1f}"
        )
    print(
        "\nNear-linear speedup while fragments stay big; communication"
        "\ngrows with the fan-out — the balance Section 3.1 says the"
        "\ndatabase implementor controls through explicit allocation."
    )


if __name__ == "__main__":
    main()
