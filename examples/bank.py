"""Concurrent banking — transactions, conflicts, deadlocks, recovery.

Demonstrates the paper's Section 2.2 concurrency story: several clients
transfer money in parallel; transactions on disjoint fragments fly,
transactions on the same fragment serialize, a deliberate deadlock is
detected and its victim retried, and a crash in the middle of the day
loses exactly the uncommitted work.

Run:  python examples/bank.py
"""

from repro import MachineConfig, PrismaDB
from repro.core.workload import InterleavedDriver, transactions_from_transfers
from repro.workloads import generate_transfers, setup_bank, total_balance


def main() -> None:
    db = PrismaDB(MachineConfig(n_nodes=32, disk_nodes=(0, 16)))
    setup_bank(db, n_accounts=64, fragments=16, initial_balance=100.0)
    db.quiesce()
    opening = total_balance(db)
    print(f"bank open: 64 accounts x 100.0 = {opening}\n")

    # --- Four concurrent tellers -----------------------------------------
    scripts = []
    for teller in range(4):
        transfers = generate_transfers(
            6, 64, seed=teller, hot_fraction=0.3, hot_accounts=4
        )
        scripts.append(transactions_from_transfers(transfers))
    report = InterleavedDriver(db).run(scripts)
    print(
        f"4 tellers ran {report.transactions_committed} transfers:"
        f" {report.lock_waits} lock waits, {report.deadlocks} deadlocks,"
        f" makespan {report.makespan_s:.3f} simulated s"
        f" ({report.throughput_tps:.1f} txn/s)"
    )
    print(f"money conserved: {total_balance(db)} == {opening}\n")

    # --- A deliberate deadlock -------------------------------------------
    # Two opposite-order transfers between the same two accounts.
    deadlock_scripts = [
        [["UPDATE account SET balance = balance - 5 WHERE id = 10",
          "UPDATE account SET balance = balance + 5 WHERE id = 11"]],
        [["UPDATE account SET balance = balance - 5 WHERE id = 11",
          "UPDATE account SET balance = balance + 5 WHERE id = 10"]],
    ]
    report = InterleavedDriver(db).run(deadlock_scripts)
    print(
        f"opposite-order transfers: {report.deadlocks} deadlock(s) detected,"
        f" victim retried, both committed"
        f" ({report.transactions_committed}/2)"
    )
    print(f"money conserved: {total_balance(db)} == {opening}\n")

    # --- Crash in the middle of a transaction ------------------------------
    session = db.session()
    session.begin()
    session.execute("UPDATE account SET balance = balance - 999 WHERE id = 0")
    print("a teller debits 999 ... and the machine loses power")
    crash = db.crash()
    recovery = db.restart()
    print(
        f"restart: {recovery.fragments_recovered} fragments recovered in"
        f" {recovery.duration_s * 1000:.1f} simulated ms"
        f" ({recovery.rows_restored} rows)"
    )
    print(f"uncommitted debit gone, money conserved: {total_balance(db)}")
    assert total_balance(db) == opening

    # --- The books still balance, queryably --------------------------------
    result = db.execute(
        "SELECT branch, COUNT(*) AS accounts, SUM(balance) AS total"
        " FROM account GROUP BY branch ORDER BY branch"
    )
    print("\nper-branch balances after the day:")
    print(result.format_table(max_rows=10))


if __name__ == "__main__":
    main()
