"""Quickstart: the PRISMA database machine in five minutes.

Creates a fragmented database on the simulated 64-element multi-computer,
loads data, and runs SQL through the full pipeline — parser, knowledge-
based optimizer, parallel execution over One-Fragment Managers — printing
both answers and the simulated-machine accounting.

Run:  python examples/quickstart.py
"""

from repro import PrismaDB


def main() -> None:
    # The default machine is the paper's prototype: 64 processing
    # elements, 4 x 10 Mbit/s links each, 16 MByte of memory per element,
    # disks on every 8th element for stable storage (Section 3.2).
    db = PrismaDB()
    print(f"machine: {db.machine!r}\n")

    # DDL with PRISMA's fragmentation clause: the data allocation
    # manager spreads 8 fragments over 8 processing elements.
    print(db.execute(
        "CREATE TABLE emp (id INT PRIMARY KEY, name STRING, dept STRING,"
        " salary FLOAT) FRAGMENTED BY HASH(id) INTO 8"
    ).message)
    print(db.execute(
        "CREATE TABLE dept (dname STRING PRIMARY KEY, city STRING)"
    ).message)

    db.execute(
        "INSERT INTO emp VALUES"
        " (1, 'ada', 'eng', 120.0), (2, 'bob', 'eng', 95.0),"
        " (3, 'cy', 'sales', 80.0), (4, 'dee', 'sales', 85.0),"
        " (5, 'eve', 'hr', 70.0), (6, 'fred', 'eng', 105.0)"
    )
    db.execute(
        "INSERT INTO dept VALUES ('eng', 'amsterdam'),"
        " ('sales', 'rotterdam'), ('hr', 'utrecht')"
    )

    # A join + aggregate, executed in parallel across the fragments.
    result = db.execute(
        "SELECT d.city, COUNT(*) AS headcount, AVG(e.salary) AS avg_salary"
        " FROM emp e JOIN dept d ON e.dept = d.dname"
        " GROUP BY d.city ORDER BY avg_salary DESC"
    )
    print("\n" + result.format_table())
    report = result.report
    print(
        f"\nsimulated response time: {report.response_time * 1000:.2f} ms,"
        f" {report.messages} messages,"
        f" {report.bytes_shipped} bytes over the interconnect,"
        f" {report.fragments_scanned} fragments scanned"
    )

    # EXPLAIN shows what the knowledge-based optimizer did.
    print("\nEXPLAIN SELECT name FROM emp WHERE dept = 'eng' AND salary > 100:")
    explain = db.execute(
        "EXPLAIN SELECT name FROM emp WHERE dept = 'eng' AND salary > 100"
    )
    for (line,) in explain.rows:
        print("  " + line)

    # Transactions: strict two-phase locking + two-phase commit.
    session = db.session()
    session.begin()
    session.execute("UPDATE emp SET salary = salary * 1.1 WHERE dept = 'eng'")
    session.execute("INSERT INTO dept VALUES ('ops', 'eindhoven')")
    session.commit()
    print("\nafter raise:", db.query(
        "SELECT name, salary FROM emp WHERE dept = 'eng' ORDER BY salary DESC"
    ))

    # Crash the machine; committed state comes back from the WALs on the
    # disk-equipped elements.
    db.crash()
    recovery = db.restart()
    print(
        f"\nrecovered {recovery.fragments_recovered} fragments,"
        f" {recovery.rows_restored} rows,"
        f" in {recovery.duration_s * 1000:.1f} simulated ms"
    )
    print("post-recovery check:", db.query("SELECT COUNT(*) FROM emp"))


if __name__ == "__main__":
    main()
