"""Parts explosion — the classic recursive-query workload (Section 2.3/2.5).

A bill-of-materials hierarchy is loaded as a base relation; PRISMAlog
rules derive the full "contains, transitively" relation, and SQL's
CLOSURE() table function answers the same question through the other
front-end.  The engine detects the transitive-closure rule pattern and
routes it to the OFM's dedicated closure operator.

Run:  python examples/parts_explosion.py
"""

from repro import MachineConfig, PrismaDB
from repro.workloads import parts_explosion


def main() -> None:
    db = PrismaDB(MachineConfig(n_nodes=16, disk_nodes=(0, 8)))

    # Two products, three components per assembly, four levels deep.
    bom = parts_explosion(n_assemblies=2, fanout=3, depth=4, seed=11)
    db.execute(
        "CREATE TABLE contains (assembly STRING, component STRING,"
        " quantity INT) FRAGMENTED BY HASH(assembly) INTO 4"
    )
    db.bulk_load("contains", bom)
    print(f"loaded {len(bom)} (assembly, component, quantity) triples\n")

    # --- PRISMAlog: all parts (transitively) inside product_0 ----------
    results = db.execute_prismalog(
        """
        part_of(P, A) :- contains(A, P, Q).
        part_of(P, A) :- contains(S, P, Q), part_of(S, A).
        ? part_of(X, product_0).
        """
    )
    parts = results[0].rows
    print(f"PRISMAlog: product_0 transitively contains {len(parts)} parts")
    print("  first few:", [p[0] for p in parts[:5]])
    stats = results[0].prismalog_stats
    print(f"  closure operator used for: {stats['closure_operator_hits']}")
    print(f"  fixpoint rounds: {stats['fixpoint_iterations']}\n")

    # --- The same question through SQL's CLOSURE() ---------------------
    # CLOSURE works on binary relations; project the hierarchy first.
    db.execute(
        "CREATE TABLE edges (assembly STRING, component STRING)"
        " FRAGMENTED BY HASH(assembly) INTO 4"
    )
    db.bulk_load("edges", [(a, c) for a, c, _ in bom])
    sql_parts = db.query(
        "SELECT component FROM CLOSURE(edges)"
        " WHERE assembly = 'product_0' ORDER BY component"
    )
    print(f"SQL CLOSURE(): {len(sql_parts)} parts — "
          f"{'MATCH' if len(sql_parts) == len(parts) else 'MISMATCH'}\n")

    # --- Where-used: which assemblies would a defective part affect? ----
    defective = parts[len(parts) // 2][0]
    (where_used,) = db.execute_prismalog(
        f"""
        part_of(P, A) :- contains(A, P, Q).
        part_of(P, A) :- contains(S, P, Q), part_of(S, A).
        ? part_of({defective}, A).
        """
    )
    print(f"where-used of {defective!r}: {[r[0] for r in where_used.rows]}")

    # --- Aggregation over the hierarchy through SQL ---------------------
    result = db.execute(
        "SELECT assembly, COUNT(*) AS direct_parts, SUM(quantity) AS pieces"
        " FROM contains GROUP BY assembly ORDER BY pieces DESC LIMIT 5"
    )
    print("\nbusiest assemblies (direct children):")
    print(result.format_table())


if __name__ == "__main__":
    main()
