"""The POOL-X process model, bare (paper Section 3.1).

"The programming model of POOL-X is a collection of dynamically created
processes.  Internally the processes have a control flow behaviour and
they communicate via message-passing only, i.e. no shared memory."

This example uses the runtime directly — no database on top — to show
the primitives the DBMS is built from: dynamic process creation,
explicit allocation onto processing elements, reactive message
handling, and the simulated clocks that make response times observable.

A token travels around a ring of processes spread over the machine,
then a scatter/gather shows the critical-path behaviour of fan-out.

Run:  python examples/poolx_processes.py
"""

from repro.machine import Machine, MachineConfig
from repro.pool import PoolProcess, PoolRuntime


class RingMember(PoolProcess):
    """Passes the token to its neighbour until it has gone around."""

    def __init__(self, runtime, name, node_id):
        super().__init__(runtime, name, node_id)
        self.successor = None
        self.seen = 0

    def handle(self, sender, payload):
        hops_left = payload
        self.seen += 1
        self.charge(1e-4)  # a little work per visit
        if hops_left > 0 and self.successor is not None:
            self.runtime.post(self, self.successor, hops_left - 1, n_bytes=32)


class Worker(PoolProcess):
    """Does a payload-sized chunk of work and reports back."""

    def __init__(self, runtime, name, node_id, coordinator=None):
        super().__init__(runtime, name, node_id)
        self.coordinator = coordinator

    def handle(self, sender, payload):
        self.charge(payload)  # seconds of simulated work
        self.runtime.post(self, self.coordinator, ("done", self.name), n_bytes=64)


class Coordinator(PoolProcess):
    def __init__(self, runtime, name, node_id):
        super().__init__(runtime, name, node_id)
        self.replies = []

    def handle(self, sender, payload):
        self.replies.append(payload[1])


def main() -> None:
    machine = Machine(MachineConfig(n_nodes=16))
    runtime = PoolRuntime(machine)

    # --- Token ring: explicit allocation, one member per element --------
    members = [
        runtime.spawn(RingMember, name=f"ring-{i}", node=i) for i in range(16)
    ]
    for i, member in enumerate(members):
        member.successor = members[(i + 1) % 16]
    laps = 3
    runtime.post(None, members[0], laps * 16)
    runtime.run()
    print(f"token ring: {laps} laps over 16 elements")
    print(f"  every member visited {members[1].seen} times")
    print(f"  simulated completion: {runtime.horizon() * 1000:.2f} ms")
    print(f"  messages: {runtime.stats.messages}")

    # --- Scatter/gather: response time is the slowest branch -------------
    coordinator = runtime.spawn(Coordinator, name="coord", node=0)
    work = [0.002, 0.010, 0.004, 0.001]
    start = runtime.loop.now
    for i, seconds in enumerate(work):
        worker = runtime.spawn(
            Worker, name=f"w{i}", node=i + 1, coordinator=coordinator
        )
        runtime.post(None, worker, seconds)
    runtime.run()
    elapsed = coordinator.ready_at - start
    print(
        f"\nscatter/gather over {len(work)} workers:"
        f" work={sorted(work)} s"
    )
    print(
        f"  coordinator done after {elapsed * 1000:.2f} ms"
        f" (~ max branch, not the sum: {sum(work) * 1000:.0f} ms)"
    )
    assert elapsed < sum(work)


if __name__ == "__main__":
    main()
