"""The interconnect simulation behind the paper's one number.

Section 3.2: "Various simulations show an average network throughput of
upto 20.000 packets (of 256 bits) per second for each processing
element simultaneously."  This example reruns that simulation: 64
processing elements, four 10 Mbit/s links each, mesh vs chordal ring,
uniform random traffic, offered load swept past saturation.

Run:  python examples/network_simulation.py
"""

from repro.machine import MachineConfig, PacketNetwork
from repro.machine.topology import build_topology
from repro.machine.traffic import run_load_point


def sweep(topology: str) -> None:
    config = MachineConfig(n_nodes=64, topology=topology)
    shape = build_topology(config)
    bound = PacketNetwork(config).saturation_bound_pps()
    print(
        f"\n{shape.name}: {shape.n_links} links, diameter {shape.diameter()},"
        f" mean hops {shape.mean_hops():.2f},"
        f" analytic bound {bound:,.0f} pps/PE"
    )
    print(f"{'offered pps/PE':>14}  {'delivered':>9}  {'latency us':>10}")
    for load in (5_000, 10_000, 15_000, 20_000, 25_000, 30_000):
        network = PacketNetwork(config)
        point = run_load_point(
            network, load, warmup_s=0.01, measure_s=0.03, seed=3
        )
        print(
            f"{load:>14,}  {point['delivered_pps_per_node']:>9,.0f}"
            f"  {point['mean_latency_s'] * 1e6:>10.0f}"
        )


def main() -> None:
    print(
        "Rebuilding the Section 3.2 simulation: 256-bit packets,"
        " 10 Mbit/s links,\n4 links per processing element, uniform"
        " random traffic, 64 elements."
    )
    for topology in ("mesh", "chordal_ring"):
        sweep(topology)
    print(
        "\nPaper claim: 'upto 20.000 packets per second for each"
        " processing element\nsimultaneously' — both candidate"
        " topologies saturate in that region."
    )


if __name__ == "__main__":
    main()
