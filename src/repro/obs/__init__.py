"""Unified observability layer: tracing, metrics, and the Snapshot API.

Three parts, all deterministic and wall-clock free:

* :class:`Tracer` (:mod:`repro.obs.tracer`) — bounded ring-buffer
  recorder of spans/events timestamped by the *simulated* clock, with a
  near-zero-cost no-op mode (:func:`active`).
* :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — named
  counters/gauges/histograms for cold-path instrumentation.
* :class:`Snapshot` (:mod:`repro.obs.api`) — the one protocol
  (``stats`` / ``fingerprint`` / ``reset``) every measurement surface
  implements, composed into facades by :class:`Observatory` and
  exposed as ``PrismaDB.observe()`` / ``Machine.observe()``.

Exporters (:mod:`repro.obs.export`) turn a trace into Chrome-trace
JSON for Perfetto or an aligned text profile.
"""

from repro.obs.api import (
    Observatory,
    Snapshot,
    SnapshotMixin,
    canonical,
    fingerprint_stats,
)
from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    text_profile,
    write_chrome_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import DEFAULT_CAPACITY, Tracer, TraceRecord, active

__all__ = [
    "DEFAULT_CAPACITY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observatory",
    "Snapshot",
    "SnapshotMixin",
    "TraceRecord",
    "Tracer",
    "active",
    "canonical",
    "chrome_trace",
    "chrome_trace_json",
    "fingerprint_stats",
    "text_profile",
    "write_chrome_trace",
]
