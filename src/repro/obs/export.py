"""Trace exporters: Chrome-trace JSON and a per-query text profile.

The Chrome exporter targets the Trace Event Format consumed by
``chrome://tracing`` and Perfetto (https://ui.perfetto.dev): complete
spans (``"ph": "X"``) and instant events (``"ph": "i"``), timestamps in
microseconds.  ``pid`` carries the simulated node id and ``tid`` the
actor (process) name, so Perfetto's track grouping shows one lane per
simulated process under one group per PE.

Everything is deterministic: ``json.dumps(..., sort_keys=True)`` over
records that contain no host state means two same-seed runs export
byte-identical files — the CI trace-determinism job diffs them.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Any

from repro.obs.tracer import Tracer

__all__ = [
    "chrome_trace",
    "chrome_trace_json",
    "text_profile",
    "write_chrome_trace",
]

_MICROS = 1_000_000.0


def chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """The trace as a Chrome Trace Event Format object."""
    events: list[dict[str, Any]] = []
    for start_s, duration_s, kind, name, node, actor, args in tracer.events:
        record: dict[str, Any] = {
            "name": name,
            "cat": kind,
            "ph": "X" if duration_s > 0.0 else "i",
            "ts": start_s * _MICROS,
            "pid": node,
            "tid": actor or f"node{node}",
        }
        if duration_s > 0.0:
            record["dur"] = duration_s * _MICROS
        else:
            record["s"] = "t"  # instant-event scope: thread
        if args:
            record["args"] = dict(args)
        events.append(record)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated",
            "emitted": tracer.emitted,
            "dropped": tracer.dropped,
        },
    }


def chrome_trace_json(tracer: Tracer) -> str:
    """Byte-deterministic JSON serialization of :func:`chrome_trace`."""
    return json.dumps(chrome_trace(tracer), sort_keys=True, indent=1)


def write_chrome_trace(tracer: Tracer, path: str | Path) -> Path:
    """Write the Chrome-trace JSON to *path* and return it."""
    path = Path(path)
    path.write_text(chrome_trace_json(tracer) + "\n", encoding="utf-8")
    return path


def text_profile(tracer: Tracer, title: str = "trace profile") -> str:
    """Aggregate the trace into an aligned per-(kind, name) text table.

    Spans contribute their simulated duration; instant events count but
    add no time.  Rows are sorted by total simulated seconds, so the
    report reads as "where did simulated time go" — the per-query
    profile the benchmarks print.
    """
    # Imported lazily: machine.stats is instrumented code and importing
    # it at module scope would cycle machine -> obs -> machine.
    from repro.machine.stats import format_table

    totals: dict[tuple[str, str], list[float]] = defaultdict(lambda: [0, 0.0, 0.0])
    for _start, duration_s, kind, name, _node, _actor, _args in tracer.events:
        row = totals[(kind, name)]
        row[0] += 1
        row[1] += duration_s
        row[2] = max(row[2], duration_s)
    rows = [
        (kind, name, count, f"{total:.6f}", f"{peak:.6f}")
        for (kind, name), (count, total, peak) in sorted(
            totals.items(), key=lambda item: (-item[1][1], item[0])
        )
    ]
    table = format_table(["kind", "name", "count", "sim_total_s", "sim_max_s"], rows)
    footer = (
        f"records: {len(tracer)} retained, {tracer.emitted} emitted,"
        f" {tracer.dropped} dropped"
    )
    return f"{title}\n{table}\n{footer}"
