"""The ``Snapshot`` protocol — one shape for every stats surface.

Before this layer existed the repo had six ad-hoc measurement surfaces
(:class:`~repro.machine.network.NetworkStats`, the executor
:class:`~repro.exec.operators.WorkMeter`,
:class:`~repro.machine.profile.LoopProfiler`, and the cache/fault
counters in :mod:`repro.exec.shuffle`, :mod:`repro.exec.compiler`, and
:mod:`repro.core.faults`), each with its own accessor and its own
fingerprint code copy-pasted into the benchmarks.  The protocol replaces
that with one contract:

* ``stats()`` — a plain mapping of counter/derived values (JSON-able);
* ``fingerprint()`` — a SHA-256 hex digest over the canonicalized
  stats, so two same-seed runs can be diffed bit-for-bit;
* ``reset()`` — return the surface to its just-constructed state.

:class:`Observatory` composes named ``Snapshot`` sources into one
facade; ``PrismaDB.observe()`` / ``Machine.observe()`` /
``PacketNetwork.observe()`` return one.  Everything here is stdlib-only
and wall-clock free (prismalint PL001/PL006): fingerprints hash
*simulated* state, never host state.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Mapping
from typing import Any, Protocol, runtime_checkable

__all__ = [
    "Observatory",
    "Snapshot",
    "SnapshotMixin",
    "canonical",
    "fingerprint_stats",
]


@runtime_checkable
class Snapshot(Protocol):
    """A measurement surface: stats, a stable digest of them, a reset."""

    def stats(self) -> Mapping[str, Any]: ...

    def fingerprint(self) -> str: ...

    def reset(self) -> None: ...


def canonical(value: Any) -> Any:
    """A deterministic, order-independent form of *value* for hashing.

    Mappings are sorted by stringified key, sets by the repr of their
    members; sequences keep their order.  Scalars pass through, so float
    bit patterns survive (``repr`` preserves them exactly).
    """
    if isinstance(value, Mapping):
        return tuple(
            (str(key), canonical(value[key]))
            for key in sorted(value, key=str)
        )
    if isinstance(value, (list, tuple)):
        return tuple(canonical(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(repr(item) for item in value))
    return value


def fingerprint_stats(stats: Mapping[str, Any]) -> str:
    """SHA-256 hex digest over the canonical form of a stats mapping."""
    payload = repr(canonical(stats)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


class SnapshotMixin:
    """Default ``fingerprint()`` for classes that implement ``stats()``.

    ``__slots__ = ()`` so slotted dataclasses (``NetworkStats`` and
    friends) can inherit without growing a ``__dict__``.
    """

    __slots__ = ()

    def stats(self) -> Mapping[str, Any]:  # pragma: no cover - abstract
        raise NotImplementedError

    def reset(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def fingerprint(self) -> str:
        return fingerprint_stats(self.stats())


class Observatory(SnapshotMixin):
    """Named composition of :class:`Snapshot` sources — the facade.

    Sources register under a name, either directly or as a zero-argument
    factory (for owners like :class:`~repro.machine.network.PacketNetwork`
    that *replace* their stats object on reset, so the facade must
    always resolve the current one).  The Observatory is itself a
    ``Snapshot``: its stats are the per-source stats keyed by name, its
    fingerprint hashes the per-source fingerprints, and ``reset()``
    resets every source.
    """

    __slots__ = ("_sources",)

    def __init__(self) -> None:
        self._sources: dict[str, Snapshot | Callable[[], Snapshot]] = {}

    def register(
        self, name: str, source: Snapshot | Callable[[], Snapshot]
    ) -> None:
        if name in self._sources:
            raise ValueError(f"observation source {name!r} already registered")
        self._sources[name] = source

    def source(self, name: str) -> Snapshot:
        entry = self._sources[name]
        return entry() if callable(entry) else entry

    def sources(self) -> list[str]:
        return sorted(self._sources)

    def stats(self) -> dict[str, Mapping[str, Any]]:
        return {
            name: dict(self.source(name).stats()) for name in self.sources()
        }

    def fingerprint(self) -> str:
        per_source = tuple(
            (name, self.source(name).fingerprint()) for name in self.sources()
        )
        return hashlib.sha256(repr(per_source).encode("utf-8")).hexdigest()

    def reset(self) -> None:
        for name in self.sources():
            self.source(name).reset()
