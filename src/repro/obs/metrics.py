"""Named counters, gauges, and histograms behind the ``Snapshot`` protocol.

The simulator's *hot-path* counters (one increment per packet hop or
per tuple) stay where they are — slotted dataclass fields like
:class:`~repro.machine.network.NetworkStats`, retrofitted onto
:class:`~repro.obs.api.Snapshot` — because a dict lookup per hop is a
cost the event core cannot pay.  This registry is for everything else:
cold-path instruments (per query, per shuffle, per commit) that want
one uniform naming, reset, and fingerprint story.  A registry is itself
a ``Snapshot``, so it composes into an
:class:`~repro.obs.api.Observatory` like any other surface.

Histograms use fixed power-of-two-ish bucket bounds so two same-seed
runs bucket identically; no quantile estimation, no sampling.
"""

from __future__ import annotations

from typing import Any

from repro.obs.api import SnapshotMixin

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default histogram bucket upper bounds (right-inclusive; +inf implied).
DEFAULT_BUCKETS = (0, 1, 4, 16, 64, 256, 1024, 4096, 16384, 65536)


class Counter(SnapshotMixin):
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def stats(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}

    def reset(self) -> None:
        self.value = 0


class Gauge(SnapshotMixin):
    """A value that goes up and down (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def stats(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}

    def reset(self) -> None:
        self.value = 0.0


class Histogram(SnapshotMixin):
    """Fixed-bucket distribution of observed values."""

    __slots__ = ("name", "bounds", "counts", "count", "total")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        if tuple(bounds) != tuple(sorted(bounds)):
            raise ValueError(f"histogram bounds must be sorted: {bounds!r}")
        self.name = name
        self.bounds = tuple(bounds)
        #: counts[i] tallies observations <= bounds[i]; the final slot
        #: is the overflow bucket (> bounds[-1]).
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def stats(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "buckets": {
                (repr(bound) if index < len(self.bounds) else "+inf"): count
                for index, (bound, count) in enumerate(
                    zip((*self.bounds, float("inf")), self.counts)
                )
            },
        }

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0


class MetricsRegistry(SnapshotMixin):
    """Get-or-create registry of named instruments.

    Names are flat dotted strings (``"executor.repartitions"``); asking
    for an existing name with a different instrument kind is an error —
    silent type morphing is how metrics rot.
    """

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, factory, kind: type):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__},"
                f" not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), Gauge)

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(name, lambda: Histogram(name, bounds), Histogram)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def stats(self) -> dict[str, Any]:
        return {
            name: dict(self._instruments[name].stats()) for name in self.names()
        }

    def reset(self) -> None:
        for instrument in self._instruments.values():
            instrument.reset()
