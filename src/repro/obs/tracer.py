"""Deterministic span/event tracer for the simulated machine.

Records are timestamped by the *simulated* clock only — instrumented
sites pass in ``EventLoop.now`` / ``PoolProcess.ready_at`` values, and
this module never reads a host clock (prismalint PL006 enforces that
statically).  Two runs with the same seed therefore produce
bit-identical traces, and the CI trace-determinism job diffs their
exports byte-for-byte.

Storage is a bounded ring buffer (``collections.deque(maxlen=...)``):
the newest ``capacity`` records are kept, ``emitted`` counts everything
ever recorded, and ``dropped`` is the difference — bounded memory with
an explicit signal that truncation happened.

No-op mode
----------
Tracing is configured at construction and collapses to *nothing* on the
hot paths: instrumented owners store ``self._tracer = active(tracer)``,
which is ``None`` unless a tracer was passed **and** it is enabled, and
guard every record with ``if self._tracer is not None``.  Disabled
tracing therefore costs one attribute load and a ``None`` test per
event — the perf gate's ``obs`` suite enforces a ≤2 % wall budget on
the E1 and E4 hot paths, and ``tests/test_obs.py`` checks the disabled
path allocates nothing in this module.

Record kinds (the ``kind`` field, also the Chrome-trace category):

========================  ==================================================
``packet.hop``            one store-and-forward hop (span: enqueue→arrival)
``packet.deliver``        packet reached its destination (instant)
``packet.drop``           bounded queue overflowed (instant)
``process.send``          timeline-style message (span: departure→arrival)
``process.post``          reactive-style message (span: departure→arrival)
``operator.execute``      one subplan at one OFM (span: before→after charge)
``executor.repartition``  one hash shuffle (instant, row/target counts)
``executor.query``        one whole query (span: started→finished)
``2pc.*``                 commit-protocol phases (prepare, log_force, ...)
``recovery.*``            restart work (log_scan, wal_replay, catch_up)
========================  ==================================================
"""

from __future__ import annotations

from collections import deque
from typing import Any

__all__ = ["TraceRecord", "Tracer", "active"]

#: One trace record: (start_s, duration_s, kind, name, node, actor, args)
#: where ``args`` is a tuple of ``(key, value)`` pairs sorted by key.
TraceRecord = tuple[float, float, str, str, int, str, tuple]

#: Default ring-buffer capacity (records, not bytes).
DEFAULT_CAPACITY = 262_144


def active(tracer: "Tracer | None") -> "Tracer | None":
    """The tracer an instrumented site should hold — or ``None``.

    This is the whole no-op story: owners call ``active(tracer)`` once
    at construction and keep the result; a missing or disabled tracer
    becomes ``None``, so the per-event cost of disabled tracing is a
    single ``is not None`` test.
    """
    if tracer is not None and tracer.enabled:
        return tracer
    return None


class Tracer:
    """Bounded, deterministic recorder of spans and instant events.

    Parameters
    ----------
    capacity:
        Ring-buffer size in records; the newest *capacity* records are
        kept and ``dropped`` counts what the bound discarded.
    enabled:
        Disabled tracers are never consulted (``active`` maps them to
        ``None`` at instrumentation sites); construct with
        ``enabled=False`` to measure tracing's no-op overhead.
    """

    __slots__ = ("capacity", "enabled", "emitted", "_events")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, enabled: bool = True):
        if capacity <= 0:
            raise ValueError(f"tracer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self.emitted = 0
        self._events: deque[TraceRecord] = deque(maxlen=capacity)

    # -- recording ------------------------------------------------------------

    def event(
        self,
        ts: float,
        kind: str,
        name: str,
        node: int = 0,
        actor: str = "",
        **args: Any,
    ) -> None:
        """Record an instant event at simulated time *ts*."""
        self.emitted += 1
        self._events.append(
            (ts, 0.0, kind, name, node, actor, tuple(sorted(args.items())))
        )

    def span(
        self,
        start: float,
        end: float,
        kind: str,
        name: str,
        node: int = 0,
        actor: str = "",
        **args: Any,
    ) -> None:
        """Record a span from simulated *start* to *end*."""
        self.emitted += 1
        self._events.append(
            (start, end - start, kind, name, node, actor, tuple(sorted(args.items())))
        )

    # -- access ---------------------------------------------------------------

    @property
    def events(self) -> tuple[TraceRecord, ...]:
        """The retained records, oldest first."""
        return tuple(self._events)

    @property
    def dropped(self) -> int:
        """Records discarded by the ring-buffer bound."""
        return self.emitted - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    # -- Snapshot protocol ----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "enabled": self.enabled,
            "capacity": self.capacity,
            "emitted": self.emitted,
            "recorded": len(self._events),
            "dropped": self.dropped,
        }

    def fingerprint(self) -> str:
        """SHA-256 over capacity, emitted count, and every retained record.

        Hashing the records themselves (not just counters) is what the
        trace-determinism gate relies on: any divergence in any field of
        any record changes the digest.
        """
        import hashlib

        payload = repr((self.capacity, self.emitted, tuple(self._events)))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def reset(self) -> None:
        self.emitted = 0
        self._events.clear()
