"""POOL-X-style processes.

Section 3.1: "The programming model of POOL-X is a collection of
dynamically created processes.  Internally the processes have a control
flow behaviour and they communicate via message-passing only, i.e. no
shared memory. [...] POOL-X supports explicit allocation of the
dynamically created processes onto processing elements."

A :class:`PoolProcess` lives on one processing element and carries its
own *simulated* clock (``ready_at``): the time at which the process has
finished everything assigned to it so far.  CPU work advances the clock
and is charged to the hosting element; messages between processes are
charged network transfer time by the runtime.  Response times of
parallel computations fall out as the maximum over the involved process
clocks — the critical path.

Two usage styles are supported:

* **timeline style** (used by the DBMS): the caller orchestrates
  directly, calling :meth:`charge` and :meth:`PoolRuntime.send`; and
* **reactive style** (closest to POOL-X itself): override
  :meth:`handle` and drive the runtime's event loop with
  :meth:`PoolRuntime.run`; each delivered message runs the handler at
  the simulated arrival time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import MachineError, ProcessCrashed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.pool.runtime import PoolRuntime


class PoolProcess:
    """One dynamically created process, allocated to a processing element."""

    def __init__(self, runtime: "PoolRuntime", name: str, node_id: int) -> None:
        self.runtime = runtime
        self.name = name
        self.node_id = node_id
        #: Simulated time at which this process becomes idle.
        self.ready_at = 0.0
        self.alive = True
        #: Set when the process died to a fault (element crash / kill)
        #: rather than orderly termination; volatile state is gone.
        self.failed = False
        self.messages_handled = 0

    # -- simulated-time accounting -----------------------------------------

    def charge(self, seconds: float, tuples: int = 0) -> float:
        """Consume *seconds* of CPU on this process's element.

        Returns the new ``ready_at``.
        """
        if seconds < 0:
            raise MachineError(f"negative work: {seconds}")
        if not self.alive:
            if self.failed:
                raise ProcessCrashed(f"process {self.name!r} crashed")
            raise MachineError(f"process {self.name!r} is terminated")
        self.ready_at += seconds
        self.runtime.machine.node(self.node_id).charge(seconds, tuples)
        return self.ready_at

    def advance_to(self, time: float) -> float:
        """Move the clock forward to *time* (idle wait); never backward."""
        self.ready_at = max(self.ready_at, time)
        return self.ready_at

    @property
    def memory(self) -> Any:
        """The local main-memory account of the hosting element."""
        return self.runtime.machine.node(self.node_id).memory

    # -- reactive style ------------------------------------------------------

    def handle(self, sender: "PoolProcess | None", payload: Any) -> None:
        """Process one message; override in reactive-style subclasses.

        Runs at the simulated arrival time; implementations call
        :meth:`charge` for the work the message causes and may send
        further messages via the runtime.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement handle()"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}@PE{self.node_id}, t={self.ready_at:.6f})"
