"""Placement policies: which processing element gets a new process.

POOL-X "supports explicit allocation of the dynamically created processes
onto processing elements.  This allows for a proper balance between
storage, processing, and communication, under the control of the
implementor of the database system" (Section 3.1).  These policies are
that control knob; the data allocation manager and the parallelizer pick
among them.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

from repro.errors import AllocationError
from repro.machine.machine import Machine


def _up_nodes(machine: Machine) -> list[int]:
    """Elements that can host a new process (down elements excluded)."""
    nodes = [n for n in range(machine.n_nodes) if machine.node_is_up(n)]
    if not nodes:
        raise AllocationError("every processing element is down")
    return nodes


class PlacementPolicy:
    """Chooses a processing element for each newly spawned process.

    Policies never place onto a failed element: a crashed PE hosts no
    new processes until it is restored.
    """

    def choose(self, machine: Machine) -> int:
        raise NotImplementedError

    def choose_many(self, machine: Machine, count: int) -> list[int]:
        """Choose *count* elements (may repeat when count > n_nodes)."""
        return [self.choose(machine) for _ in range(count)]


class Pinned(PlacementPolicy):
    """Always the given element — fully explicit allocation."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def choose(self, machine: Machine) -> int:
        if not 0 <= self.node_id < machine.n_nodes:
            raise AllocationError(
                f"pinned node {self.node_id} outside machine of {machine.n_nodes}"
            )
        if not machine.node_is_up(self.node_id):
            raise AllocationError(f"pinned node {self.node_id} is down")
        return self.node_id


class RoundRobin(PlacementPolicy):
    """Cycle through elements, optionally restricted to a subset."""

    def __init__(self, nodes: Sequence[int] | None = None, start: int = 0) -> None:
        self._nodes = list(nodes) if nodes is not None else None
        self._counter = itertools.count(start)

    def choose(self, machine: Machine) -> int:
        pool = (
            list(self._nodes) if self._nodes is not None else _up_nodes(machine)
        )
        if not pool:
            raise AllocationError("round-robin placement over an empty node set")
        choice = pool[next(self._counter) % len(pool)]
        if not machine.node_is_up(choice):
            raise AllocationError(f"round-robin node {choice} is down")
        return choice


class LeastLoaded(PlacementPolicy):
    """The element with the least accumulated busy time (ties: lowest id)."""

    def choose(self, machine: Machine) -> int:
        return min(
            _up_nodes(machine),
            key=lambda n: (machine.node(n).stats.busy_time_s, n),
        )


class MostFreeMemory(PlacementPolicy):
    """The element with the most free main memory — for fragment hosting."""

    def choose(self, machine: Machine) -> int:
        return max(
            _up_nodes(machine),
            key=lambda n: (machine.node(n).memory.available, -n),
        )

    def choose_many(self, machine: Machine, count: int) -> list[int]:
        # Spread over distinct elements first, by free memory.
        ranked = sorted(
            _up_nodes(machine),
            key=lambda n: (-machine.node(n).memory.available, n),
        )
        chosen = []
        for i in range(count):
            chosen.append(ranked[i % len(ranked)])
        return chosen


class DiskNodes(PlacementPolicy):
    """Round-robin over the disk-equipped elements (for recovery services)."""

    def __init__(self) -> None:
        self._counter = itertools.count()

    def choose(self, machine: Machine) -> int:
        disks = [
            pe.node_id
            for pe in machine.disk_nodes()
            if machine.node_is_up(pe.node_id)
        ]
        if not disks:
            raise AllocationError("machine has no live disk-equipped elements")
        return disks[next(self._counter) % len(disks)]
