"""Message-ownership sanitizer: a data-race detector for simulated messages.

Messages in the real PRISMA machine are copied onto the wire; in the
reproduction they are Python object references, so a sender that keeps
mutating a payload after :meth:`PoolRuntime.post` silently gives the
receiver a different message than the one that was "sent" — exactly the
shared-memory aliasing Section 3.1 forbids, and invisible to static
analysis because the mutation happens at runtime.

When enabled, the runtime takes a structural :func:`snapshot` of every
payload at send time and, at the simulated delivery time, replays the
walk with :func:`first_divergence` to find the first path whose value
changed.  Snapshots capture *structure* (containers, dataclasses,
``__dict__``/``__slots__`` objects) without copying leaf objects, so the
check is cheap enough for tests yet names the precise mutated path —
``payload['rows'][2].balance`` — in its diagnostic.

Off by default; enable per-runtime with ``PoolRuntime(sanitize=True)``
or globally with ``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

import dataclasses
from typing import Any

__all__ = ["first_divergence", "snapshot"]

#: Beyond this depth payloads are treated as opaque leaves — deep
#: self-referential graphs are not messages, they are shared state.
MAX_DEPTH = 32

_PRIMITIVES = (type(None), bool, int, float, complex, str, bytes, frozenset)


def _is_dataclass_instance(value: Any) -> bool:
    return dataclasses.is_dataclass(value) and not isinstance(value, type)


def snapshot(value: Any, _depth: int = 0, _memo: dict[int, bool] | None = None) -> Any:
    """Structural fingerprint of *value*: a tree of hashable summaries.

    Containers and object attributes are walked recursively; primitives
    are captured by value; anything else is captured by identity and
    type (an opaque leaf).  Cycles and over-deep nesting degrade to
    opaque leaves rather than recursing forever.
    """
    if isinstance(value, _PRIMITIVES):
        return ("prim", value)
    if _memo is None:
        _memo = {}
    if id(value) in _memo or _depth >= MAX_DEPTH:
        return ("opaque", type(value).__name__, id(value))
    _memo[id(value)] = True
    try:
        if isinstance(value, (list, tuple)):
            return (
                "seq",
                type(value).__name__,
                tuple(snapshot(item, _depth + 1, _memo) for item in value),
            )
        if isinstance(value, dict):
            return (
                "map",
                tuple(
                    (repr(key), snapshot(item, _depth + 1, _memo))
                    for key, item in value.items()
                ),
            )
        if isinstance(value, set):
            return ("set", tuple(sorted(repr(item) for item in value)))
        if _is_dataclass_instance(value):
            return (
                "obj",
                type(value).__name__,
                tuple(
                    (f.name, snapshot(getattr(value, f.name), _depth + 1, _memo))
                    for f in dataclasses.fields(value)
                ),
            )
        attrs = getattr(value, "__dict__", None)
        if isinstance(attrs, dict):
            return (
                "obj",
                type(value).__name__,
                tuple(
                    (name, snapshot(item, _depth + 1, _memo))
                    for name, item in attrs.items()
                ),
            )
        slots = getattr(type(value), "__slots__", None)
        if slots is not None:
            names = [slots] if isinstance(slots, str) else list(slots)
            return (
                "obj",
                type(value).__name__,
                tuple(
                    (name, snapshot(getattr(value, name), _depth + 1, _memo))
                    for name in names
                    if hasattr(value, name)
                ),
            )
        return ("opaque", type(value).__name__, id(value))
    finally:
        del _memo[id(value)]


def first_divergence(expected: Any, value: Any, path: str = "payload") -> str | None:
    """First path where *value* no longer matches its *expected* snapshot.

    Returns a dotted/indexed path string (``payload['rows'][2].balance``)
    or ``None`` when the payload is structurally unchanged.
    """
    kind = expected[0]
    if kind == "prim":
        if value is expected[1]:
            return None
        if type(value) is not type(expected[1]) or value != expected[1]:
            return path
        return None
    if kind == "opaque":
        if type(value).__name__ != expected[1] or id(value) != expected[2]:
            return path
        return None
    if kind == "seq":
        if type(value).__name__ != expected[1] or len(value) != len(expected[2]):
            return path
        for index, (item_snapshot, item) in enumerate(zip(expected[2], value)):
            found = first_divergence(item_snapshot, item, f"{path}[{index}]")
            if found is not None:
                return found
        return None
    if kind == "map":
        if not isinstance(value, dict):
            return path
        if tuple(repr(key) for key in value) != tuple(key for key, _ in expected[1]):
            return path
        for (key_repr, item_snapshot), item in zip(expected[1], value.values()):
            found = first_divergence(item_snapshot, item, f"{path}[{key_repr}]")
            if found is not None:
                return found
        return None
    if kind == "set":
        if not isinstance(value, (set, frozenset)):
            return path
        if tuple(sorted(repr(item) for item in value)) != expected[1]:
            return path
        return None
    if kind == "obj":
        if type(value).__name__ != expected[1]:
            return path
        for name, item_snapshot in expected[2]:
            if not hasattr(value, name):
                return f"{path}.{name}"
            found = first_divergence(
                item_snapshot, getattr(value, name), f"{path}.{name}"
            )
            if found is not None:
                return found
        current = getattr(value, "__dict__", None)
        if isinstance(current, dict):
            expected_names = {name for name, _ in expected[2]}
            for name in current:
                if name not in expected_names:
                    return f"{path}.{name}"
        return None
    return path  # pragma: no cover - unknown snapshot kind
