"""The POOL-X runtime: process creation, allocation, and message passing.

The runtime owns a :class:`~repro.machine.machine.Machine` and hands out
:class:`~repro.pool.process.PoolProcess` instances placed on its
processing elements.  All inter-process communication goes through
:meth:`PoolRuntime.send` (timeline style) or :meth:`PoolRuntime.post`
(reactive style); both charge the analytic network cost model of the
machine and keep per-node message statistics, so every experiment sees
communication costs no matter which style produced them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, TypeVar

from repro.errors import MachineError, MessageOwnershipError, ProcessCrashed
from repro.machine.config import MachineConfig
from repro.machine.events import EventLoop
from repro.machine.machine import Machine
from repro.obs.api import SnapshotMixin
from repro.obs.tracer import Tracer, active
from repro.pool.placement import PlacementPolicy, RoundRobin
from repro.pool.process import PoolProcess
from repro.pool.sanitizer import first_divergence, snapshot

P = TypeVar("P", bound=PoolProcess)

#: CPU cost of assembling/sending one message (marshalling, system call).
SEND_OVERHEAD_S = 2e-5
#: CPU cost of receiving one message.
RECEIVE_OVERHEAD_S = 2e-5


@dataclass
class RuntimeStats(SnapshotMixin):
    """Aggregate communication counters for one runtime.

    A :class:`~repro.obs.api.Snapshot` like every other stats surface.
    """

    processes_spawned: int = 0
    processes_terminated: int = 0
    processes_killed: int = 0
    messages: int = 0
    bytes_moved: int = 0
    local_messages: int = 0
    #: Reactive-style messages whose receiver was dead at delivery.
    dead_letters: int = 0

    def stats(self) -> dict[str, int]:
        return {
            "processes_spawned": self.processes_spawned,
            "processes_terminated": self.processes_terminated,
            "processes_killed": self.processes_killed,
            "messages": self.messages,
            "bytes_moved": self.bytes_moved,
            "local_messages": self.local_messages,
            "dead_letters": self.dead_letters,
        }

    def reset(self) -> None:
        self.processes_spawned = 0
        self.processes_terminated = 0
        self.processes_killed = 0
        self.messages = 0
        self.bytes_moved = 0
        self.local_messages = 0
        self.dead_letters = 0


def _sanitize_from_env() -> bool:
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() not in (
        "",
        "0",
        "false",
        "no",
        "off",
    )


class PoolRuntime:
    """Creates processes on a machine and passes messages between them.

    With *sanitize* enabled (or ``REPRO_SANITIZE=1`` in the environment)
    every :meth:`post` payload is structurally fingerprinted at send
    time and re-verified at delivery; a payload mutated in between
    raises :class:`~repro.errors.MessageOwnershipError` naming the
    sender, the receiver, and the first mutated path.  See
    :mod:`repro.pool.sanitizer`.
    """

    def __init__(
        self,
        machine: Machine | MachineConfig | None = None,
        sanitize: bool | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if machine is None:
            machine = Machine()
        elif isinstance(machine, MachineConfig):
            machine = Machine(machine)
        self.machine = machine
        self.loop = EventLoop()
        self.stats = RuntimeStats()
        self.sanitize = _sanitize_from_env() if sanitize is None else sanitize
        #: Raw tracer handle for collaborators (executor, commit,
        #: recovery) that call :func:`repro.obs.tracer.active` on it.
        self.tracer = tracer
        self._tracer = active(tracer)
        self._default_placement = RoundRobin()
        self._processes: dict[str, PoolProcess] = {}
        self._name_counter = 0

    # -- process lifecycle ----------------------------------------------------

    def spawn(
        self,
        process_class: type[P] = PoolProcess,
        name: str | None = None,
        node: int | None = None,
        placement: PlacementPolicy | None = None,
        start_at: float = 0.0,
        **kwargs: Any,
    ) -> P:
        """Create a process and allocate it to a processing element.

        Either pin it with *node* (explicit allocation, as POOL-X allows)
        or let a :class:`PlacementPolicy` choose.  Creation costs
        ``cpu_start_cost_s`` on the hosting element and the process's
        clock starts no earlier than *start_at*.
        """
        if node is not None and placement is not None:
            raise MachineError("pass either node or placement, not both")
        if node is None:
            policy = placement or self._default_placement
            node = policy.choose(self.machine)
        if not 0 <= node < self.machine.n_nodes:
            raise MachineError(f"no such processing element: {node}")
        if name is None:
            name = f"{process_class.__name__.lower()}-{self._name_counter}"
            self._name_counter += 1
        if name in self._processes:
            raise MachineError(f"process name {name!r} already in use")
        process = process_class(self, name, node, **kwargs)
        process.advance_to(start_at)
        process.charge(self.machine.config.cpu_start_cost_s)
        self.machine.node(node).stats.processes_started += 1
        self.stats.processes_spawned += 1
        self._processes[name] = process
        return process

    def terminate(self, process: PoolProcess) -> None:
        """Kill a process; its name becomes reusable."""
        # The runtime is the process lifecycle mechanism, not a peer
        # process; marking death is its job, not cross-process traffic.
        process.alive = False  # prismalint: disable=PL003 -- runtime owns lifecycle
        self._processes.pop(process.name, None)
        self.stats.processes_terminated += 1

    def kill(self, process: PoolProcess) -> None:
        """Fault-kill a process: it dies with its volatile state.

        Unlike :meth:`terminate` the death is marked as a *failure*, so
        later sends to it raise :class:`~repro.errors.ProcessCrashed`
        instead of a generic lifecycle error.  The name becomes
        reusable — restart respawns a fresh process under it.
        """
        process.alive = False  # prismalint: disable=PL003 -- runtime owns lifecycle
        process.failed = True  # prismalint: disable=PL003 -- runtime owns lifecycle
        self._processes.pop(process.name, None)
        self.stats.processes_killed += 1

    def crash_node(self, node_id: int) -> list[str]:
        """Kill every live process placed on one element; returns names.

        The machine-level element failure (routing) is the caller's
        responsibility (:meth:`~repro.machine.machine.Machine.fail_node`
        — usually driven through a fault injector).
        """
        victims = sorted(
            name
            for name, process in self._processes.items()
            if process.node_id == node_id
        )
        for name in victims:
            self.kill(self._processes[name])
        return victims

    def process(self, name: str) -> PoolProcess:
        try:
            return self._processes[name]
        except KeyError:
            raise MachineError(f"no live process named {name!r}") from None

    def live_processes(self) -> list[PoolProcess]:
        return list(self._processes.values())

    # -- timeline-style messaging ----------------------------------------------

    def send(
        self,
        sender: PoolProcess,
        receiver: PoolProcess,
        n_bytes: int,
        depart_at: float | None = None,
    ) -> float:
        """Move *n_bytes* from *sender* to *receiver*; returns arrival time.

        The message leaves when the sender is free (or at *depart_at*, if
        later), crosses the network at the machine's transfer rate, and
        the receiver's clock is advanced to the arrival.  Send/receive
        CPU overheads are charged on both sides.
        """
        if n_bytes < 0:
            raise MachineError(f"negative message size: {n_bytes}")
        # Dead peers are an error, not silence: a sender must learn its
        # message had nowhere to go (2PC turns this into abort/unreached).
        if not receiver.alive:
            if receiver.failed:
                raise ProcessCrashed(
                    f"cannot send from {sender.name!r} to {receiver.name!r}:"
                    " receiver crashed"
                )
            raise MachineError(
                f"cannot send from {sender.name!r} to {receiver.name!r}:"
                " receiver is terminated"
            )
        departure = sender.charge(SEND_OVERHEAD_S)
        if depart_at is not None:
            departure = max(departure, depart_at)
            sender.advance_to(departure)
        travel = self.machine.transfer_time(sender.node_id, receiver.node_id, n_bytes)
        arrival = departure + travel
        receiver.advance_to(arrival)
        receiver.charge(RECEIVE_OVERHEAD_S)
        self._count_message(sender, receiver, n_bytes)
        if self._tracer is not None:
            self._tracer.span(
                departure,
                arrival,
                "process.send",
                f"{sender.name}->{receiver.name}",
                node=sender.node_id,
                actor=sender.name,
                bytes=n_bytes,
                to_node=receiver.node_id,
            )
        return receiver.ready_at

    def _count_message(
        self, sender: PoolProcess, receiver: PoolProcess, n_bytes: int
    ) -> None:
        self.stats.messages += 1
        self.stats.bytes_moved += n_bytes
        if sender.node_id == receiver.node_id:
            self.stats.local_messages += 1
        sender_node = self.machine.node(sender.node_id)
        receiver_node = self.machine.node(receiver.node_id)
        sender_node.stats.messages_sent += 1
        sender_node.stats.bytes_sent += n_bytes
        receiver_node.stats.messages_received += 1
        receiver_node.stats.bytes_received += n_bytes

    # -- reactive-style messaging -----------------------------------------------

    def post(
        self,
        sender: PoolProcess | None,
        receiver: PoolProcess,
        payload: Any,
        n_bytes: int = 64,
    ) -> None:
        """Deliver *payload* to ``receiver.handle`` at the simulated arrival.

        Used with :meth:`run`; messages from the outside world pass
        ``sender=None`` and depart at the current loop time.
        """
        if sender is not None:
            departure = sender.charge(SEND_OVERHEAD_S)
            travel = self.machine.transfer_time(
                sender.node_id, receiver.node_id, n_bytes
            )
            self._count_message(sender, receiver, n_bytes)
        else:
            departure = self.loop.now
            travel = 0.0
        arrival = max(departure + travel, self.loop.now)
        if self._tracer is not None:
            sender_name = sender.name if sender is not None else "<external>"
            self._tracer.span(
                departure,
                arrival,
                "process.post",
                f"{sender_name}->{receiver.name}",
                node=sender.node_id if sender is not None else receiver.node_id,
                actor=sender_name,
                bytes=n_bytes,
                to_node=receiver.node_id,
            )
        fingerprint = snapshot(payload) if self.sanitize else None

        def deliver() -> None:
            if not receiver.alive:
                # The receiver died in flight; count the loss instead of
                # dropping it invisibly (senders poll stats.dead_letters).
                self.stats.dead_letters += 1
                return
            if fingerprint is not None:
                mutated = first_divergence(fingerprint, payload)
                if mutated is not None:
                    sender_name = sender.name if sender is not None else "<external>"
                    raise MessageOwnershipError(
                        f"payload mutated between send and delivery: "
                        f"{sender_name} -> {receiver.name}, departed "
                        f"t={departure:.6f}, delivered t={arrival:.6f}, "
                        f"first mutated path: {mutated} (messages are "
                        f"copied on the wire; senders must not alias them)"
                    )
            receiver.advance_to(self.loop.now)
            # Delivery bookkeeping is the runtime acting as the wire,
            # not one process reaching into another.
            receiver.messages_handled += 1  # prismalint: disable=PL003 -- runtime is the wire
            receiver.handle(sender, payload)

        self.loop.schedule_at(arrival, deliver)

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drive reactive message delivery; returns events fired."""
        return self.loop.run(until=until, max_events=max_events)

    # -- reporting ------------------------------------------------------------

    def horizon(self) -> float:
        """Latest clock over all live processes — the makespan so far."""
        processes = self.live_processes()
        return max((p.ready_at for p in processes), default=0.0)
