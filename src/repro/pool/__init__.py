"""POOL-X-like process runtime (paper Section 3.1).

Dynamically created processes, message passing only, explicit allocation
onto processing elements.  See :class:`PoolRuntime` and
:class:`PoolProcess`.  The message-ownership sanitizer
(:mod:`repro.pool.sanitizer`) enforces the no-aliasing half of the
message-passing contract at runtime when enabled.
"""

from repro.pool.placement import (
    DiskNodes,
    LeastLoaded,
    MostFreeMemory,
    Pinned,
    PlacementPolicy,
    RoundRobin,
)
from repro.pool.process import PoolProcess
from repro.pool.runtime import (
    RECEIVE_OVERHEAD_S,
    SEND_OVERHEAD_S,
    PoolRuntime,
    RuntimeStats,
)
from repro.pool.sanitizer import first_divergence, snapshot

__all__ = [
    "DiskNodes",
    "LeastLoaded",
    "MostFreeMemory",
    "Pinned",
    "PlacementPolicy",
    "PoolProcess",
    "PoolRuntime",
    "RECEIVE_OVERHEAD_S",
    "RoundRobin",
    "RuntimeStats",
    "SEND_OVERHEAD_S",
    "first_divergence",
    "snapshot",
]
