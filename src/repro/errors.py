"""Exception hierarchy for the PRISMA reproduction.

Every error raised by the library derives from :class:`PrismaError`, so
client code can catch one type at the facade boundary.  Subsystems raise
the most specific subclass that applies.
"""

from __future__ import annotations


class PrismaError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Front-end errors (SQL / PRISMAlog).
# ---------------------------------------------------------------------------


class ParseError(PrismaError):
    """A query text could not be tokenized or parsed.

    Parameters
    ----------
    message:
        Human-readable description of the problem.
    line, column:
        1-based source position of the offending token, when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindError(PrismaError):
    """A parsed query references unknown tables, columns, or mis-typed values."""


class PrismalogError(PrismaError):
    """A PRISMAlog program is malformed (unsafe rule, unbound variable, ...)."""


# ---------------------------------------------------------------------------
# Catalog / data-dictionary errors.
# ---------------------------------------------------------------------------


class CatalogError(PrismaError):
    """Schema-level problem: duplicate table, unknown fragment, etc."""


class AllocationError(PrismaError):
    """The data allocation manager could not place a fragment or replica."""


# ---------------------------------------------------------------------------
# Transaction-processing errors.
# ---------------------------------------------------------------------------


class TransactionError(PrismaError):
    """Base class for transaction-processing failures."""


class TransactionAborted(TransactionError):
    """The transaction was rolled back (explicitly or by the system)."""


class DeadlockError(TransactionAborted):
    """The transaction was chosen as a deadlock victim and rolled back."""


class InvalidTransactionState(TransactionError):
    """An operation was attempted on a finished or unknown transaction."""


# ---------------------------------------------------------------------------
# Storage and execution errors.
# ---------------------------------------------------------------------------


class StorageError(PrismaError):
    """Low-level storage failure (bad schema, duplicate key, ...)."""


class OutOfMemoryError(StorageError):
    """A processing element's 16 MByte local memory budget was exceeded."""


class ExecutionError(PrismaError):
    """A physical plan failed while executing."""


class PlanError(PrismaError):
    """A logical plan is malformed or could not be optimized/parallelized."""


class ExpressionError(PrismaError):
    """A scalar expression could not be compiled, typed, or evaluated."""


# ---------------------------------------------------------------------------
# Machine-simulation errors.
# ---------------------------------------------------------------------------


class MachineError(PrismaError):
    """The multi-computer simulator was configured or driven incorrectly."""


class TopologyError(MachineError):
    """An interconnect topology violates its structural constraints."""


class ProcessCrashed(MachineError):
    """A message or CPU charge targeted a process killed by a fault.

    Distinct from orderly termination: a crashed process lost its
    volatile state and the sender must treat the peer as failed (2PC
    converts this into an abort or an unreached participant, never
    silence).
    """


class LinkDownError(MachineError):
    """No route exists between two elements under the current faults.

    Raised by :meth:`~repro.machine.machine.Machine.transfer_time` when
    failed links/elements disconnect the source from the destination.
    """


class InjectedCrash(Exception):  # noqa: N818 -- event, not an "...Error" condition
    """A :class:`~repro.core.faults.FaultInjector` crash point fired.

    Deliberately *not* a :class:`PrismaError`: an injected coordinator
    halt must unwind through every engine-level error handler (which
    would otherwise convert it into a tidy abort) and reach the test
    harness, leaving the system exactly as the crash left it —
    in-doubt participants, held locks and all.
    """

    def __init__(self, point: str, txn_id: int | None = None):
        detail = f" (txn {txn_id})" if txn_id is not None else ""
        super().__init__(f"injected crash at {point}{detail}")
        self.point = point
        self.txn_id = txn_id


class MessageOwnershipError(MachineError):
    """A message payload was mutated between send and delivery.

    Raised only when the message-ownership sanitizer is enabled
    (``PoolRuntime(sanitize=True)`` or ``REPRO_SANITIZE=1``); names the
    sender, the receiver, and the first mutated path inside the payload.
    """


class RecoveryError(PrismaError):
    """Log corruption or an impossible state during restart recovery."""


class RebalanceError(PrismaError):
    """An online split/merge/migration could not run (wrong scheme,
    unsplittable fragment, no live source copy, unknown fragment)."""


# ---------------------------------------------------------------------------
# Serving-layer errors.
# ---------------------------------------------------------------------------


class InterfaceError(PrismaError):
    """The DBAPI surface was misused (closed connection/cursor, no result)."""
