"""Shortest-path routing over a :class:`~repro.machine.topology.Topology`.

Routes are computed once, by breadth-first search from every destination,
into a dense next-hop table.  Ties are broken toward the lowest-numbered
neighbor, so routing is deterministic and simulations are reproducible.
"""

from __future__ import annotations

from collections import deque

from repro.errors import TopologyError
from repro.machine.topology import Topology


class Router:
    """Deterministic shortest-path router.

    Parameters
    ----------
    topology:
        The interconnect to route over; must be connected.
    """

    def __init__(self, topology: Topology):
        self.topology = topology
        n = topology.n_nodes
        # _next_hop[destination][node] -> neighbor of node on the path to
        # destination (or destination itself when node == destination).
        self._next_hop: list[list[int]] = [[-1] * n for _ in range(n)]
        self._distance: list[list[int]] = [[-1] * n for _ in range(n)]
        for destination in range(n):
            self._build_routes_to(destination)

    def _build_routes_to(self, destination: int) -> None:
        next_hop = self._next_hop[destination]
        distance = self._distance[destination]
        next_hop[destination] = destination
        distance[destination] = 0
        frontier = deque([destination])
        while frontier:
            node = frontier.popleft()
            for neighbor in self.topology.neighbors(node):
                if distance[neighbor] < 0:
                    distance[neighbor] = distance[node] + 1
                    # The packet at `neighbor` heads to `node` next.
                    next_hop[neighbor] = node
                    frontier.append(neighbor)
        unreachable = [i for i, d in enumerate(distance) if d < 0]
        if unreachable:
            raise TopologyError(
                f"topology {self.topology.name!r} is disconnected:"
                f" {unreachable[:5]} cannot reach {destination}"
            )

    def next_hop(self, node: int, destination: int) -> int:
        """The neighbor *node* forwards to, en route to *destination*."""
        return self._next_hop[destination][node]

    def hops(self, source: int, destination: int) -> int:
        """Shortest-path length in hops."""
        return self._distance[destination][source]

    def path(self, source: int, destination: int) -> list[int]:
        """Full node sequence from *source* to *destination*, inclusive."""
        path = [source]
        node = source
        while node != destination:
            node = self.next_hop(node, destination)
            path.append(node)
        return path

    def mean_hops(self) -> float:
        """Average route length over distinct ordered pairs."""
        n = self.topology.n_nodes
        if n == 1:
            return 0.0
        total = sum(
            self._distance[dst][src]
            for dst in range(n)
            for src in range(n)
            if src != dst
        )
        return total / (n * (n - 1))
