"""Shortest-path routing over a :class:`~repro.machine.topology.Topology`.

Historically routes were computed eagerly, by breadth-first search from
every destination into three dense N^2 tables — affordable at the
paper's 64 processing elements, but a 1024-PE mesh would pay ~3M-entry
allocations and 1024 full BFS passes before the first packet moved.
Routing is now computed two ways, both reproducing the original tables
bit for bit:

* **Algebraic** — the structured topologies (mesh, torus, ring,
  single-skip chordal ring, hypercube) have closed-form shortest-path
  distances.  Next hops follow from a greedy walk outward from the
  destination that always steps to the lowest-numbered neighbor closing
  the distance: that walk traces the *lexicographically minimal*
  shortest path, which is exactly the path the original BFS produced
  (its queue expands neighbors in ascending order, so within a level
  nodes pop in lexicographic path order and every node's parent is the
  lexmin-eligible predecessor).  ``hops``/``next_hop``/``path`` are
  therefore O(1)/O(d·deg) with no tables at all.
* **Lazy per-destination BFS** — the packet simulator wants a flat
  per-destination column of outgoing link ids; those columns (and the
  generic/``complete`` fallback for everything) are built on first use
  by the same ascending-neighbor BFS as before and memoized as
  ``array('i')``.  Router memory is O(links + touched destinations)
  instead of O(N^2).

Ties always break toward the lowest-numbered neighbor, so routing is
deterministic and simulations are reproducible; the oracle tests in
``tests/test_router_scaling.py`` assert algebraic == BFS on every
(node, destination) pair for all five structured families.
"""

from __future__ import annotations

from array import array
from collections import deque
from collections.abc import Callable

from repro.errors import TopologyError
from repro.machine.topology import Topology


class Router:
    """Deterministic shortest-path router.

    Parameters
    ----------
    topology:
        The interconnect to route over; must be connected.
    """

    def __init__(self, topology: Topology):
        self.topology = topology
        n = topology.n_nodes
        self._n = n
        # One BFS proves connectivity up front (routing is lazy, but a
        # disconnected interconnect must still fail at construction).
        reach = topology.bfs_distances(0)
        unreachable = [i for i, d in enumerate(reach) if d < 0]
        if unreachable:
            raise TopologyError(
                f"topology {topology.name!r} is disconnected:"
                f" {unreachable[:5]} cannot reach 0"
            )
        # Directed links enumerated in deterministic (source, neighbor)
        # order; the packet simulator indexes its per-link state by these
        # integer ids instead of hashing (u, v) tuples per hop.  Node u's
        # outgoing links occupy [offset[u], offset[u+1]) in neighbor
        # order, so link ids need no dict.
        link_source = array("i")
        link_destination = array("i")
        link_offset = array("i", [0])
        for u in range(n):
            for v in topology.neighbors(u):
                link_source.append(u)
                link_destination.append(v)
            link_offset.append(len(link_source))
        self.link_source = link_source
        self.link_destination = link_destination
        self._link_offset = link_offset
        self.n_directed_links = len(link_source)
        # Memoized per-destination columns (array('i'), built on demand).
        self._next_hop_cols: dict[int, array] = {}
        self._dist_cols: dict[int, array] = {}
        self._out_cols: dict[int, array] = {}
        self._mean_hops: float | None = None
        #: Closed-form hop-distance rule, or None for generic topologies.
        self._hops_fn: Callable[[int, int], int] | None = self._algebraic_hops_fn()

    # -- algebraic distances -------------------------------------------------

    def _algebraic_hops_fn(self) -> Callable[[int, int], int] | None:
        """Closed-form shortest-path distance for structured topologies."""
        topology = self.topology
        params = topology.params
        n = self._n
        kind = topology.kind
        if kind in ("mesh", "torus"):
            rows = int(params["rows"])
            cols = int(params["cols"])
            wrap_rows = bool(params["wrap_rows"])
            wrap_cols = bool(params["wrap_cols"])

            def mesh_hops(u: int, v: int) -> int:
                ru, cu = divmod(u, cols)
                rv, cv = divmod(v, cols)
                dr = ru - rv if ru >= rv else rv - ru
                if wrap_rows and rows - dr < dr:
                    dr = rows - dr
                dc = cu - cv if cu >= cv else cv - cu
                if wrap_cols and cols - dc < dc:
                    dc = cols - dc
                return dr + dc

            return mesh_hops
        if kind == "ring":

            def ring_hops(u: int, v: int) -> int:
                a = (v - u) % n
                return a if a <= n - a else n - a

            return ring_hops
        if kind == "chordal_ring":
            skips = params["skips"]
            assert isinstance(skips, tuple)
            if len(skips) != 1:
                # Multi-skip chordal rings have no cheap closed form;
                # they fall back to lazy BFS columns.
                return None
            skip = int(skips[0])

            def chordal_hops(u: int, v: int) -> int:
                # q signed chord steps plus ring steps covering the rest:
                # cost(q) = |q| + cyc(a - q*skip).  Any |q| >= best costs
                # at least |q|, so the scan over q terminates exactly.
                a = (v - u) % n
                best = a if a <= n - a else n - a
                q = 1
                while q < best:
                    for residue in ((a - q * skip) % n, (a + q * skip) % n):
                        ring_part = residue if residue <= n - residue else n - residue
                        cost = q + ring_part
                        if cost < best:
                            best = cost
                    q += 1
                return best

            return chordal_hops
        if kind == "hypercube":

            def cube_hops(u: int, v: int) -> int:
                return (u ^ v).bit_count()

            return cube_hops
        return None

    @property
    def has_algebraic_routes(self) -> bool:
        """True when hops/next_hop need no tables at all."""
        return self._hops_fn is not None

    @property
    def touched_destinations(self) -> int:
        """Destinations with memoized BFS columns (lazy-memory metric)."""
        return len(self._next_hop_cols)

    def table_bytes(self) -> int:
        """Bytes held in routing tables: links plus memoized columns."""
        total = sum(
            a.itemsize * len(a)
            for a in (self.link_source, self.link_destination, self._link_offset)
        )
        for memo in (self._next_hop_cols, self._dist_cols, self._out_cols):
            for col in memo.values():
                total += col.itemsize * len(col)
        return total

    # -- lazy BFS columns ----------------------------------------------------

    def _bfs_from(self, destination: int) -> tuple[array, array]:
        """Next-hop and distance columns by ascending-neighbor BFS.

        Identical, value for value, to one pass of the old eager
        all-pairs construction.
        """
        fill = array("i", [-1])
        next_col = fill * self._n
        dist_col = fill * self._n
        next_col[destination] = destination
        dist_col[destination] = 0
        frontier = deque([destination])
        neighbors = self.topology.neighbors
        while frontier:
            node = frontier.popleft()
            d = dist_col[node] + 1
            for neighbor in neighbors(node):
                if dist_col[neighbor] < 0:
                    dist_col[neighbor] = d
                    # The packet at `neighbor` heads to `node` next.
                    next_col[neighbor] = node
                    frontier.append(neighbor)
        return next_col, dist_col

    def _columns_for(self, destination: int) -> tuple[array, array]:
        next_col = self._next_hop_cols.get(destination)
        if next_col is None:
            next_col, dist_col = self._bfs_from(destination)
            self._next_hop_cols[destination] = next_col
            self._dist_cols[destination] = dist_col
        return next_col, self._dist_cols[destination]

    def out_links_to(self, destination: int) -> array:
        """Flat column: node -> outgoing link id toward *destination*.

        -1 marks ``node == destination``.  Built (and memoized) on first
        use; this is the packet simulator's per-hop lookup table.
        """
        col = self._out_cols.get(destination)
        if col is None:
            next_col, _ = self._columns_for(destination)
            offsets = self._link_offset
            neighbors = self.topology.neighbors
            col = array("i", next_col)
            for node in range(self._n):
                if node == destination:
                    col[node] = -1
                else:
                    hop = next_col[node]
                    col[node] = offsets[node] + neighbors(node).index(hop)
            self._out_cols[destination] = col
        return col

    # -- algebraic next hops -------------------------------------------------

    def _walk_parent(self, node: int, destination: int) -> int:
        """BFS-identical next hop by greedy lexmin walk from *destination*.

        Step outward from the destination, always to the lowest-numbered
        neighbor whose closed-form distance to *node* closes by one; the
        node reached at distance 1 is exactly the parent the
        ascending-neighbor BFS would have recorded for *node*.
        """
        hops_fn = self._hops_fn
        assert hops_fn is not None
        remaining = hops_fn(destination, node)
        current = destination
        neighbors = self.topology.neighbors
        while remaining > 1:
            remaining -= 1
            for neighbor in neighbors(current):
                if hops_fn(neighbor, node) == remaining:
                    current = neighbor
                    break
        return current

    def algebraic_next_hop(self, node: int, destination: int) -> int | None:
        """Closed-form next hop; None when no algebraic rule applies.

        Computed without touching (or building) the BFS columns — the
        oracle tests compare this against :meth:`bfs_next_hop`.
        """
        if self._hops_fn is None:
            return None
        if node == destination:
            return destination
        return self._walk_parent(node, destination)

    def bfs_next_hop(self, node: int, destination: int) -> int:
        """Ground-truth next hop from the memoized BFS column."""
        return self._columns_for(destination)[0][node]

    # -- public routing queries ----------------------------------------------

    def next_hop(self, node: int, destination: int) -> int:
        """The neighbor *node* forwards to, en route to *destination*."""
        col = self._next_hop_cols.get(destination)
        if col is not None:
            return col[node]
        if self._hops_fn is not None:
            if node == destination:
                return destination
            return self._walk_parent(node, destination)
        return self._columns_for(destination)[0][node]

    def out_link(self, node: int, destination: int) -> int:
        """Id of the directed link *node* forwards on toward *destination*.

        Returns -1 when ``node == destination``.  The id indexes
        :attr:`link_source` / :attr:`link_destination` and the flat
        per-link arrays kept by the packet simulator.
        """
        return self.out_links_to(destination)[node]

    def hops(self, source: int, destination: int) -> int:
        """Shortest-path length in hops."""
        hops_fn = self._hops_fn
        if hops_fn is not None:
            return hops_fn(source, destination)
        dist_col = self._dist_cols.get(destination)
        if dist_col is None:
            dist_col = self._columns_for(destination)[1]
        return dist_col[source]

    def path(self, source: int, destination: int) -> list[int]:
        """Full node sequence from *source* to *destination*, inclusive."""
        col = self._next_hop_cols.get(destination)
        if col is None and self._hops_fn is not None:
            return self._walk_path(source, destination)
        if col is None:
            col = self._columns_for(destination)[0]
        path = [source]
        node = source
        while node != destination:
            node = col[node]
            path.append(node)
        return path

    def _walk_path(self, source: int, destination: int) -> list[int]:
        """The lexmin walk of :meth:`_walk_parent`, keeping every node."""
        hops_fn = self._hops_fn
        assert hops_fn is not None
        remaining = hops_fn(destination, source)
        reverse = [destination]
        current = destination
        neighbors = self.topology.neighbors
        while current != source:
            remaining -= 1
            for neighbor in neighbors(current):
                if hops_fn(neighbor, source) == remaining:
                    current = neighbor
                    reverse.append(neighbor)
                    break
        reverse.reverse()
        return reverse

    def mean_hops(self) -> float:
        """Average route length over distinct ordered pairs.

        Streamed one BFS at a time (and cached), so no dense distance
        table is ever materialized.
        """
        if self._mean_hops is None:
            n = self._n
            if n == 1:
                self._mean_hops = 0.0
            else:
                bfs = self.topology.bfs_distances
                total = 0
                for destination in range(n):
                    total += sum(bfs(destination))
                self._mean_hops = total / (n * (n - 1))
        return self._mean_hops
