"""Shortest-path routing over a :class:`~repro.machine.topology.Topology`.

Routes are computed once, by breadth-first search from every destination,
into a dense next-hop table.  Ties are broken toward the lowest-numbered
neighbor, so routing is deterministic and simulations are reproducible.
"""

from __future__ import annotations

from collections import deque

from repro.errors import TopologyError
from repro.machine.topology import Topology


class Router:
    """Deterministic shortest-path router.

    Parameters
    ----------
    topology:
        The interconnect to route over; must be connected.
    """

    def __init__(self, topology: Topology):
        self.topology = topology
        n = topology.n_nodes
        # _next_hop[destination][node] -> neighbor of node on the path to
        # destination (or destination itself when node == destination).
        self._next_hop: list[list[int]] = [[-1] * n for _ in range(n)]
        self._distance: list[list[int]] = [[-1] * n for _ in range(n)]
        for destination in range(n):
            self._build_routes_to(destination)
        # Directed links enumerated in deterministic (source, neighbor)
        # order; the packet simulator indexes its per-link state by these
        # integer ids instead of hashing (u, v) tuples per hop.
        self.link_source: list[int] = []
        self.link_destination: list[int] = []
        link_ids: dict[tuple[int, int], int] = {}
        for u in range(n):
            for v in topology.neighbors(u):
                link_ids[(u, v)] = len(self.link_source)
                self.link_source.append(u)
                self.link_destination.append(v)
        self.n_directed_links = len(self.link_source)
        # Flat node->destination->outgoing-link-id table: one list index
        # replaces a next-hop lookup plus a link dict lookup on the hot
        # path.  -1 marks node == destination (no link to take).
        out_link = [-1] * (n * n)
        for destination in range(n):
            hops = self._next_hop[destination]
            for node in range(n):
                if node != destination:
                    out_link[node * n + destination] = link_ids[(node, hops[node])]
        self._out_link = out_link

    def _build_routes_to(self, destination: int) -> None:
        next_hop = self._next_hop[destination]
        distance = self._distance[destination]
        next_hop[destination] = destination
        distance[destination] = 0
        frontier = deque([destination])
        while frontier:
            node = frontier.popleft()
            for neighbor in self.topology.neighbors(node):
                if distance[neighbor] < 0:
                    distance[neighbor] = distance[node] + 1
                    # The packet at `neighbor` heads to `node` next.
                    next_hop[neighbor] = node
                    frontier.append(neighbor)
        unreachable = [i for i, d in enumerate(distance) if d < 0]
        if unreachable:
            raise TopologyError(
                f"topology {self.topology.name!r} is disconnected:"
                f" {unreachable[:5]} cannot reach {destination}"
            )

    def next_hop(self, node: int, destination: int) -> int:
        """The neighbor *node* forwards to, en route to *destination*."""
        return self._next_hop[destination][node]

    def out_link(self, node: int, destination: int) -> int:
        """Id of the directed link *node* forwards on toward *destination*.

        Returns -1 when ``node == destination``.  The id indexes
        :attr:`link_source` / :attr:`link_destination` and the flat
        per-link arrays kept by the packet simulator.
        """
        return self._out_link[node * self.topology.n_nodes + destination]

    def hops(self, source: int, destination: int) -> int:
        """Shortest-path length in hops."""
        return self._distance[destination][source]

    def path(self, source: int, destination: int) -> list[int]:
        """Full node sequence from *source* to *destination*, inclusive."""
        path = [source]
        node = source
        while node != destination:
            node = self.next_hop(node, destination)
            path.append(node)
        return path

    def mean_hops(self) -> float:
        """Average route length over distinct ordered pairs."""
        n = self.topology.n_nodes
        if n == 1:
            return 0.0
        total = sum(
            self._distance[dst][src]
            for dst in range(n)
            for src in range(n)
            if src != dst
        )
        return total / (n * (n - 1))
