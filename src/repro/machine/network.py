"""Packet-level discrete-event simulation of the interconnect.

This is the simulator behind the paper's one quantitative claim
(Section 3.2): "Various simulations show an average network throughput of
upto 20.000 packets (of 256 bits) per second for each processing element
simultaneously."  We rebuild that simulation: store-and-forward routing
of 256-bit packets over 10 Mbit/s links arranged in a mesh or chordal
ring, with FIFO output queues per link.

Experiments E1/E2 sweep the offered load and report delivered throughput
and latency per processing element.

Analytic-FIFO fast path
-----------------------
Each directed link is a deterministic FIFO server with fixed service
time, so a packet's departure instant is known *at enqueue time*::

    depart = max(now, link_next_free) + service_time
    link_next_free = depart

The simulator therefore schedules exactly ONE event per hop — the
arrival at the next node, at ``depart + switch_delay`` — instead of a
service-completion event plus an arrival closure.  This halves the
event count and produces bit-identical timestamps: the float additions
performed are the same ones the explicit service-completion model
performs, in the same order per link (see DESIGN.md, "Analytic FIFO
links").  Per-link state lives in flat integer-indexed lists; the
routing step indexes a per-destination column of outgoing link ids,
fetched lazily from the router
(:meth:`repro.machine.router.Router.out_links_to`) so only destinations
that actually receive traffic ever pay for a routing column.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import MachineError
from repro.machine.config import MachineConfig
from repro.machine.events import EventLoop
from repro.machine.router import Router
from repro.machine.topology import Topology, build_topology
from repro.obs.api import Observatory, SnapshotMixin
from repro.obs.tracer import Tracer, active


@dataclass(slots=True)
class Packet:
    """One network packet in flight.

    ``node`` is simulator bookkeeping: the element the packet is
    currently headed to (updated as each hop is scheduled).
    """

    packet_id: int
    source: int
    destination: int
    injected_at: float
    hops_taken: int = 0
    node: int = -1


@dataclass(slots=True)
class NetworkStats(SnapshotMixin):
    """Counters accumulated by a :class:`PacketNetwork`.

    Implements the :class:`~repro.obs.api.Snapshot` protocol; the hot
    path keeps touching the slotted fields directly — the protocol is
    the *reporting* surface, not the accumulation one.
    """

    injected: int = 0
    delivered: int = 0
    dropped: int = 0
    local: int = 0
    total_latency_s: float = 0.0
    max_latency_s: float = 0.0
    total_hops: int = 0
    delivered_per_node: dict[int, int] = field(default_factory=dict)

    def mean_latency_s(self) -> float:
        return self.total_latency_s / self.delivered if self.delivered else 0.0

    def mean_hops(self) -> float:
        return self.total_hops / self.delivered if self.delivered else 0.0

    def stats(self) -> dict[str, object]:
        return {
            "injected": self.injected,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "local": self.local,
            "total_latency_s": self.total_latency_s,
            "max_latency_s": self.max_latency_s,
            "total_hops": self.total_hops,
            "mean_latency_s": self.mean_latency_s(),
            "mean_hops": self.mean_hops(),
            "delivered_per_node": dict(self.delivered_per_node),
        }

    def reset(self) -> None:
        self.injected = 0
        self.delivered = 0
        self.dropped = 0
        self.local = 0
        self.total_latency_s = 0.0
        self.max_latency_s = 0.0
        self.total_hops = 0
        self.delivered_per_node = {}


class PacketNetwork:
    """Event-driven packet network over a topology.

    Parameters
    ----------
    config:
        Machine parameters (packet size, link bandwidth, switch delay).
    loop:
        The event loop to run on; one is created if omitted.
    queue_capacity:
        Maximum packets waiting on one link's output queue; ``None``
        means unbounded (open-loop measurement).  When bounded, excess
        packets are dropped and counted.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer` recording per-hop
        spans and deliver/drop events; ``None`` or a disabled tracer
        collapses to a single ``is not None`` test per event.
    """

    def __init__(
        self,
        config: MachineConfig | None = None,
        loop: EventLoop | None = None,
        queue_capacity: int | None = None,
        topology: Topology | None = None,
        tracer: Tracer | None = None,
    ):
        self.config = config or MachineConfig()
        self.loop = loop or EventLoop()
        self.queue_capacity = queue_capacity
        self.topology = topology or build_topology(self.config)
        if self.topology.n_nodes != self.config.n_nodes:
            raise MachineError(
                f"topology has {self.topology.n_nodes} nodes,"
                f" config expects {self.config.n_nodes}"
            )
        self.router = Router(self.topology)
        self.stats = NetworkStats()
        # Flat per-link state, indexed by the router's directed link ids:
        # the instant each link is next free, the departure times of the
        # packets it still holds (FIFO order), and how many packets were
        # ever enqueued on it.
        n_links = self.router.n_directed_links
        # Hot per-hop state stays in plain lists: CPython boxes every
        # array('d')/array('q') element access, which measures ~3x
        # slower than a list read/write on the per-hop path.  The
        # compact array-typed tables live in the Router; this class
        # trades those bytes back for speed on what it touches per hop.
        self._link_next_free: list[float] = [0.0] * n_links
        self._link_departs: list[deque[float]] = [deque() for _ in range(n_links)]
        self._link_enqueued: list[int] = [0] * n_links
        # Per-destination out-link columns, fetched lazily on first
        # traffic toward each destination and unboxed into lists once,
        # so memory stays O(links + touched destinations).
        self._out_cols: list[list[int] | None] = [None] * self.topology.n_nodes
        self._link_dest: list[int] = list(self.router.link_destination)
        self._n_nodes = self.topology.n_nodes
        # Cache the derived per-hop constants: the config properties
        # recompute a division per access, which the hot path cannot pay.
        self._service_s = self.config.packet_service_time_s
        self._switch_s = self.config.switch_delay_s
        self._next_packet_id = 0
        #: measurement window start; deliveries before it are not counted.
        self._measure_from = 0.0
        # One bound method reused for every hop event: creating a bound
        # method per schedule is an allocation the hot path cannot pay.
        self._arrive_cb = self._arrive
        self.tracer = tracer
        self._tracer = active(tracer)
        self._observatory: Observatory | None = None

    def observe(self) -> Observatory:
        """The network's :class:`~repro.obs.api.Observatory` facade.

        ``stats`` registers as a factory because
        :meth:`start_measuring` replaces the stats object.
        """
        if self._observatory is None:
            observatory = Observatory()
            observatory.register("network", lambda: self.stats)
            if self.tracer is not None:
                observatory.register("tracer", self.tracer)
            self._observatory = observatory
        return self._observatory

    # -- measurement control ------------------------------------------------

    def start_measuring(self) -> None:
        """Reset counters; deliveries from now on are measured (warm-up cut)."""
        self._measure_from = self.loop.now
        self.stats = NetworkStats()

    # -- injection ------------------------------------------------------------

    def inject(self, source: int, destination: int) -> Packet:
        """Inject one packet at the current simulated time."""
        packet = Packet(
            packet_id=self._next_packet_id,
            source=source,
            destination=destination,
            injected_at=self.loop.now,
            node=source,
        )
        self._next_packet_id += 1
        self.stats.injected += 1
        if source == destination:
            # Local delivery never touches the network.
            self.stats.local += 1
            self._deliver(packet)
            return packet
        packet.node = source
        self._arrive(packet)
        return packet

    # -- internals ---------------------------------------------------------------

    def _arrive(self, packet: Packet) -> None:
        """Handle a packet at ``packet.node``: deliver, or forward one hop.

        This single method IS the hot path — every hop event fires it
        once, and :meth:`inject` enters through it (with ``packet.node``
        set to the source).  The forward step applies the analytic FIFO
        law: the departure instant is computed at enqueue time and only
        the arrival at the next switch is scheduled.
        """
        node = packet.node
        destination = packet.destination
        if node == destination:
            self._deliver(packet)
            return
        out_col = self._out_cols[destination]
        if out_col is None:
            out_col = list(self.router.out_links_to(destination))
            self._out_cols[destination] = out_col
        link_id = out_col[node]
        now = self.loop.now
        departs = self._link_departs[link_id]
        if self.queue_capacity is not None:
            # Packets that have already departed no longer occupy the
            # queue; purge them before the occupancy check.
            while departs and departs[0] <= now:
                departs.popleft()
            if len(departs) >= self.queue_capacity:
                # Mirror _deliver: only packets injected inside the
                # measurement window count toward the drop statistics.
                if packet.injected_at >= self._measure_from:
                    self.stats.dropped += 1
                if self._tracer is not None:
                    self._tracer.event(
                        now,
                        "packet.drop",
                        f"link{link_id}",
                        node=node,
                        packet=packet.packet_id,
                    )
                return
        next_free = self._link_next_free[link_id]
        depart = (next_free if next_free > now else now) + self._service_s
        self._link_next_free[link_id] = depart
        departs.append(depart)
        self._link_enqueued[link_id] += 1
        packet.hops_taken += 1
        packet.node = self._link_dest[link_id]
        arrival = depart + self._switch_s
        self.loop.schedule_call_at(arrival, self._arrive_cb, packet)
        if self._tracer is not None:
            self._tracer.span(
                now,
                arrival,
                "packet.hop",
                f"link{link_id}",
                node=node,
                packet=packet.packet_id,
                to=packet.node,
            )

    def _deliver(self, packet: Packet) -> None:
        if self._tracer is not None:
            self._tracer.event(
                self.loop.now,
                "packet.deliver",
                "deliver",
                node=packet.destination,
                packet=packet.packet_id,
                hops=packet.hops_taken,
            )
        if packet.injected_at < self._measure_from:
            return
        latency = self.loop.now - packet.injected_at
        stats = self.stats
        stats.delivered += 1
        stats.total_latency_s += latency
        if latency > stats.max_latency_s:
            stats.max_latency_s = latency
        stats.total_hops += packet.hops_taken
        node_counts = stats.delivered_per_node
        node_counts[packet.destination] = node_counts.get(packet.destination, 0) + 1

    def _purge_departed(self, link_id: int) -> int:
        """Drop departure records that are in the past; return queue length."""
        departs = self._link_departs[link_id]
        now = self.loop.now
        while departs and departs[0] <= now:
            departs.popleft()
        return len(departs)

    # -- results ---------------------------------------------------------------

    def in_flight(self) -> int:
        """Packets currently queued or in service."""
        return sum(
            self._purge_departed(link_id)
            for link_id in range(self.router.n_directed_links)
        )

    def throughput_per_node_pps(self, window_s: float) -> float:
        """Mean delivered packets/second per processing element."""
        if window_s <= 0:
            return 0.0
        return self.stats.delivered / window_s / self.topology.n_nodes

    def link_utilization(self, window_s: float) -> dict[tuple[int, int], float]:
        """Busy fraction of each directed link over a window."""
        router = self.router
        keys = zip(router.link_source, router.link_destination)
        if window_s <= 0:
            return {key: 0.0 for key in keys}
        service = self._service_s
        result = {}
        for link_id, key in enumerate(keys):
            # Services completed by now: ever enqueued minus still queued.
            served = self._link_enqueued[link_id] - self._purge_departed(link_id)
            result[key] = min(1.0, served * service / window_s)
        return result

    def saturation_bound_pps(self) -> float:
        """Upper bound on per-node delivered throughput under uniform traffic.

        Bisection-bandwidth style argument: each delivered packet occupies
        ``mean_hops`` link-transmissions, and the machine has
        ``2 * n_links`` directed links each serving
        ``link_packets_per_second``.  This is the first-order number the
        paper's 20k packets/s/PE claim rests on.
        """
        mean_hops = self.router.mean_hops()
        if mean_hops == 0:
            return float("inf")
        total_link_capacity = (
            2 * self.topology.n_links * self.config.link_packets_per_second
        )
        return total_link_capacity / mean_hops / self.topology.n_nodes
