"""Packet-level discrete-event simulation of the interconnect.

This is the simulator behind the paper's one quantitative claim
(Section 3.2): "Various simulations show an average network throughput of
upto 20.000 packets (of 256 bits) per second for each processing element
simultaneously."  We rebuild that simulation: store-and-forward routing
of 256-bit packets over 10 Mbit/s links arranged in a mesh or chordal
ring, with FIFO output queues per link.

Experiments E1/E2 sweep the offered load and report delivered throughput
and latency per processing element.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import MachineError
from repro.machine.config import MachineConfig
from repro.machine.events import EventLoop
from repro.machine.router import Router
from repro.machine.topology import Topology, build_topology


@dataclass
class Packet:
    """One network packet in flight."""

    packet_id: int
    source: int
    destination: int
    injected_at: float
    hops_taken: int = 0


@dataclass
class NetworkStats:
    """Counters accumulated by a :class:`PacketNetwork`."""

    injected: int = 0
    delivered: int = 0
    dropped: int = 0
    local: int = 0
    total_latency_s: float = 0.0
    max_latency_s: float = 0.0
    total_hops: int = 0
    delivered_per_node: dict[int, int] = field(default_factory=dict)

    def mean_latency_s(self) -> float:
        return self.total_latency_s / self.delivered if self.delivered else 0.0

    def mean_hops(self) -> float:
        return self.total_hops / self.delivered if self.delivered else 0.0


class _Link:
    """One directed link: a FIFO queue served at the link bandwidth."""

    __slots__ = ("source", "destination", "queue", "busy", "served")

    def __init__(self, source: int, destination: int):
        self.source = source
        self.destination = destination
        self.queue: deque[Packet] = deque()
        self.busy = False
        self.served = 0


class PacketNetwork:
    """Event-driven packet network over a topology.

    Parameters
    ----------
    config:
        Machine parameters (packet size, link bandwidth, switch delay).
    loop:
        The event loop to run on; one is created if omitted.
    queue_capacity:
        Maximum packets waiting on one link's output queue; ``None``
        means unbounded (open-loop measurement).  When bounded, excess
        packets are dropped and counted.
    """

    def __init__(
        self,
        config: MachineConfig | None = None,
        loop: EventLoop | None = None,
        queue_capacity: int | None = None,
        topology: Topology | None = None,
    ):
        self.config = config or MachineConfig()
        self.loop = loop or EventLoop()
        self.queue_capacity = queue_capacity
        self.topology = topology or build_topology(self.config)
        if self.topology.n_nodes != self.config.n_nodes:
            raise MachineError(
                f"topology has {self.topology.n_nodes} nodes,"
                f" config expects {self.config.n_nodes}"
            )
        self.router = Router(self.topology)
        self.stats = NetworkStats()
        self._links: dict[tuple[int, int], _Link] = {}
        for u in range(self.topology.n_nodes):
            for v in self.topology.neighbors(u):
                self._links[(u, v)] = _Link(u, v)
        self._next_packet_id = 0
        #: measurement window start; deliveries before it are not counted.
        self._measure_from = 0.0

    # -- measurement control ------------------------------------------------

    def start_measuring(self) -> None:
        """Reset counters; deliveries from now on are measured (warm-up cut)."""
        self._measure_from = self.loop.now
        self.stats = NetworkStats()

    # -- injection ------------------------------------------------------------

    def inject(self, source: int, destination: int) -> Packet:
        """Inject one packet at the current simulated time."""
        packet = Packet(
            packet_id=self._next_packet_id,
            source=source,
            destination=destination,
            injected_at=self.loop.now,
        )
        self._next_packet_id += 1
        self.stats.injected += 1
        if source == destination:
            # Local delivery never touches the network.
            self.stats.local += 1
            self._deliver(packet)
            return packet
        self._forward(packet, at_node=source)
        return packet

    # -- internals ---------------------------------------------------------------

    def _forward(self, packet: Packet, at_node: int) -> None:
        next_node = self.router.next_hop(at_node, packet.destination)
        link = self._links[(at_node, next_node)]
        if (
            self.queue_capacity is not None
            and len(link.queue) >= self.queue_capacity
        ):
            self.stats.dropped += 1
            return
        link.queue.append(packet)
        if not link.busy:
            self._start_service(link)

    def _start_service(self, link: _Link) -> None:
        link.busy = True
        self.loop.schedule(
            self.config.packet_service_time_s,
            lambda: self._finish_service(link),
        )

    def _finish_service(self, link: _Link) -> None:
        packet = link.queue.popleft()
        link.served += 1
        packet.hops_taken += 1
        if link.queue:
            self._start_service(link)
        else:
            link.busy = False
        # The packet crosses the switch at the receiving node, then either
        # terminates or is forwarded onto the next link.
        arrival_node = link.destination
        delay = self.config.switch_delay_s

        def arrive() -> None:
            if arrival_node == packet.destination:
                self._deliver(packet)
            else:
                self._forward(packet, at_node=arrival_node)

        self.loop.schedule(delay, arrive)

    def _deliver(self, packet: Packet) -> None:
        if packet.injected_at < self._measure_from:
            return
        latency = self.loop.now - packet.injected_at
        stats = self.stats
        stats.delivered += 1
        stats.total_latency_s += latency
        stats.max_latency_s = max(stats.max_latency_s, latency)
        stats.total_hops += packet.hops_taken
        node_counts = stats.delivered_per_node
        node_counts[packet.destination] = node_counts.get(packet.destination, 0) + 1

    # -- results ---------------------------------------------------------------

    def in_flight(self) -> int:
        """Packets currently queued or in service."""
        return sum(len(link.queue) for link in self._links.values())

    def throughput_per_node_pps(self, window_s: float) -> float:
        """Mean delivered packets/second per processing element."""
        if window_s <= 0:
            return 0.0
        return self.stats.delivered / window_s / self.topology.n_nodes

    def link_utilization(self, window_s: float) -> dict[tuple[int, int], float]:
        """Busy fraction of each directed link over a window."""
        service = self.config.packet_service_time_s
        if window_s <= 0:
            return {key: 0.0 for key in self._links}
        return {
            key: min(1.0, link.served * service / window_s)
            for key, link in self._links.items()
        }

    def saturation_bound_pps(self) -> float:
        """Upper bound on per-node delivered throughput under uniform traffic.

        Bisection-bandwidth style argument: each delivered packet occupies
        ``mean_hops`` link-transmissions, and the machine has
        ``2 * n_links`` directed links each serving
        ``link_packets_per_second``.  This is the first-order number the
        paper's 20k packets/s/PE claim rests on.
        """
        mean_hops = self.router.mean_hops()
        if mean_hops == 0:
            return float("inf")
        total_link_capacity = (
            2 * self.topology.n_links * self.config.link_packets_per_second
        )
        return total_link_capacity / mean_hops / self.topology.n_nodes
