"""Discrete-event simulation of the PRISMA multi-computer (Section 3.2).

Public surface:

* :class:`MachineConfig` — hardware parameters (64 PEs, 4 x 10 Mbit/s
  links, 256-bit packets, 16 MByte per element).
* :class:`Machine` — assembled nodes + interconnect + analytic cost model.
* :class:`PacketNetwork` / :mod:`~repro.machine.traffic` — packet-level
  network simulator used by experiments E1/E2.
* topology builders for the mesh and chordal-ring interconnects.
* :class:`LoopProfiler` — events-fired / events-per-second / heap-peak
  counters for the discrete-event core (see README, "Profiling the
  simulator").
"""

from repro.machine.config import MachineConfig, paper_prototype, small_machine
from repro.machine.disk import Disk, DiskStats
from repro.machine.events import EventHandle, EventLoop
from repro.machine.machine import Machine, MachineNodesView
from repro.machine.memory import MemoryAccount
from repro.machine.network import NetworkStats, Packet, PacketNetwork
from repro.machine.node import NodeStats, ProcessingElement
from repro.machine.profile import LoopProfile, LoopProfiler
from repro.machine.router import Router
from repro.machine.topology import (
    Topology,
    build_chordal_ring,
    build_complete,
    build_hypercube,
    build_mesh,
    build_ring,
    build_topology,
)
from repro.machine.traffic import (
    PoissonTraffic,
    hotspot_destination,
    neighbour_destination,
    run_load_point,
    uniform_destination,
)

__all__ = [
    "Disk",
    "DiskStats",
    "EventHandle",
    "EventLoop",
    "LoopProfile",
    "LoopProfiler",
    "Machine",
    "MachineConfig",
    "MachineNodesView",
    "MemoryAccount",
    "NetworkStats",
    "NodeStats",
    "Packet",
    "PacketNetwork",
    "PoissonTraffic",
    "ProcessingElement",
    "Router",
    "Topology",
    "build_chordal_ring",
    "build_complete",
    "build_hypercube",
    "build_mesh",
    "build_ring",
    "build_topology",
    "hotspot_destination",
    "neighbour_destination",
    "paper_prototype",
    "run_load_point",
    "small_machine",
    "uniform_destination",
]
