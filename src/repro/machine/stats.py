"""Small statistics helpers shared by benchmarks and reports."""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def variance(values: Iterable[float]) -> float:
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return sum((v - mu) ** 2 for v in values) / (len(values) - 1)


def stddev(values: Iterable[float]) -> float:
    return math.sqrt(variance(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile; *q* in [0, 100]."""
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned text table (used by benchmark harnesses)."""
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in string_rows)
    return "\n".join(lines)
