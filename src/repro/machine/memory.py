"""Per-processing-element main-memory accounting.

PRISMA is a main-memory DBMS: every fragment, index, and intermediate
result lives in the 16 MByte local store of some processing element.  The
simulator does not copy bytes around, but it does *account* for them, so
that placement decisions face the same capacity pressure the real machine
would, and so over-allocation fails loudly.
"""

from __future__ import annotations

from repro.errors import OutOfMemoryError


class MemoryAccount:
    """Tracks allocations against a fixed capacity.

    >>> account = MemoryAccount(capacity=100)
    >>> account.allocate(60, "fragment emp.0")
    >>> account.used
    60
    >>> account.free("fragment emp.0")
    >>> account.used
    0
    """

    def __init__(self, capacity: int, owner: str = ""):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.owner = owner
        self._allocations: dict[str, int] = {}
        self.peak = 0

    @property
    def used(self) -> int:
        return sum(self._allocations.values())

    @property
    def available(self) -> int:
        return self.capacity - self.used

    def allocate(self, n_bytes: int, tag: str) -> None:
        """Reserve *n_bytes* under *tag*; raises on exhaustion.

        Repeated allocation under the same tag accumulates.
        """
        if n_bytes < 0:
            raise ValueError(f"cannot allocate negative bytes: {n_bytes}")
        if n_bytes > self.available:
            raise OutOfMemoryError(
                f"{self.owner or 'memory'}: need {n_bytes} bytes for {tag!r},"
                f" only {self.available} of {self.capacity} free"
            )
        self._allocations[tag] = self._allocations.get(tag, 0) + n_bytes
        self.peak = max(self.peak, self.used)

    def resize(self, tag: str, n_bytes: int) -> None:
        """Set the allocation under *tag* to exactly *n_bytes*."""
        if n_bytes < 0:
            raise ValueError(f"cannot resize to negative bytes: {n_bytes}")
        current = self._allocations.get(tag, 0)
        growth = n_bytes - current
        if growth > self.available:
            raise OutOfMemoryError(
                f"{self.owner or 'memory'}: resizing {tag!r} to {n_bytes} needs"
                f" {growth} more bytes, only {self.available} free"
            )
        if n_bytes == 0:
            self._allocations.pop(tag, None)
        else:
            self._allocations[tag] = n_bytes
        self.peak = max(self.peak, self.used)

    def free(self, tag: str) -> int:
        """Release the allocation under *tag*; returns the bytes freed."""
        return self._allocations.pop(tag, 0)

    def holding(self, tag: str) -> int:
        """Bytes currently reserved under *tag* (0 if none)."""
        return self._allocations.get(tag, 0)

    def tags(self) -> list[str]:
        return sorted(self._allocations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryAccount({self.owner!r}, used={self.used},"
            f" capacity={self.capacity})"
        )
