"""Discrete-event simulation core.

A minimal, deterministic event engine: events are plain ``(time,
sequence, fn, arg)`` tuples kept in a binary heap.  Ties in time are
broken by insertion order, which makes every simulation run
reproducible.

The engine is deliberately free of any PRISMA-specific knowledge; the
network simulator (:mod:`repro.machine.network`) and the disk model build
on it.

Hot-path design
---------------
Every simulated packet hop costs at least one event, so the scheduler is
the single hottest code in the repository.  Three choices keep it lean:

* Heap entries are tuples, not objects.  Tuple comparison on
  ``(time, sequence)`` is a single C-level operation; there is no
  per-event instance, ``__lt__`` dispatch, or attribute access.
* Callbacks are stored as ``(fn, arg)`` pairs and invoked as
  ``fn(arg)``.  Hot callers (:class:`~repro.machine.network.PacketNetwork`,
  :class:`~repro.machine.traffic.PoissonTraffic`) use
  :meth:`EventLoop.schedule_call_at` to pass a bound method plus its
  argument directly, avoiding a closure allocation per event.  The
  zero-argument convenience API (:meth:`EventLoop.schedule_at` /
  :meth:`EventLoop.schedule`) stores the callback *as* the argument of a
  shared trampoline.
* Cancellation is pay-for-what-you-use: only
  :meth:`EventLoop.schedule_cancellable` /
  :meth:`EventLoop.schedule_cancellable_at` allocate an
  :class:`EventHandle`; the common non-cancellable path allocates
  nothing beyond the heap tuple.

The loop also keeps O(1) profiling counters — live (pending) events,
total events fired, and the peak heap size — surfaced through
:mod:`repro.machine.profile` and the benchmark harnesses.
"""

from __future__ import annotations

import heapq
import sys
from collections.abc import Callable
from typing import Any

from repro.errors import MachineError

EventCallback = Callable[[], None]


def _call0(callback: EventCallback) -> None:
    """Trampoline invoking a zero-argument callback stored as the arg."""
    callback()


def _fire_handle(handle: "EventHandle") -> None:
    """Trampoline firing a cancellable event through its handle."""
    handle._fired = True
    handle._callback()


class EventHandle:
    """Handle returned by the ``schedule_cancellable`` methods.

    Allocated lazily: only events that may need cancelling pay for a
    handle object; plain events are bare heap tuples.
    """

    __slots__ = ("_loop", "_callback", "_cancelled", "_fired", "time")

    def __init__(self, loop: "EventLoop", time: float, callback: EventCallback):
        self._loop = loop
        self._callback = callback
        self._cancelled = False
        self._fired = False
        self.time = time

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self._cancelled and not self._fired:
            self._cancelled = True
            self._loop._live -= 1

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        """Whether the event has already run (cancel is then a no-op)."""
        return self._fired


class EventLoop:
    """A deterministic discrete-event scheduler.

    Example
    -------
    >>> loop = EventLoop()
    >>> fired = []
    >>> loop.schedule_at(2.0, lambda: fired.append("b"))
    >>> loop.schedule_at(1.0, lambda: fired.append("a"))
    >>> loop.run()
    2
    >>> fired
    ['a', 'b']
    >>> loop.now
    2.0
    """

    __slots__ = (
        "_queue",
        "_now",
        "_sequence",
        "_running",
        "_live",
        "_fired_total",
        "_heap_peak",
    )

    def __init__(self):
        # Heap of (time, sequence, fn, arg); fired as fn(arg).
        self._queue: list[tuple[float, int, Callable[[Any], None], Any]] = []
        self._now = 0.0
        self._sequence = 0
        self._running = False
        self._live = 0
        self._fired_total = 0
        self._heap_peak = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired (and not cancelled) events.  O(1)."""
        return self._live

    @property
    def events_fired_total(self) -> int:
        """Events fired over the loop's lifetime (cancelled skips excluded)."""
        return self._fired_total

    @property
    def heap_peak(self) -> int:
        """Largest heap size ever reached (cancelled zombies included)."""
        return self._heap_peak

    # -- scheduling ---------------------------------------------------------

    def schedule_call_at(
        self, time: float, fn: Callable[[Any], None], arg: Any
    ) -> None:
        """Hot path: fire ``fn(arg)`` at absolute simulated *time*.

        No handle, no closure — the event is a bare heap tuple.  Use
        this from per-packet / per-message code.
        """
        if time < self._now:
            raise MachineError(
                f"cannot schedule event in the past: {time} < now {self._now}"
            )
        queue = self._queue
        heapq.heappush(queue, (time, self._sequence, fn, arg))
        self._sequence += 1
        self._live += 1
        if len(queue) > self._heap_peak:
            self._heap_peak = len(queue)

    def schedule_at(self, time: float, callback: EventCallback) -> None:
        """Schedule zero-argument *callback* at absolute simulated *time*."""
        self.schedule_call_at(time, _call0, callback)

    def schedule(self, delay: float, callback: EventCallback) -> None:
        """Schedule zero-argument *callback* *delay* seconds from now."""
        if delay < 0:
            raise MachineError(f"negative delay: {delay}")
        self.schedule_call_at(self._now + delay, _call0, callback)

    def schedule_cancellable_at(
        self, time: float, callback: EventCallback
    ) -> EventHandle:
        """Like :meth:`schedule_at` but returns a cancellable handle."""
        handle = EventHandle(self, time, callback)
        self.schedule_call_at(time, _fire_handle, handle)
        return handle

    def schedule_cancellable(
        self, delay: float, callback: EventCallback
    ) -> EventHandle:
        """Like :meth:`schedule` but returns a cancellable handle."""
        if delay < 0:
            raise MachineError(f"negative delay: {delay}")
        return self.schedule_cancellable_at(self._now + delay, callback)

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Fire the single next event.  Returns ``False`` if none remain."""
        queue = self._queue
        while queue:
            head = heapq.heappop(queue)
            if head[2] is _fire_handle and head[3]._cancelled:
                continue
            self._now = head[0]
            self._live -= 1
            self._fired_total += 1
            head[2](head[3])
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run events in order.

        Parameters
        ----------
        until:
            Stop once simulated time would pass this bound; the clock is
            advanced exactly to *until* (events scheduled later remain
            queued).
        max_events:
            Safety valve: stop after firing this many events.

        Returns
        -------
        int
            Number of events fired.
        """
        if self._running:
            raise MachineError("event loop is not reentrant")
        self._running = True
        fired = 0
        # Local bindings: every name in the loop body resolves via
        # LOAD_FAST instead of attribute / global lookups.  The bounds
        # become sentinels (+inf / maxsize) so the loop body pays plain
        # comparisons instead of None checks, and events are popped
        # immediately (no head peek) — a too-late event is pushed back
        # once, when the run stops.
        queue = self._queue
        pop = heapq.heappop
        push = heapq.heappush
        fire_handle = _fire_handle
        time_bound = float("inf") if until is None else until
        event_bound = sys.maxsize if max_events is None else max_events
        try:
            while queue:
                if fired >= event_bound:
                    break
                head = pop(queue)
                time, _seq, fn, arg = head
                if fn is fire_handle and arg._cancelled:
                    continue
                if time > time_bound:
                    push(queue, head)
                    self._now = time_bound
                    break
                self._now = time
                self._live -= 1
                fn(arg)
                fired += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
            self._fired_total += fired
        return fired
