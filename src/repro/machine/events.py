"""Discrete-event simulation core.

A minimal, deterministic event engine: events are ``(time, sequence,
callback)`` triples kept in a binary heap.  Ties in time are broken by
insertion order, which makes every simulation run reproducible.

The engine is deliberately free of any PRISMA-specific knowledge; the
network simulator (:mod:`repro.machine.network`) and the disk model build
on it.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import MachineError

EventCallback = Callable[[], None]


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventLoop.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class EventLoop:
    """A deterministic discrete-event scheduler.

    Example
    -------
    >>> loop = EventLoop()
    >>> fired = []
    >>> _ = loop.schedule_at(2.0, lambda: fired.append("b"))
    >>> _ = loop.schedule_at(1.0, lambda: fired.append("a"))
    >>> loop.run()
    >>> fired
    ['a', 'b']
    >>> loop.now
    2.0
    """

    def __init__(self):
        self._queue: list[_Event] = []
        self._now = 0.0
        self._sequence = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired (and not cancelled) events."""
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule_at(self, time: float, callback: EventCallback) -> EventHandle:
        """Schedule *callback* to fire at absolute simulated *time*."""
        if time < self._now:
            raise MachineError(
                f"cannot schedule event in the past: {time} < now {self._now}"
            )
        event = _Event(time, self._sequence, callback)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule(self, delay: float, callback: EventCallback) -> EventHandle:
        """Schedule *callback* to fire *delay* seconds from now."""
        if delay < 0:
            raise MachineError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback)

    def step(self) -> bool:
        """Fire the single next event.  Returns ``False`` if none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run events in order.

        Parameters
        ----------
        until:
            Stop once simulated time would pass this bound; the clock is
            advanced exactly to *until* (events scheduled later remain
            queued).
        max_events:
            Safety valve: stop after firing this many events.

        Returns
        -------
        int
            Number of events fired.
        """
        if self._running:
            raise MachineError("event loop is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._queue:
                if max_events is not None and fired >= max_events:
                    break
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                self._now = head.time
                head.callback()
                fired += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return fired
