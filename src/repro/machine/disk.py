"""Secondary-storage model for disk-equipped processing elements.

Section 3.2: "some of the processing elements will also be connected to
secondary storage (disk).  Using these, the multi-computer system
implements stable storage and automatic recovery upon system failures."

The model plays two roles:

* a *cost model* — page reads/writes and log forces are charged simulated
  time (positioning + transfer), which is what the main-memory-vs-disk
  experiment (E3) and the recovery experiment (E9) measure; and
* a *stable store* — a key-addressed page space whose contents survive a
  simulated crash (:meth:`Disk.crash` wipes nothing on disk, it only
  models the loss of volatile state elsewhere).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class DiskStats:
    """Counters accumulated over the life of one disk."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_time_s: float = 0.0


@dataclass(slots=True)
class Disk:
    """One disk: a stable page store plus an access-time model.

    Parameters
    ----------
    node:
        The processing element this disk is attached to.
    access_time_s:
        Average positioning time per access (seek + rotational delay).
    transfer_bps:
        Sustained transfer rate, bytes per second.
    page_bytes:
        Transfer unit; partial pages are charged as whole pages.
    """

    node: int
    access_time_s: float = 0.025
    transfer_bps: float = 1_000_000.0
    page_bytes: int = 8192
    _pages: dict[str, bytes] = field(default_factory=dict, repr=False)
    stats: DiskStats = field(default_factory=DiskStats)

    # -- cost model ---------------------------------------------------------

    def transfer_time(self, n_bytes: int) -> float:
        """Pure transfer time for *n_bytes*, in whole pages."""
        if n_bytes <= 0:
            return 0.0
        pages = (n_bytes + self.page_bytes - 1) // self.page_bytes
        return pages * self.page_bytes / self.transfer_bps

    def access_cost(self, n_bytes: int, sequential: bool = False) -> float:
        """Simulated time for one access of *n_bytes*.

        Sequential accesses amortize positioning over the run and pay a
        single positioning delay; random accesses pay one positioning
        delay per page.
        """
        if n_bytes <= 0:
            return 0.0
        pages = (n_bytes + self.page_bytes - 1) // self.page_bytes
        positioning = self.access_time_s if sequential else pages * self.access_time_s
        return positioning + self.transfer_time(n_bytes)

    # -- stable store -------------------------------------------------------

    def write(self, key: str, payload: bytes, sequential: bool = True) -> float:
        """Durably store *payload* under *key*; returns the simulated cost."""
        cost = self.access_cost(len(payload) or 1, sequential=sequential)
        self._pages[key] = payload
        self.stats.writes += 1
        self.stats.bytes_written += len(payload)
        self.stats.busy_time_s += cost
        return cost

    def read(self, key: str, sequential: bool = False) -> tuple[bytes, float]:
        """Read the payload under *key*; returns ``(payload, cost)``.

        Raises :class:`KeyError` for unknown keys, like a missing page.
        """
        payload = self._pages[key]
        cost = self.access_cost(len(payload) or 1, sequential=sequential)
        self.stats.reads += 1
        self.stats.bytes_read += len(payload)
        self.stats.busy_time_s += cost
        return payload, cost

    def delete(self, key: str) -> None:
        self._pages.pop(key, None)

    def keys(self, prefix: str = "") -> list[str]:
        """All stored keys with the given prefix, sorted."""
        return sorted(k for k in self._pages if k.startswith(prefix))

    def __contains__(self, key: str) -> bool:
        return key in self._pages

    def size_of(self, key: str) -> int:
        """Stored payload size in bytes (0 for unknown keys); free —
        metadata lookups don't touch the platters."""
        return len(self._pages.get(key, b""))

    def used_bytes(self) -> int:
        return sum(len(p) for p in self._pages.values())
