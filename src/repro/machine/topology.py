"""Interconnection-network topologies.

Section 3.2 of the paper: "The topology of the interconnection network
will be mesh-like or a variant of a chordal ring", with four links per
processing element.  This module builds those topologies (plus a few
others useful as baselines) as undirected graphs, and offers the
structural metrics — degree, diameter, mean hop count — that enter the
network cost model.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Iterable, Iterator

from repro.errors import TopologyError


class Topology:
    """An undirected interconnect graph over nodes ``0..n-1``.

    The adjacency structure is immutable after construction.  Use the
    ``build_*`` functions or :func:`build_topology` rather than
    constructing instances by hand.
    """

    def __init__(
        self,
        name: str,
        n_nodes: int,
        edges: Iterable[tuple[int, int]],
        kind: str = "generic",
        params: dict[str, object] | None = None,
    ):
        if n_nodes < 1:
            raise TopologyError(f"topology needs at least one node, got {n_nodes}")
        self.name = name
        self.n_nodes = n_nodes
        #: Structural family ("mesh", "torus", "ring", "chordal_ring",
        #: "hypercube", "complete", or "generic") plus the parameters the
        #: builder used.  The router dispatches on these to pick a
        #: closed-form shortest-path rule instead of parsing the name.
        self.kind = kind
        self.params: dict[str, object] = dict(params or {})
        adjacency: list[set[int]] = [set() for _ in range(n_nodes)]
        for u, v in edges:
            if not (0 <= u < n_nodes and 0 <= v < n_nodes):
                raise TopologyError(f"edge ({u}, {v}) out of range for n={n_nodes}")
            if u == v:
                raise TopologyError(f"self-loop at node {u}")
            adjacency[u].add(v)
            adjacency[v].add(u)
        self._adjacency: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(neighbors)) for neighbors in adjacency
        )

    # -- basic structure ----------------------------------------------------

    def neighbors(self, node: int) -> tuple[int, ...]:
        """Nodes directly linked to *node*, in ascending order."""
        return self._adjacency[node]

    def degree(self, node: int) -> int:
        return len(self._adjacency[node])

    @property
    def max_degree(self) -> int:
        return max(self.degree(n) for n in range(self.n_nodes))

    @property
    def n_links(self) -> int:
        """Number of undirected links."""
        return sum(self.degree(n) for n in range(self.n_nodes)) // 2

    def edges(self) -> Iterator[tuple[int, int]]:
        """All undirected links as ``(u, v)`` with ``u < v``."""
        for u in range(self.n_nodes):
            for v in self._adjacency[u]:
                if u < v:
                    yield (u, v)

    # -- path metrics ---------------------------------------------------------

    def bfs_distances(self, source: int) -> list[int]:
        """Hop distance from *source* to every node (-1 if unreachable)."""
        distances = [-1] * self.n_nodes
        distances[source] = 0
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            for neighbor in self._adjacency[node]:
                if distances[neighbor] < 0:
                    distances[neighbor] = distances[node] + 1
                    frontier.append(neighbor)
        return distances

    def is_connected(self) -> bool:
        return all(d >= 0 for d in self.bfs_distances(0))

    def diameter(self) -> int:
        """Longest shortest path, in hops."""
        worst = 0
        for source in range(self.n_nodes):
            distances = self.bfs_distances(source)
            if any(d < 0 for d in distances):
                raise TopologyError(f"topology {self.name!r} is disconnected")
            worst = max(worst, max(distances))
        return worst

    def mean_hops(self) -> float:
        """Average shortest-path length over distinct ordered pairs."""
        if self.n_nodes == 1:
            return 0.0
        total = 0
        for source in range(self.n_nodes):
            distances = self.bfs_distances(source)
            if any(d < 0 for d in distances):
                raise TopologyError(f"topology {self.name!r} is disconnected")
            total += sum(distances)
        return total / (self.n_nodes * (self.n_nodes - 1))

    def check_degree(self, links_per_node: int) -> None:
        """Raise if any node needs more links than the hardware provides."""
        for node in range(self.n_nodes):
            if self.degree(node) > links_per_node:
                raise TopologyError(
                    f"node {node} of {self.name!r} has degree {self.degree(node)}"
                    f" > {links_per_node} links per processing element"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology({self.name!r}, n={self.n_nodes}, links={self.n_links})"


# ---------------------------------------------------------------------------
# Builders.
# ---------------------------------------------------------------------------


def _mesh_shape(n_nodes: int) -> tuple[int, int]:
    """Most-square ``rows x cols`` factorization of *n_nodes*."""
    best = (1, n_nodes)
    for rows in range(1, int(math.isqrt(n_nodes)) + 1):
        if n_nodes % rows == 0:
            best = (rows, n_nodes // rows)
    return best


def build_mesh(n_nodes: int, wrap: bool = False) -> Topology:
    """A 2-D mesh (or torus when *wrap* is true), as square as possible.

    64 nodes give the 8x8 mesh of the prototype; interior nodes have
    degree 4, matching the four links per processing element.
    """
    rows, cols = _mesh_shape(n_nodes)
    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            elif wrap and cols > 2:
                edges.append((node, r * cols))
            if r + 1 < rows:
                edges.append((node, node + cols))
            elif wrap and rows > 2:
                edges.append((node, c))
    name = "torus" if wrap else "mesh"
    return Topology(
        f"{name}_{rows}x{cols}",
        n_nodes,
        edges,
        kind=name,
        params={
            "rows": rows,
            "cols": cols,
            # An axis only wraps when the builder added the wrap edge.
            "wrap_rows": wrap and rows > 2,
            "wrap_cols": wrap and cols > 2,
        },
    )


def build_ring(n_nodes: int) -> Topology:
    if n_nodes < 3:
        return Topology(f"ring_{n_nodes}", n_nodes,
                        [(0, 1)] if n_nodes == 2 else [], kind="ring")
    edges = [(i, (i + 1) % n_nodes) for i in range(n_nodes)]
    return Topology(f"ring_{n_nodes}", n_nodes, edges, kind="ring")


def build_chordal_ring(n_nodes: int, skips: Iterable[int] = (8,)) -> Topology:
    """A ring with extra chords of the given skip lengths.

    With one chord length the degree is 4, matching the prototype's four
    links.  The default skip of 8 at 64 nodes gives diameter comparable
    to the 8x8 mesh.
    """
    if n_nodes < 3:
        raise TopologyError("chordal ring needs at least 3 nodes")
    edges = [(i, (i + 1) % n_nodes) for i in range(n_nodes)]
    for skip in skips:
        if not 2 <= skip <= n_nodes // 2:
            raise TopologyError(
                f"chord skip {skip} must lie in [2, {n_nodes // 2}] for n={n_nodes}"
            )
        for i in range(n_nodes):
            edges.append((i, (i + skip) % n_nodes))
    skip_label = "+".join(str(s) for s in skips)
    return Topology(
        f"chordal_ring_{n_nodes}_s{skip_label}",
        n_nodes,
        edges,
        kind="chordal_ring",
        params={"skips": tuple(skips)},
    )


def build_hypercube(n_nodes: int) -> Topology:
    dimension = n_nodes.bit_length() - 1
    if 2**dimension != n_nodes:
        raise TopologyError(f"hypercube size must be a power of two, got {n_nodes}")
    edges = [
        (node, node ^ (1 << bit))
        for node in range(n_nodes)
        for bit in range(dimension)
        if node < node ^ (1 << bit)
    ]
    return Topology(
        f"hypercube_{dimension}d",
        n_nodes,
        edges,
        kind="hypercube",
        params={"dimension": dimension},
    )


def build_complete(n_nodes: int) -> Topology:
    edges = [(u, v) for u in range(n_nodes) for v in range(u + 1, n_nodes)]
    return Topology(f"complete_{n_nodes}", n_nodes, edges, kind="complete")


_BUILDERS = {
    "mesh": lambda n, cfg: build_mesh(n, wrap=False),
    "torus": lambda n, cfg: build_mesh(n, wrap=True),
    "ring": lambda n, cfg: build_ring(n),
    "chordal_ring": lambda n, cfg: build_chordal_ring(n, cfg.chord_skips),
    "hypercube": lambda n, cfg: build_hypercube(n),
    "complete": lambda n, cfg: build_complete(n),
}


def build_topology(config) -> Topology:
    """Build the topology named by a :class:`~repro.machine.config.MachineConfig`.

    The result is checked against the config's ``links_per_node`` except
    for the ``complete`` baseline, which deliberately ignores physical
    link limits.
    """
    try:
        builder = _BUILDERS[config.topology]
    except KeyError:
        raise TopologyError(f"unknown topology {config.topology!r}") from None
    topology = builder(config.n_nodes, config)
    if config.topology != "complete":
        topology.check_degree(config.links_per_node)
    return topology
