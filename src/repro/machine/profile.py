"""Profiling counters for the discrete-event core.

The :class:`~repro.machine.events.EventLoop` keeps three O(1) counters —
live events, total events fired, and peak heap size.  This module turns
them into per-measurement snapshots the benchmark harnesses surface
(events fired, events per wall-clock second, heap peak).

The simulation tree itself is wall-clock free (prismalint PL001), so
:class:`LoopProfiler` does not read the host clock: benchmark harnesses
install one process-wide via
:attr:`LoopProfiler.default_clock` (see
``benchmarks/_harness.install_wall_clock``), or inject a clock callable
per instance; a profiler without a clock still reports the
deterministic counters with ``wall_s = 0``.

A profiler is a :class:`~repro.obs.api.Snapshot`: ``stats()`` reports
the finished profile (or a live delta view before ``__exit__``),
``fingerprint()`` hashes only the deterministic fields (never
``wall_s``), and ``reset()`` re-anchors at the loop's current state.

Example
-------
>>> from repro.machine.events import EventLoop
>>> loop = EventLoop()
>>> loop.schedule_at(1.0, lambda: None)
>>> with LoopProfiler(loop) as profiler:
...     _ = loop.run()
>>> profiler.profile.events_fired
1
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import asdict, dataclass
from typing import Any, ClassVar

from repro.machine.events import EventLoop
from repro.obs.api import fingerprint_stats

Clock = Callable[[], float]


@dataclass(slots=True, frozen=True)
class LoopProfile:
    """Counters for one profiled section of an event-loop run."""

    #: Events fired during the profiled section (cancelled skips excluded).
    events_fired: int
    #: Largest heap size the loop has ever reached (lifetime peak — the
    #: heap may have peaked before the profiled section began).
    heap_peak: int
    #: Simulated seconds the clock advanced during the section.
    sim_time_s: float
    #: Wall-clock seconds the section took (0.0 when no clock was injected).
    wall_s: float

    @property
    def events_per_sec(self) -> float:
        """Events fired per wall-clock second (0.0 without a clock)."""
        return self.events_fired / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON-friendly form, derived rate included."""
        data: dict[str, float] = asdict(self)
        data["events_per_sec"] = self.events_per_sec
        return data


class LoopProfiler:
    """Context manager sampling an :class:`EventLoop` around a run.

    Parameters
    ----------
    loop:
        The event loop to observe.
    clock:
        Optional wall-clock callable (e.g. ``time.perf_counter``).
        When omitted, :attr:`default_clock` applies — benchmark
        harnesses install one process-wide instead of threading the
        callable through every call site; simulation code leaves both
        unset and gets deterministic counters only.
    """

    #: Process-wide fallback clock (``None`` = no wall timing).  Only
    #: benchmark harnesses set this; library and simulation code never
    #: read the host clock.
    default_clock: ClassVar[Clock | None] = None

    def __init__(self, loop: EventLoop, clock: Clock | None = None):
        self.loop = loop
        self.clock = clock if clock is not None else type(self).default_clock
        self.profile: LoopProfile | None = None
        self._fired_at_enter = 0
        self._sim_at_enter = 0.0
        self._wall_at_enter = 0.0

    def __enter__(self) -> "LoopProfiler":
        self._fired_at_enter = self.loop.events_fired_total
        self._sim_at_enter = self.loop.now
        self._wall_at_enter = self.clock() if self.clock is not None else 0.0
        return self

    def __exit__(self, *exc_info: object) -> None:
        wall = (self.clock() - self._wall_at_enter) if self.clock is not None else 0.0
        self.profile = LoopProfile(
            events_fired=self.loop.events_fired_total - self._fired_at_enter,
            heap_peak=self.loop.heap_peak,
            sim_time_s=self.loop.now - self._sim_at_enter,
            wall_s=wall,
        )

    # -- Snapshot protocol ----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """The finished profile, or a live delta view before ``__exit__``."""
        if self.profile is not None:
            return self.profile.as_dict()
        return LoopProfile(
            events_fired=self.loop.events_fired_total - self._fired_at_enter,
            heap_peak=self.loop.heap_peak,
            sim_time_s=self.loop.now - self._sim_at_enter,
            wall_s=0.0,
        ).as_dict()

    def fingerprint(self) -> str:
        """Digest of the deterministic counters only.

        ``wall_s`` / ``events_per_sec`` depend on the host and would
        break same-seed reproducibility, so they are excluded.
        """
        stats = self.stats()
        return fingerprint_stats(
            {key: stats[key] for key in ("events_fired", "heap_peak", "sim_time_s")}
        )

    def reset(self) -> None:
        """Drop the finished profile and re-anchor at the loop's state now."""
        self.profile = None
        self._fired_at_enter = self.loop.events_fired_total
        self._sim_at_enter = self.loop.now
        self._wall_at_enter = self.clock() if self.clock is not None else 0.0
