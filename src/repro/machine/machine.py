"""The assembled multi-computer: nodes + interconnect + cost model.

A :class:`Machine` is the substrate everything else runs on.  It is used
in two modes:

* **analytic** — the query engine charges CPU work and data transfers
  against the machine's rate parameters via :meth:`transfer_time`,
  :meth:`cpu_time`, and friends; parallel response times are combined by
  the scheduler as critical paths.  This keeps query execution fast and
  deterministic.
* **packet-level** — the network experiments (E1/E2) drive the
  discrete-event simulator in :mod:`repro.machine.network` over the same
  topology and link parameters, validating the throughput claim the
  analytic model relies on.
"""

from __future__ import annotations

from collections import deque

from repro.errors import LinkDownError, MachineError
from repro.machine.config import MachineConfig
from repro.machine.disk import Disk
from repro.machine.node import ProcessingElement
from repro.machine.router import Router
from repro.machine.topology import Topology, build_topology
from repro.obs.api import Observatory, SnapshotMixin


class MachineNodesView(SnapshotMixin):
    """Aggregate :class:`~repro.obs.api.Snapshot` over per-PE counters.

    ``busy_total`` is the ``repr`` of the float sum of per-element busy
    time — the exact string the executor perf gate pins in its
    baselines, so routing the gate through this view changes nothing.
    """

    __slots__ = ("_machine",)

    def __init__(self, machine: "Machine"):
        self._machine = machine

    def stats(self) -> dict[str, object]:
        nodes = self._machine.nodes
        return {
            "n_nodes": len(nodes),
            "busy_total": repr(sum(node.stats.busy_time_s for node in nodes)),
            "tuples_processed": sum(n.stats.tuples_processed for n in nodes),
            "messages_sent": sum(n.stats.messages_sent for n in nodes),
            "messages_received": sum(n.stats.messages_received for n in nodes),
            "bytes_sent": sum(n.stats.bytes_sent for n in nodes),
            "bytes_received": sum(n.stats.bytes_received for n in nodes),
            "processes_started": sum(n.stats.processes_started for n in nodes),
        }

    def reset(self) -> None:
        for node in self._machine.nodes:
            node.stats = type(node.stats)()


class FaultSwitchboard:
    """The one place element/link fault state changes.

    ``Machine.fail_node``/``fail_link``/restore are thin delegates over
    this board, and :class:`~repro.core.faults.FaultInjector` reaches
    the machine through those same delegates — so every path that
    degrades the machine flows through one facade.  :meth:`scope` wraps
    a set of faults in a context manager that guarantees restore.
    """

    __slots__ = ("_machine",)

    def __init__(self, machine: "Machine"):
        self._machine = machine

    def fail_node(self, node_id: int) -> bool:
        """Take an element down; True if it was up (its links go with it)."""
        machine = self._machine
        machine.node(node_id)  # validates
        if node_id in machine._down_nodes:
            return False
        machine._down_nodes.add(node_id)
        # A dead element only changes routes that could traverse it:
        # columns where it was already unreachable stay exact.
        cols = machine._fault_dist_cols
        for dest in [d for d, col in cols.items() if col[node_id] >= 0]:
            del cols[dest]
        return True

    def restore_node(self, node_id: int) -> bool:
        machine = self._machine
        machine.node(node_id)
        if node_id not in machine._down_nodes:
            return False
        machine._down_nodes.discard(node_id)
        # A revived element can shorten any route; recompute lazily.
        machine._fault_dist_cols.clear()
        return True

    def fail_link(self, u: int, v: int) -> bool:
        """Fail the (bidirectional) link between two adjacent elements."""
        machine = self._machine
        if v not in machine.topology.neighbors(u):
            raise MachineError(f"no link between elements {u} and {v}")
        if (u, v) in machine._down_links:
            return False
        machine._down_links.add((u, v))
        machine._down_links.add((v, u))
        # BFS shortest paths only cross edges between consecutive
        # levels, so a cut link leaves a destination's distances intact
        # unless both ends were reachable exactly one hop apart.
        cols = machine._fault_dist_cols
        stale = [
            dest
            for dest, col in cols.items()
            if col[u] >= 0 and col[v] >= 0 and abs(col[u] - col[v]) == 1
        ]
        for dest in stale:
            del cols[dest]
        return True

    def restore_link(self, u: int, v: int) -> bool:
        machine = self._machine
        if (u, v) not in machine._down_links:
            return False
        machine._down_links.discard((u, v))
        machine._down_links.discard((v, u))
        machine._fault_dist_cols.clear()
        return True

    def active(self) -> dict[str, list]:
        """The current fault set (down elements, one entry per link)."""
        machine = self._machine
        return {
            "nodes": sorted(machine._down_nodes),
            "links": sorted(
                (u, v) for u, v in machine._down_links if u < v
            ),
        }

    def scope(
        self,
        nodes: tuple[int, ...] | list[int] = (),
        links: tuple[tuple[int, int], ...] | list[tuple[int, int]] = (),
        injector=None,
    ) -> "FaultScope":
        return FaultScope(self._machine, nodes=nodes, links=links, injector=injector)


class FaultScope:
    """Scoped degradation with guaranteed restore.

    ``with machine.faults(nodes=[3], links=[(0, 1)]): ...`` fails the
    given elements/links on entry and restores — in reverse order — on
    exit, exception or not.  Only faults this scope actually introduced
    are restored: an element already down on entry stays down.  Faults
    added mid-scope through :meth:`fail_node`/:meth:`fail_link` join
    the restore list.  With an *injector*
    (:meth:`~repro.core.faults.FaultInjector.scope`), every transition
    routes through the injector so it lands in the deterministic
    injection log (and element failures also crash resident processes).
    """

    def __init__(
        self,
        machine: "Machine",
        nodes: tuple[int, ...] | list[int] = (),
        links: tuple[tuple[int, int], ...] | list[tuple[int, int]] = (),
        injector=None,
    ):
        self._machine = machine
        self._injector = injector
        self._pending_nodes = list(nodes)
        self._pending_links = [tuple(link) for link in links]
        self._failed_nodes: list[int] = []
        self._failed_links: list[tuple[int, int]] = []

    def __enter__(self) -> "FaultScope":
        try:
            for node_id in self._pending_nodes:
                self.fail_node(node_id)
            for u, v in self._pending_links:
                self.fail_link(u, v)
        except BaseException:
            self._restore_all()
            raise
        return self

    def fail_node(self, node_id: int) -> None:
        """Fail one element inside the scope (restored on exit)."""
        if self._machine.node_is_up(node_id):
            self._failed_nodes.append(node_id)
        if self._injector is not None:
            self._injector.crash_element(node_id)
        else:
            self._machine.fail_node(node_id)

    def fail_link(self, u: int, v: int) -> None:
        """Cut one link inside the scope (restored on exit)."""
        if (u, v) not in self._machine._down_links:
            self._failed_links.append((u, v))
        if self._injector is not None:
            self._injector.fail_link(u, v)
        else:
            self._machine.fail_link(u, v)

    def _restore_all(self) -> None:
        for u, v in reversed(self._failed_links):
            if self._injector is not None:
                self._injector.restore_link(u, v)
            else:
                self._machine.restore_link(u, v)
        self._failed_links.clear()
        for node_id in reversed(self._failed_nodes):
            if self._injector is not None:
                self._injector.restore_element(node_id)
            else:
                self._machine.restore_node(node_id)
        self._failed_nodes.clear()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._restore_all()
        return False


class Machine:
    """A configured PRISMA multi-computer instance."""

    def __init__(self, config: MachineConfig | None = None):
        self.config = config or MachineConfig()
        self.topology: Topology = build_topology(self.config)
        self.router = Router(self.topology)
        self.nodes: list[ProcessingElement] = []
        for node_id in range(self.config.n_nodes):
            disk = None
            if node_id in self.config.disk_nodes:
                disk = Disk(
                    node=node_id,
                    access_time_s=self.config.disk_access_time_s,
                    transfer_bps=self.config.disk_transfer_bps,
                    page_bytes=self.config.disk_page_bytes,
                )
            self.nodes.append(
                ProcessingElement(node_id, self.config.memory_bytes, disk)
            )
        self._nearest_disk: list[int] = self._compute_nearest_disks()
        # Fault state: failed elements / directed-link pairs.  Empty in
        # the fault-free case, so the analytic hot path pays only two
        # truthiness checks.  Routes under faults are recomputed by BFS
        # into per-destination distance columns; a new fault invalidates
        # only the destinations it can actually affect (see fail_link).
        self._down_nodes: set[int] = set()
        self._down_links: set[tuple[int, int]] = set()
        self._fault_dist_cols: dict[int, list[int]] = {}
        #: The fault facade: all fault-state transitions run through it.
        self.fault_board = FaultSwitchboard(self)
        self._observatory: Observatory | None = None

    def observe(self) -> Observatory:
        """Machine-level observation facade (source ``nodes``)."""
        if self._observatory is None:
            observatory = Observatory()
            observatory.register("nodes", MachineNodesView(self))
            self._observatory = observatory
        return self._observatory

    # -- structure ------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self.config.n_nodes

    def node(self, node_id: int) -> ProcessingElement:
        if not 0 <= node_id < self.n_nodes:
            raise MachineError(f"no such processing element: {node_id}")
        return self.nodes[node_id]

    def disk_nodes(self) -> list[ProcessingElement]:
        """All elements that have secondary storage."""
        return [pe for pe in self.nodes if pe.has_disk]

    def _compute_nearest_disks(self) -> list[int]:
        disks = [pe.node_id for pe in self.nodes if pe.has_disk]
        if not disks:
            return [-1] * self.n_nodes
        nearest = []
        for node_id in range(self.n_nodes):
            best = min(disks, key=lambda d: (self.router.hops(node_id, d), d))
            nearest.append(best)
        return nearest

    def nearest_disk_node(self, node_id: int) -> int:
        """The disk-equipped element closest to *node_id*.

        Raises :class:`MachineError` when the machine has no disks at all
        (a purely transient configuration cannot offer stable storage).
        """
        nearest = self._nearest_disk[node_id]
        if nearest < 0:
            raise MachineError("machine has no disk-equipped processing elements")
        return nearest

    # -- faults ----------------------------------------------------------------
    # Thin delegates over the FaultSwitchboard facade; use
    # ``machine.faults(...)`` for scoped faults with guaranteed restore.

    def fail_node(self, node_id: int) -> None:
        """Take a processing element down (its links go with it)."""
        self.fault_board.fail_node(node_id)

    def restore_node(self, node_id: int) -> None:
        self.fault_board.restore_node(node_id)

    def fail_link(self, u: int, v: int) -> None:
        """Fail the (bidirectional) link between two adjacent elements."""
        self.fault_board.fail_link(u, v)

    def restore_link(self, u: int, v: int) -> None:
        self.fault_board.restore_link(u, v)

    def faults(
        self,
        nodes: tuple[int, ...] | list[int] = (),
        links: tuple[tuple[int, int], ...] | list[tuple[int, int]] = (),
    ) -> FaultScope:
        """Scoped degradation: ``with machine.faults(nodes=[3]): ...``.

        Fails the given elements/links on entry and guarantees restore
        on exit (exception or not); see :class:`FaultScope`.  This is
        topology-level only — to also crash resident processes and log
        the injection, use :meth:`FaultInjector.scope
        <repro.core.faults.FaultInjector.scope>`.
        """
        return self.fault_board.scope(nodes=nodes, links=links)

    def node_is_up(self, node_id: int) -> bool:
        return node_id not in self._down_nodes

    @property
    def has_faults(self) -> bool:
        return bool(self._down_nodes) or bool(self._down_links)

    def _fault_distances_to(self, destination: int) -> list[int]:
        """Hop distances to *destination* avoiding down elements/links.

        One BFS per destination (not per pair), memoized until a fault
        that can affect it; deterministic (BFS expands neighbors in
        topology order).  -1 marks unreachable elements.
        """
        col = self._fault_dist_cols.get(destination)
        if col is not None:
            return col
        down_nodes = self._down_nodes
        down_links = self._down_links
        col = [-1] * self.n_nodes
        if destination not in down_nodes:
            col[destination] = 0
            frontier = deque([destination])
            neighbors = self.topology.neighbors
            while frontier:
                node = frontier.popleft()
                d = col[node] + 1
                for neighbor in neighbors(node):
                    if (
                        col[neighbor] >= 0
                        or neighbor in down_nodes
                        or (node, neighbor) in down_links
                    ):
                        continue
                    col[neighbor] = d
                    frontier.append(neighbor)
        self._fault_dist_cols[destination] = col
        return col

    def _hops_under_faults(self, source: int, destination: int) -> int:
        """Shortest path length avoiding down elements/links, -1 if cut."""
        if source in self._down_nodes:
            return -1
        return self._fault_distances_to(destination)[source]

    def reachable(self, source: int, destination: int) -> bool:
        """Can *source* currently reach *destination*?"""
        if not self.has_faults or source == destination:
            return source not in self._down_nodes
        return self._hops_under_faults(source, destination) >= 0

    def current_hops(self, source: int, destination: int) -> int:
        """Link hops between two elements under the current fault set.

        Fault-free this is the router's closed-form answer; with faults
        it is the detour length (-1 when the pair is cut).  Replica-
        aware read routing ranks fragment copies with this.
        """
        if source == destination:
            return 0 if source not in self._down_nodes else -1
        if self.has_faults:
            return self._hops_under_faults(source, destination)
        return self.router.hops(source, destination)

    # -- analytic cost model ----------------------------------------------------

    def transfer_time(self, source: int, destination: int, n_bytes: int) -> float:
        """Simulated time to move *n_bytes* from one element to another.

        Packets are cut through the shortest path with pipelining: the
        first packet pays the full path (per-hop switch delay + link
        serialization), subsequent packets stream behind it at one
        packet-service-time intervals.  Local "transfers" are free — the
        paper's processes on the same element share no memory but the
        runtime passes references.
        """
        if source == destination or n_bytes <= 0:
            return 0.0
        config = self.config
        if self._down_nodes or self._down_links:
            hops = self._hops_under_faults(source, destination)
            if hops < 0:
                raise LinkDownError(
                    f"no route from element {source} to {destination}:"
                    f" down elements {sorted(self._down_nodes)},"
                    f" down links {sorted(self._down_links)}"
                )
        else:
            hops = self.router.hops(source, destination)
        packets = config.packets_for_bytes(n_bytes)
        service = config.packet_service_time_s
        pipeline_fill = hops * (service + config.switch_delay_s)
        return pipeline_fill + (packets - 1) * service

    def message_time(self, source: int, destination: int) -> float:
        """Latency of a minimal control message (one packet)."""
        return self.transfer_time(source, destination, 1)

    def broadcast_time(self, source: int, n_bytes: int) -> float:
        """Time to get *n_bytes* from *source* to every other element.

        Modelled as the worst single destination (the runtime forwards
        along a BFS tree, so the critical path is the farthest node).
        """
        if self.n_nodes == 1:
            return 0.0
        return max(
            self.transfer_time(source, destination, n_bytes)
            for destination in range(self.n_nodes)
            if destination != source
        )

    def cpu_time(self, tuples: int = 0, hashes: int = 0, compares: int = 0) -> float:
        """CPU cost of a batch of work on one element."""
        config = self.config
        return (
            tuples * config.cpu_tuple_cost_s
            + hashes * config.cpu_hash_cost_s
            + compares * config.cpu_compare_cost_s
        )

    def startup_time(self, n_processes: int = 1) -> float:
        """Cost of spawning *n_processes* (POOL-X process creation)."""
        return n_processes * self.config.cpu_start_cost_s

    def disk_time(self, node_id: int, n_bytes: int, sequential: bool = True) -> float:
        """Cost of a disk access of *n_bytes* at *node_id*'s nearest disk.

        The transfer to reach the disk-equipped element (if remote) is
        included, since log forces cross the network in PRISMA.
        """
        disk_node = self.nearest_disk_node(node_id)
        disk = self.nodes[disk_node].disk
        assert disk is not None
        network = self.transfer_time(node_id, disk_node, n_bytes)
        return network + disk.access_cost(n_bytes, sequential=sequential)

    # -- reporting ---------------------------------------------------------------

    def utilization(self, elapsed_s: float) -> dict[int, float]:
        """Per-element busy fraction over an *elapsed_s* window."""
        if elapsed_s <= 0:
            return {pe.node_id: 0.0 for pe in self.nodes}
        return {
            pe.node_id: min(1.0, pe.stats.busy_time_s / elapsed_s)
            for pe in self.nodes
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(n={self.n_nodes}, topology={self.topology.name},"
            f" disks={len(self.disk_nodes())})"
        )
