"""Hardware parameters of the simulated PRISMA multi-computer.

Defaults follow Section 3.2 of the paper: 64 processing elements, four
communication links per element running at 10 Mbit/s, 16 MByte of local
main memory each, 256-bit network packets, and a mesh-like or chordal-ring
interconnect.  Some processing elements are additionally connected to a
disk and together implement stable storage.

The CPU and disk rate parameters are not in the paper (it predates its own
prototype); they are era-plausible constants used by the execution cost
model, and every benchmark reports *relative* factors so their absolute
values only set the scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import MachineError

MEBIBYTE = 1024 * 1024

#: Topology names accepted by :func:`repro.machine.topology.build_topology`.
TOPOLOGIES = ("mesh", "torus", "chordal_ring", "ring", "hypercube", "complete")


@dataclass(frozen=True, slots=True)
class MachineConfig:
    """Immutable description of one PRISMA multi-computer instance.

    Attributes
    ----------
    n_nodes:
        Number of processing elements (the prototype plans 64).
    links_per_node:
        Communication links per element; topologies whose degree exceeds
        this are rejected.
    link_bandwidth_bps:
        Bandwidth of one link, bits per second (10 Mbit/s in the paper).
    packet_bits:
        Network packet size in bits (256 in the paper).
    memory_bytes:
        Local main memory per element (16 MByte in the paper).
    topology:
        One of :data:`TOPOLOGIES`.
    chord_skips:
        Extra chord lengths for the chordal-ring topology (the plain ring
        links are always present).
    disk_nodes:
        Indices of the elements that also have secondary storage; these
        implement stable storage for logging and recovery.
    switch_delay_s:
        Fixed per-hop switching latency added to each packet forward.
    cpu_tuple_cost_s:
        Simulated time for one tuple touched by a sequential operator
        (scan, projection output, ...).
    cpu_hash_cost_s:
        Simulated time for one hash-table build or probe.
    cpu_compare_cost_s:
        Simulated time for one comparison (sorting, merging, predicates).
    cpu_start_cost_s:
        Fixed cost of starting one operator/process on an element (process
        creation in POOL-X is cheap but not free).
    disk_access_time_s:
        Average positioning time for one disk access (seek + rotation).
    disk_transfer_bps:
        Sustained disk transfer rate in bytes/second.
    disk_page_bytes:
        Unit of disk transfer.
    """

    n_nodes: int = 64
    links_per_node: int = 4
    link_bandwidth_bps: float = 10_000_000.0
    packet_bits: int = 256
    memory_bytes: int = 16 * MEBIBYTE
    topology: str = "mesh"
    chord_skips: tuple[int, ...] = (8,)
    disk_nodes: tuple[int, ...] = field(default_factory=tuple)
    switch_delay_s: float = 2e-6
    cpu_tuple_cost_s: float = 5e-6
    cpu_hash_cost_s: float = 1e-5
    cpu_compare_cost_s: float = 2e-6
    cpu_start_cost_s: float = 1e-3
    disk_access_time_s: float = 0.025
    disk_transfer_bps: float = 1_000_000.0
    disk_page_bytes: int = 8192

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise MachineError(f"n_nodes must be positive, got {self.n_nodes}")
        if self.topology not in TOPOLOGIES:
            raise MachineError(
                f"unknown topology {self.topology!r}; expected one of {TOPOLOGIES}"
            )
        if self.links_per_node < 1:
            raise MachineError("links_per_node must be positive")
        if self.link_bandwidth_bps <= 0:
            raise MachineError("link_bandwidth_bps must be positive")
        if self.packet_bits <= 0:
            raise MachineError("packet_bits must be positive")
        if self.memory_bytes <= 0:
            raise MachineError("memory_bytes must be positive")
        bad_disks = [n for n in self.disk_nodes if not 0 <= n < self.n_nodes]
        if bad_disks:
            raise MachineError(f"disk_nodes out of range: {bad_disks}")

    # -- derived quantities -------------------------------------------------

    @property
    def packet_bytes(self) -> int:
        """Payload size of one packet, rounded up to whole bytes."""
        return (self.packet_bits + 7) // 8

    @property
    def packet_service_time_s(self) -> float:
        """Time for one link to serialize one packet."""
        return self.packet_bits / self.link_bandwidth_bps

    @property
    def link_packets_per_second(self) -> float:
        """Raw capacity of a single link, in packets/second."""
        return self.link_bandwidth_bps / self.packet_bits

    def packets_for_bytes(self, n_bytes: int) -> int:
        """Number of packets needed to carry *n_bytes* of payload."""
        if n_bytes <= 0:
            return 0
        return (n_bytes + self.packet_bytes - 1) // self.packet_bytes

    def with_(self, **overrides: Any) -> "MachineConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **overrides)


def paper_prototype(disk_every: int = 8) -> MachineConfig:
    """The 64-element prototype of Section 3.2.

    Every *disk_every*-th processing element is given a disk, which is
    enough to implement stable storage for the whole machine.
    """
    disks = tuple(range(0, 64, disk_every))
    return MachineConfig(n_nodes=64, disk_nodes=disks)


def small_machine(n_nodes: int = 4, topology: str = "mesh") -> MachineConfig:
    """A small machine, convenient for tests: every node has a disk."""
    return MachineConfig(
        n_nodes=n_nodes, topology=topology, disk_nodes=tuple(range(n_nodes))
    )
