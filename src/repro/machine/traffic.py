"""Synthetic traffic generators for the network experiments.

The paper reports its 20k packets/s/PE figure for "various simulations"
without naming the traffic pattern; uniform random traffic is the
standard choice and the hardest honest case for a mesh, so E1 uses it.
Hotspot and nearest-neighbour patterns bound the claim from below and
above.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from repro.errors import MachineError
from repro.machine.network import PacketNetwork

DestinationChooser = Callable[[random.Random, int, int], int]


def uniform_destination(rng: random.Random, source: int, n_nodes: int) -> int:
    """Any node but the source, uniformly."""
    destination = rng.randrange(n_nodes - 1)
    return destination if destination < source else destination + 1


def hotspot_destination(fraction: float = 0.3, hotspot: int = 0) -> DestinationChooser:
    """With probability *fraction* send to *hotspot*, else uniform."""

    def choose(rng: random.Random, source: int, n_nodes: int) -> int:
        if rng.random() < fraction and source != hotspot:
            return hotspot
        return uniform_destination(rng, source, n_nodes)

    return choose


def neighbour_destination(rng: random.Random, source: int, n_nodes: int) -> int:
    """Send to an adjacent node id (ring neighbour) — minimal-distance load."""
    offset = rng.choice((-1, 1))
    return (source + offset) % n_nodes


class PoissonTraffic:
    """Open-loop Poisson packet arrivals at every node.

    Parameters
    ----------
    network:
        The packet network under test.
    rate_per_node_pps:
        Mean injection rate per node, packets/second (the offered load).
    seed:
        Seed for the deterministic pseudo-random stream.
    choose_destination:
        Traffic pattern; defaults to uniform random.
    """

    def __init__(
        self,
        network: PacketNetwork,
        rate_per_node_pps: float,
        seed: int = 0,
        choose_destination: DestinationChooser = uniform_destination,
    ):
        if rate_per_node_pps <= 0:
            raise MachineError(f"offered load must be positive: {rate_per_node_pps}")
        self.network = network
        self.rate = rate_per_node_pps
        self.choose_destination = choose_destination
        self._rng = random.Random(seed)
        self._stop_at: float | None = None
        # Reused bound methods: one heap tuple per arrival, no per-event
        # bound-method or closure allocation.
        self._fire_cb = self._fire
        self._expovariate = self._rng.expovariate

    def start(self, duration_s: float) -> None:
        """Schedule arrivals at every node for *duration_s* from now."""
        loop = self.network.loop
        self._stop_at = loop.now + duration_s
        for node in range(self.network.topology.n_nodes):
            self._schedule_next(node)

    def _schedule_next(self, node: int) -> None:
        loop = self.network.loop
        gap = self._expovariate(self.rate)
        when = loop.now + gap
        if self._stop_at is None or when > self._stop_at:
            return
        loop.schedule_call_at(when, self._fire_cb, node)

    def _fire(self, node: int) -> None:
        network = self.network
        destination = self.choose_destination(
            self._rng, node, network.topology.n_nodes
        )
        network.inject(node, destination)
        self._schedule_next(node)


def run_load_point(
    network: PacketNetwork,
    rate_per_node_pps: float,
    warmup_s: float = 0.02,
    measure_s: float = 0.1,
    seed: int = 0,
    choose_destination: DestinationChooser = uniform_destination,
    drain_s: float | None = None,
) -> dict[str, float]:
    """Measure one point of the load/throughput curve.

    Runs *warmup_s* of traffic to fill queues, resets counters, then
    measures for *measure_s*.  Returns a summary dict with offered and
    delivered per-node throughput, latency, and drop statistics.

    Throughput is the delivery *flux* during the window
    (``delivered_in_window / measure_s``), which is what saturates; the
    latency and hop statistics cover every packet injected during the
    window, so after the window closes the loop keeps running — bounded
    by *drain_s* extra simulated seconds (default: ``warmup_s +
    measure_s``) — until those in-flight packets are delivered or
    dropped.  ``in_flight`` is sampled at window close, before the
    drain, so it reflects the steady-state backlog.
    """
    traffic = PoissonTraffic(
        network, rate_per_node_pps, seed=seed, choose_destination=choose_destination
    )
    traffic.start(warmup_s + measure_s)
    loop = network.loop
    loop.run(until=loop.now + warmup_s)
    network.start_measuring()
    measure_start = loop.now
    loop.run(until=measure_start + measure_s)
    window = loop.now - measure_start
    stats = network.stats
    delivered_in_window = stats.delivered
    in_flight_at_close = network.in_flight()
    # Drain: injections have ceased (the traffic window is over), so we
    # only wait — bounded — for the packets injected during the window
    # to reach their destinations and contribute their latencies.
    drain_deadline = loop.now + (
        drain_s if drain_s is not None else warmup_s + measure_s
    )
    while (
        stats.delivered + stats.dropped < stats.injected
        and loop.now < drain_deadline
        and loop.pending
    ):
        loop.run(until=drain_deadline, max_events=8192)
    n_nodes = network.topology.n_nodes
    return {
        "offered_pps_per_node": rate_per_node_pps,
        "delivered_pps_per_node": (
            delivered_in_window / window / n_nodes if window > 0 else 0.0
        ),
        "mean_latency_s": stats.mean_latency_s(),
        "max_latency_s": stats.max_latency_s,
        "mean_hops": stats.mean_hops(),
        "injected": float(stats.injected),
        "delivered": float(stats.delivered),
        "delivered_in_window": float(delivered_in_window),
        "dropped": float(stats.dropped),
        "in_flight": float(in_flight_at_close),
    }
