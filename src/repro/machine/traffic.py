"""Synthetic traffic generators for the network experiments.

The paper reports its 20k packets/s/PE figure for "various simulations"
without naming the traffic pattern; uniform random traffic is the
standard choice and the hardest honest case for a mesh, so E1 uses it.
Hotspot and nearest-neighbour patterns bound the claim from below and
above.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from repro.errors import MachineError
from repro.machine.network import PacketNetwork

DestinationChooser = Callable[[random.Random, int, int], int]


def uniform_destination(rng: random.Random, source: int, n_nodes: int) -> int:
    """Any node but the source, uniformly."""
    destination = rng.randrange(n_nodes - 1)
    return destination if destination < source else destination + 1


def hotspot_destination(fraction: float = 0.3, hotspot: int = 0) -> DestinationChooser:
    """With probability *fraction* send to *hotspot*, else uniform."""

    def choose(rng: random.Random, source: int, n_nodes: int) -> int:
        if rng.random() < fraction and source != hotspot:
            return hotspot
        return uniform_destination(rng, source, n_nodes)

    return choose


def neighbour_destination(rng: random.Random, source: int, n_nodes: int) -> int:
    """Send to an adjacent node id (ring neighbour) — minimal-distance load."""
    offset = rng.choice((-1, 1))
    return (source + offset) % n_nodes


class PoissonTraffic:
    """Open-loop Poisson packet arrivals at every node.

    Parameters
    ----------
    network:
        The packet network under test.
    rate_per_node_pps:
        Mean injection rate per node, packets/second (the offered load).
    seed:
        Seed for the deterministic pseudo-random stream.
    choose_destination:
        Traffic pattern; defaults to uniform random.
    """

    def __init__(
        self,
        network: PacketNetwork,
        rate_per_node_pps: float,
        seed: int = 0,
        choose_destination: DestinationChooser = uniform_destination,
    ):
        if rate_per_node_pps <= 0:
            raise MachineError(f"offered load must be positive: {rate_per_node_pps}")
        self.network = network
        self.rate = rate_per_node_pps
        self.choose_destination = choose_destination
        self._rng = random.Random(seed)
        self._stop_at: float | None = None

    def start(self, duration_s: float) -> None:
        """Schedule arrivals at every node for *duration_s* from now."""
        loop = self.network.loop
        self._stop_at = loop.now + duration_s
        for node in range(self.network.topology.n_nodes):
            self._schedule_next(node)

    def _schedule_next(self, node: int) -> None:
        loop = self.network.loop
        gap = self._rng.expovariate(self.rate)
        when = loop.now + gap
        if self._stop_at is None or when > self._stop_at:
            return

        def fire() -> None:
            destination = self.choose_destination(
                self._rng, node, self.network.topology.n_nodes
            )
            self.network.inject(node, destination)
            self._schedule_next(node)

        loop.schedule_at(when, fire)


def run_load_point(
    network: PacketNetwork,
    rate_per_node_pps: float,
    warmup_s: float = 0.02,
    measure_s: float = 0.1,
    seed: int = 0,
    choose_destination: DestinationChooser = uniform_destination,
) -> dict[str, float]:
    """Measure one point of the load/throughput curve.

    Runs *warmup_s* of traffic to fill queues, resets counters, then
    measures for *measure_s*.  Returns a summary dict with offered and
    delivered per-node throughput, latency, and drop statistics.
    """
    traffic = PoissonTraffic(
        network, rate_per_node_pps, seed=seed, choose_destination=choose_destination
    )
    traffic.start(warmup_s + measure_s)
    network.loop.run(until=network.loop.now + warmup_s)
    network.start_measuring()
    measure_start = network.loop.now
    network.loop.run(until=measure_start + measure_s)
    # Let already-injected packets drain so their latencies are counted,
    # but do not credit packets injected after the window.
    window = network.loop.now - measure_start
    stats = network.stats
    return {
        "offered_pps_per_node": rate_per_node_pps,
        "delivered_pps_per_node": network.throughput_per_node_pps(window),
        "mean_latency_s": stats.mean_latency_s(),
        "max_latency_s": stats.max_latency_s,
        "mean_hops": stats.mean_hops(),
        "injected": float(stats.injected),
        "delivered": float(stats.delivered),
        "dropped": float(stats.dropped),
        "in_flight": float(network.in_flight()),
    }
