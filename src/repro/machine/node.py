"""Processing elements of the simulated multi-computer.

Each element owns local main memory (a :class:`MemoryAccount` over the
16 MByte budget), optionally a disk, and accumulates busy-time so that the
scheduler can balance load and reports can show per-element utilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.disk import Disk
from repro.machine.memory import MemoryAccount


@dataclass(slots=True)
class NodeStats:
    """Work counters for one processing element."""

    busy_time_s: float = 0.0
    tuples_processed: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    processes_started: int = 0


class ProcessingElement:
    """One node of the multi-computer: CPU + local memory (+ disk)."""

    def __init__(self, node_id: int, memory_bytes: int, disk: Disk | None = None):
        self.node_id = node_id
        self.memory = MemoryAccount(memory_bytes, owner=f"PE{node_id}")
        self.disk = disk
        self.stats = NodeStats()

    @property
    def has_disk(self) -> bool:
        return self.disk is not None

    def charge(self, seconds: float, tuples: int = 0) -> None:
        """Account *seconds* of CPU work (and optionally tuples touched)."""
        self.stats.busy_time_s += seconds
        self.stats.tuples_processed += tuples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        disk = "+disk" if self.has_disk else ""
        return f"PE({self.node_id}{disk}, mem={self.memory.used}/{self.memory.capacity})"
