"""Write-ahead logging to the disk-equipped processing elements.

Section 3.2: "some of the processing elements will also be connected to
secondary storage (disk).  Using these, the multi-computer system
implements stable storage and automatic recovery upon system failures."

Each durable OFM keeps a WAL; records buffer in memory and are *forced*
(written through to the nearest disk element, across the network if
necessary) before the OFM votes in two-phase commit.  A checkpoint
writes a full fragment snapshot and truncates the log.

Records serialize via ``repr``/``ast.literal_eval`` — rows contain only
SQL literals, so this is loss-free and needs no external format.
"""

from __future__ import annotations

import ast as _pyast
from dataclasses import dataclass
from typing import ClassVar

from repro.errors import RecoveryError
from repro.machine.machine import Machine


@dataclass(frozen=True)
class LogRecord:
    """Base class; ``kind`` discriminates on the wire."""

    txn_id: int
    kind: ClassVar[str] = "?"

    def payload(self) -> tuple:
        return ()

    def serialize(self) -> tuple:
        return (self.kind, self.txn_id, *self.payload())


@dataclass(frozen=True)
class InsertRecord(LogRecord):
    rid: int
    row: tuple
    kind: ClassVar[str] = "I"

    def payload(self) -> tuple:
        return (self.rid, self.row)


@dataclass(frozen=True)
class DeleteRecord(LogRecord):
    rid: int
    row: tuple
    kind: ClassVar[str] = "D"

    def payload(self) -> tuple:
        return (self.rid, self.row)


@dataclass(frozen=True)
class UpdateRecord(LogRecord):
    rid: int
    old_row: tuple
    new_row: tuple
    kind: ClassVar[str] = "U"

    def payload(self) -> tuple:
        return (self.rid, self.old_row, self.new_row)


@dataclass(frozen=True)
class PrepareRecord(LogRecord):
    kind: ClassVar[str] = "P"


@dataclass(frozen=True)
class CommitRecord(LogRecord):
    kind: ClassVar[str] = "C"


@dataclass(frozen=True)
class AbortRecord(LogRecord):
    kind: ClassVar[str] = "A"


_RECORD_TYPES = {
    "I": lambda txn, payload: InsertRecord(txn, payload[0], tuple(payload[1])),
    "D": lambda txn, payload: DeleteRecord(txn, payload[0], tuple(payload[1])),
    "U": lambda txn, payload: UpdateRecord(
        txn, payload[0], tuple(payload[1]), tuple(payload[2])
    ),
    "P": lambda txn, payload: PrepareRecord(txn),
    "C": lambda txn, payload: CommitRecord(txn),
    "A": lambda txn, payload: AbortRecord(txn),
}


def _decode(serialized: tuple) -> LogRecord:
    kind, txn_id, *payload = serialized
    builder = _RECORD_TYPES.get(kind)
    if builder is None:
        raise RecoveryError(f"corrupt log record kind {kind!r}")
    return builder(txn_id, payload)


class WriteAheadLog:
    """One OFM's durable log, stored on the nearest disk element.

    Parameters
    ----------
    machine:
        The multi-computer (for disk placement and cost accounting).
    owner_node:
        The element hosting the OFM; forces travel from here to the
        nearest disk.
    name:
        Log identity; stable across restarts (``wal/<name>/...`` keys).
    """

    def __init__(self, machine: Machine, owner_node: int, name: str):
        self.machine = machine
        self.owner_node = owner_node
        self.name = name
        disk_node = machine.nearest_disk_node(owner_node)
        self.disk = machine.nodes[disk_node].disk
        assert self.disk is not None
        self._buffer: list[LogRecord] = []
        self._next_chunk = self._recover_next_chunk()
        self.forces = 0
        self.records_written = 0

    # -- keys -----------------------------------------------------------------

    @property
    def _chunk_prefix(self) -> str:
        return f"wal/{self.name}/"

    @property
    def _snapshot_key(self) -> str:
        return f"snap/{self.name}"

    def _recover_next_chunk(self) -> int:
        existing = self.disk.keys(self._chunk_prefix)
        if not existing:
            return 0
        return max(int(key.rsplit("/", 1)[1]) for key in existing) + 1

    # -- appending ----------------------------------------------------------------

    def append(self, record: LogRecord) -> None:
        """Buffer a record (volatile until the next force)."""
        self._buffer.append(record)

    def force(self) -> float:
        """Write buffered records to stable storage.

        Returns the simulated time the force took (network hop to the
        disk element + sequential disk write); the caller charges it to
        the OFM's clock.
        """
        if not self._buffer:
            return 0.0
        payload = repr([record.serialize() for record in self._buffer]).encode("utf-8")
        key = f"{self._chunk_prefix}{self._next_chunk}"
        self._next_chunk += 1
        self.records_written += len(self._buffer)
        self._buffer.clear()
        self.forces += 1
        network = self.machine.transfer_time(
            self.owner_node, self.disk.node, len(payload)
        )
        return network + self.disk.write(key, payload, sequential=True)

    @property
    def pending(self) -> int:
        return len(self._buffer)

    # -- checkpointing ---------------------------------------------------------------

    def checkpoint(self, rows_with_rids: list[tuple[int, tuple]]) -> float:
        """Write a snapshot of the fragment and truncate the log.

        Returns the simulated cost.  Buffered records are forced first
        (they may belong to in-flight transactions and must survive).
        """
        cost = self.force()
        payload = repr(rows_with_rids).encode("utf-8")
        # Snapshot must land before old chunks disappear; order matters
        # for crash consistency (we only simulate the cost, but keep the
        # logical order honest).
        cost += self.machine.transfer_time(
            self.owner_node, self.disk.node, len(payload)
        )
        cost += self.disk.write(self._snapshot_key, payload, sequential=True)
        for key in self.disk.keys(self._chunk_prefix):
            self.disk.delete(key)
        self._next_chunk = 0
        return cost

    # -- recovery reads -----------------------------------------------------------------

    def read_snapshot(self) -> tuple[list[tuple[int, tuple]], float]:
        """(snapshot rows-with-rids, simulated cost); empty if none."""
        if self._snapshot_key not in self.disk:
            return [], 0.0
        payload, cost = self.disk.read(self._snapshot_key, sequential=True)
        rows = [  # prismalint: disable=PL101 -- recovery cost is charged via the disk read + transfer above
            (rid, tuple(row)) for rid, row in _pyast.literal_eval(payload.decode())
        ]
        cost += self.machine.transfer_time(self.disk.node, self.owner_node, len(payload))
        return rows, cost

    def read_records(self) -> tuple[list[LogRecord], float]:
        """All durable records in append order, plus the simulated cost."""
        records: list[LogRecord] = []
        cost = 0.0
        for key in sorted(
            self.disk.keys(self._chunk_prefix),
            key=lambda k: int(k.rsplit("/", 1)[1]),
        ):
            payload, read_cost = self.disk.read(key, sequential=True)
            cost += read_cost
            cost += self.machine.transfer_time(
                self.disk.node, self.owner_node, len(payload)
            )
            try:
                serialized = _pyast.literal_eval(payload.decode("utf-8"))
            except (ValueError, SyntaxError) as exc:
                raise RecoveryError(f"corrupt WAL chunk {key}: {exc}") from None
            records.extend(_decode(item) for item in serialized)
        return records, cost

    def wipe(self) -> None:
        """Remove all durable state (DROP TABLE)."""
        for key in self.disk.keys(self._chunk_prefix):
            self.disk.delete(key)
        self.disk.delete(self._snapshot_key)
        self._buffer.clear()
        self._next_chunk = 0

    def durable_bytes(self) -> int:
        total = sum(
            self.disk.size_of(key) for key in self.disk.keys(self._chunk_prefix)
        )
        return total + self.disk.size_of(self._snapshot_key)
