"""One-Fragment Managers: per-fragment database engines with WAL-based
durability (paper Section 2.5)."""

from repro.ofm.manager import OFMProfile, OneFragmentManager
from repro.ofm.wal import (
    AbortRecord,
    CommitRecord,
    DeleteRecord,
    InsertRecord,
    LogRecord,
    PrepareRecord,
    UpdateRecord,
    WriteAheadLog,
)

__all__ = [
    "AbortRecord",
    "CommitRecord",
    "DeleteRecord",
    "InsertRecord",
    "LogRecord",
    "OFMProfile",
    "OneFragmentManager",
    "PrepareRecord",
    "UpdateRecord",
    "WriteAheadLog",
]
