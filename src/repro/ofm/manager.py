"""One-Fragment Managers (paper Section 2.5).

"The DBMS software is organized as a fully distributed database system
in which the components are, so-called, One-Fragment Managers (OFM).
These OFMs are customized database systems that manage a single
relation fragment.  They contain all functions encountered in a
full-blown DBMS; such as local query optimizer, transaction management,
markings and cursor maintenance, and (various) storage structures.
[...] Several OFM types are envisioned, each equipped with the right
amount of tools.  For example, OFMs needed for query processing only,
do not require extensive crash recovery facilities.  Moreover, each OFM
is equipped with an expression compiler to generate routines
dynamically."

An :class:`OneFragmentManager` is a POOL-X process hosting one fragment:
its table + indexes live against the element's 16 MByte memory account,
its predicates run through the per-OFM expression-compiler cache, local
subplans execute through :class:`~repro.algebra.local_exec.LocalExecutor`
(charging simulated CPU to the element), and — in the ``FULL`` profile —
every update is WAL-logged so the fragment survives crashes.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.errors import ExecutionError, InvalidTransactionState
from repro.exec.evaluation import Evaluator
from repro.exec.operators import Row, WorkMeter
from repro.algebra.local_exec import LocalExecutor
from repro.algebra.plan import PlanNode
from repro.pool.process import PoolProcess
from repro.storage.cursor import Cursor
from repro.storage.markings import MarkingSet
from repro.storage.schema import Schema
from repro.storage.table import Table
from repro.ofm.wal import (
    AbortRecord,
    CommitRecord,
    DeleteRecord,
    InsertRecord,
    PrepareRecord,
    UpdateRecord,
    WriteAheadLog,
)


class OFMProfile(enum.Enum):
    """OFM types (Section 2.5): full-service vs query-only."""

    #: Durable fragment manager: WAL, 2PC participant, recoverable.
    FULL = "full"
    #: Transient manager for intermediate results: no logging, cheap.
    QUERY = "query"


@dataclass
class FragmentRecovery:
    """What one fragment's replay found (kept as ``ofm.last_recovery``)."""

    rows: int = 0
    cost: float = 0.0
    #: Transactions the local WAL shows durably committed.
    locally_committed: tuple[int, ...] = ()
    #: Prepared-but-undecided transactions that had to be resolved
    #: against the coordinator's commit log.
    in_doubt: tuple[int, ...] = ()
    #: Their resolutions, in the same order ("commit"/"abort").
    in_doubt_outcomes: tuple[str, ...] = ()

    def fingerprint_data(self) -> tuple:
        return (
            self.rows,
            round(self.cost, 12),
            self.locally_committed,
            self.in_doubt,
            self.in_doubt_outcomes,
        )


class OneFragmentManager(PoolProcess):
    """A customized database system for exactly one relation fragment."""

    def __init__(
        self,
        runtime,
        name: str,
        node_id: int,
        schema: Schema,
        profile: OFMProfile = OFMProfile.FULL,
        compiled_expressions: bool = True,
        disk_resident: bool = False,
    ):
        super().__init__(runtime, name, node_id)
        self.schema = schema
        self.profile = profile
        #: E3 baseline: a conventional disk-resident engine — every scan
        #: reads the fragment from disk, every update touches a page.
        #: PRISMA proper keeps this False (main memory as primary store).
        self.disk_resident = disk_resident
        self.table = Table(name, schema, memory=self.memory)
        self.markings = MarkingSet(self.table)
        self.evaluator = Evaluator(compiled=compiled_expressions)
        self.wal: WriteAheadLog | None = None
        if profile is OFMProfile.FULL:
            self.wal = WriteAheadLog(runtime.machine, node_id, name)
        #: Per-transaction undo chains (volatile; WAL is the durable copy).
        self._undo: dict[int, list] = {}
        self._prepared: set[int] = set()
        #: Transactions this OFM has durably committed (volatile mirror
        #: of the WAL's forced CommitRecords; rebuilt by recover()).
        #: In-doubt resolution consults it: a participant's own commit
        #: record is authoritative, e.g. on the 1PC fast path.
        self._committed: set[int] = set()
        #: Filled by recover(): what the last replay found.
        self.last_recovery: FragmentRecovery | None = None

    # -- helpers ------------------------------------------------------------------

    @property
    def machine(self):
        return self.runtime.machine

    def _charge_meter(self, meter: WorkMeter) -> None:
        seconds = self.machine.cpu_time(
            tuples=int(meter.tuples),
            hashes=int(meter.hashes),
            compares=int(meter.compares),
        )
        self.charge(seconds, tuples=int(meter.tuples))

    def _charge_disk_scan(self) -> None:
        """Disk-resident baseline: a scan reads the whole fragment."""
        if self.disk_resident and len(self.table):
            self.charge(
                self.machine.disk_time(
                    self.node_id, self.table.data_bytes, sequential=True
                )
            )

    def _charge_disk_touch(self, n_rows: int) -> None:
        """Disk-resident baseline: updates dirty one page per row."""
        if self.disk_resident and n_rows:
            page = self.machine.config.disk_page_bytes
            self.charge(
                self.machine.disk_time(self.node_id, n_rows * page, sequential=False)
            )

    def _predicate(self, predicate_expr) -> Callable[[Row], bool] | None:
        if predicate_expr is None:
            return None
        fn, _ = self.evaluator.predicate(predicate_expr)
        return fn

    # -- bulk loading -----------------------------------------------------------------

    def bulk_load(self, rows: Sequence[Row]) -> int:
        """Load rows outside any transaction (initial population).

        Durable OFMs snapshot the fragment afterwards, so the load
        survives crashes without replaying per-row log records.
        """
        count = 0
        for row in rows:
            self.table.insert(row)
            count += 1
        meter = WorkMeter(tuples=count)
        self._charge_meter(meter)
        if self.wal is not None:
            self.charge(self.wal.checkpoint(list(self.table.scan())))
        return count

    # -- transactional updates -----------------------------------------------------------

    def _log(self, record) -> None:
        if self.wal is not None:
            self.wal.append(record)

    def txn_insert(self, txn_id: int, row: Row) -> int:
        validated = self.table.schema.validate_row(row)
        rid = self.table.insert(validated)
        self._log(InsertRecord(txn_id, rid, validated))
        self._undo.setdefault(txn_id, []).append(("insert", rid, validated))
        self._charge_disk_touch(1)
        self._charge_meter(WorkMeter(tuples=1))
        return rid

    def txn_delete_where(self, txn_id: int, predicate_expr) -> int:
        predicate = self._predicate(predicate_expr)
        victims = [
            (rid, row)
            for rid, row in list(self.table.scan())
            if predicate is None or predicate(row)
        ]
        for rid, row in victims:
            self.table.delete(rid)
            self._log(DeleteRecord(txn_id, rid, row))
            self._undo.setdefault(txn_id, []).append(("delete", rid, row))
        self._charge_disk_scan()
        self._charge_disk_touch(len(victims))
        self._charge_meter(WorkMeter(tuples=len(self.table) + len(victims)))
        return len(victims)

    def txn_update_where(
        self,
        txn_id: int,
        predicate_expr,
        compute_new_row: Callable[[Row], Row],
    ) -> list[tuple[Row, Row]]:
        """Update matching rows; returns (old, new) pairs.

        New rows are computed by the caller-supplied function (built
        from compiled assignment expressions); rows whose fragment home
        changes under the table's fragmentation are the caller's problem
        — it receives the pairs and re-routes.
        """
        predicate = self._predicate(predicate_expr)
        changed: list[tuple[Row, Row]] = []
        for rid, row in list(self.table.scan()):
            if predicate is not None and not predicate(row):
                continue
            try:
                new_row = self.table.schema.validate_row(compute_new_row(row))
            except (TypeError, ZeroDivisionError) as exc:
                raise ExecutionError(f"UPDATE expression failed: {exc}") from None
            old = self.table.update(rid, new_row)
            self._log(UpdateRecord(txn_id, rid, old, new_row))
            self._undo.setdefault(txn_id, []).append(("update", rid, old, new_row))
            changed.append((old, new_row))
        self._charge_disk_scan()
        self._charge_disk_touch(len(changed))
        self._charge_meter(WorkMeter(tuples=len(self.table) + len(changed)))
        return changed

    # -- two-phase-commit participant ------------------------------------------------------

    def prepare(self, txn_id: int) -> bool:
        """Phase one: make the transaction's effects durable; vote."""
        if txn_id in self._prepared:
            return True
        self._log(PrepareRecord(txn_id))
        if self.wal is not None:
            self.charge(self.wal.force())
        self._prepared.add(txn_id)
        return True

    def commit(self, txn_id: int) -> None:
        self._log(CommitRecord(txn_id))
        if self.wal is not None:
            self.charge(self.wal.force())
        self._undo.pop(txn_id, None)
        self._prepared.discard(txn_id)
        self._committed.add(txn_id)

    def abort(self, txn_id: int) -> None:
        """Undo the transaction's local effects, newest first.

        A transaction without local state here is a no-op — crucially,
        one this OFM already *committed* must not get an AbortRecord
        appended after its CommitRecord (a halted-coordinator cleanup
        could otherwise flip a durably committed 1PC transaction to
        aborted at the next replay)."""
        if txn_id not in self._undo and txn_id not in self._prepared:
            return
        chain = self._undo.pop(txn_id, [])
        for entry in reversed(chain):
            action = entry[0]
            if action == "insert":
                _, rid, _row = entry
                if self.table.has_rid(rid):
                    self.table.delete(rid)
            elif action == "delete":
                _, rid, row = entry
                self.table.insert_with_rid(rid, row)
            else:  # update
                _, rid, old, _new = entry
                self.table.update(rid, old)
        self._log(AbortRecord(txn_id))
        if self.wal is not None:
            self.charge(self.wal.force())
        self._prepared.discard(txn_id)
        self._charge_meter(WorkMeter(tuples=len(chain)))

    def has_transaction_state(self, txn_id: int) -> bool:
        return txn_id in self._undo or txn_id in self._prepared

    def has_committed(self, txn_id: int) -> bool:
        """Did this OFM durably commit *txn_id*?  Authoritative for 1PC."""
        return txn_id in self._committed

    def in_doubt_transactions(self) -> list[int]:
        """Prepared transactions with no local decision yet (sorted)."""
        return sorted(self._prepared)

    # -- query processing --------------------------------------------------------------------

    def run_subplan(
        self,
        plan: PlanNode,
        extra_tables: dict[str, Sequence[Row]] | None = None,
        shared: dict[str, Sequence[Row]] | None = None,
    ) -> list[Row]:
        """Execute a local subplan.

        Base-table scans resolve to this OFM's fragment (whatever name
        the plan uses); *extra_tables* carries relations shipped here by
        the distributed executor.
        """
        fragment_rows = None

        def resolve(name: str) -> Sequence[Row]:
            nonlocal fragment_rows
            if extra_tables and name in extra_tables:
                return extra_tables[name]
            if fragment_rows is None:
                fragment_rows = list(self.table.rows())
            return fragment_rows

        meter = WorkMeter()
        executor = LocalExecutor(
            tables=resolve, shared=shared, evaluator=self.evaluator, meter=meter
        )
        rows = executor.run(plan)
        if fragment_rows is not None:
            self._charge_disk_scan()
        self._charge_meter(meter)
        return rows

    def scan_rows(self) -> list[Row]:
        self._charge_disk_scan()
        self._charge_meter(WorkMeter(tuples=len(self.table)))
        return list(self.table.rows())

    def filtered_scan(self, predicate_expr) -> tuple[list[Row], bool]:
        """Selection over the fragment, through an index when one fits.

        Looks for an equality conjunct with a matching hash/ordered
        index, or a range conjunct with a matching ordered index; the
        remaining conjuncts filter the candidates.  Returns
        ``(rows, used_index)``.  Falls back to a full scan (charging the
        full fragment) when no index applies.
        """
        from repro.exec.expressions import (
            ColumnRef,
            Comparison,
            Literal,
            and_,
            conjuncts,
        )
        from repro.storage.indexes import OrderedIndex

        candidates: list[int] | None = None
        remaining = list(conjuncts(predicate_expr))
        for i, conjunct in enumerate(remaining):
            if not (
                isinstance(conjunct, Comparison)
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, Literal)
                and conjunct.right.value is not None
            ):
                continue
            key_positions = (conjunct.left.index,)
            matching = [
                index
                for index in self.table.indexes.values()
                if index.key_positions == key_positions
            ]
            if not matching:
                continue
            value = conjunct.right.value
            if conjunct.op == "=":
                candidates = matching[0].lookup((value,))
            elif conjunct.op in ("<", "<=", ">", ">="):
                ordered = next(
                    (ix for ix in matching if isinstance(ix, OrderedIndex)), None
                )
                if ordered is None:
                    continue
                if conjunct.op in (">", ">="):
                    candidates = ordered.range(
                        low=(value,), include_low=conjunct.op == ">="
                    )
                else:
                    candidates = ordered.range(
                        high=(value,), include_high=conjunct.op == "<="
                    )
            else:
                continue
            del remaining[i]
            break
        if candidates is None:
            # No usable index: ordinary scan + filter.  The batch kernel
            # runs the whole fragment through one compiled pass (no
            # per-row predicate calls); charges are identical either way.
            self._charge_disk_scan()
            meter = WorkMeter(tuples=len(self.table))
            try:
                if self.evaluator.batch:
                    kernel, weight = self.evaluator.batch_predicate(predicate_expr)
                    rows = kernel(self.table.rows())
                else:
                    predicate, weight = self.evaluator.predicate(predicate_expr)
                    rows = [row for row in self.table.rows() if predicate(row)]
            except (TypeError, ZeroDivisionError) as exc:
                raise ExecutionError(f"predicate failed: {exc}") from None
            meter.compares += len(self.table) * weight
            self._charge_meter(meter)
            return rows, False
        rows = [self.table.get(rid) for rid in candidates if self.table.has_rid(rid)]
        meter = WorkMeter(hashes=1, tuples=len(rows))
        if remaining:
            residual = and_(*remaining)
            try:
                if self.evaluator.batch:
                    kernel, weight = self.evaluator.batch_predicate(residual)
                    rows = kernel(rows)
                else:
                    predicate, weight = self.evaluator.predicate(residual)
                    rows = [row for row in rows if predicate(row)]
            except (TypeError, ZeroDivisionError) as exc:
                raise ExecutionError(f"predicate failed: {exc}") from None
            meter.compares += len(candidates) * weight
        if self.disk_resident:
            # Index-to-page lookups are random accesses on disk.
            self._charge_disk_touch(len(rows))
        self._charge_meter(meter)
        return rows, True

    def open_cursor(self, predicate_expr=None, marking: str | None = None) -> Cursor:
        marking_obj = self.markings.get(marking) if marking else None
        return Cursor(self.table, marking_obj, self._predicate(predicate_expr))

    # -- index management ------------------------------------------------------------------------

    def create_index(
        self, name: str, columns: Sequence[str], unique: bool, method: str
    ) -> None:
        if method == "hash":
            self.table.create_hash_index(name, columns, unique)
        else:
            self.table.create_ordered_index(name, columns, unique)
        self._charge_meter(WorkMeter(hashes=len(self.table)))

    # -- crash / recovery --------------------------------------------------------------------------

    def checkpoint(self) -> float:
        """Snapshot the fragment to stable storage; returns sim cost."""
        if self.wal is None:
            return 0.0
        cost = self.wal.checkpoint(list(self.table.scan()))
        self.charge(cost)
        return cost

    def crash(self) -> None:
        """Lose all volatile state (the table stays allocated until the
        recovery pass rebuilds it — memory accounting survives crashes
        only in the sense that restart reuses the same element)."""
        self.table.truncate()
        self._undo.clear()
        self._prepared.clear()
        self._committed.clear()
        if self.wal is not None:
            # Unforced records are volatile and die with the crash.
            self.wal._buffer.clear()

    def halt(self) -> None:
        """This OFM's element failed: volatile state is gone for good.

        Unlike :meth:`crash` (whole-machine failure, where restart
        replays into the *same* process object) the process itself is
        dead — restart spawns a successor under the same name.  Release
        the memory reservation so the successor can re-account it;
        durable WAL chunks and snapshots survive on the disk elements.
        """
        self.table.truncate()
        self.table.release_memory()
        self._undo.clear()
        self._prepared.clear()
        self._committed.clear()
        if self.wal is not None:
            self.wal._buffer.clear()

    def recover(self, outcome_of: Callable[[int], str]) -> tuple[int, float]:
        """Rebuild the fragment from snapshot + WAL.

        *outcome_of(txn_id)* returns ``'commit'`` / ``'abort'`` — the
        coordinator's durable decision (presumed abort for unknowns).
        Returns (rows restored, simulated recovery cost).
        """
        if self.wal is None:
            raise InvalidTransactionState(
                f"query-profile OFM {self.name!r} has no recovery facilities"
            )
        self.table.truncate()
        self._undo.clear()
        self._prepared.clear()
        self._committed.clear()
        snapshot, cost = self.wal.read_snapshot()
        for rid, row in snapshot:
            self.table.insert_with_rid(rid, row)
        records, read_cost = self.wal.read_records()
        cost += read_cost
        # Pass 1: determine local outcomes from the log itself.  A
        # forced CommitRecord is final: a stray AbortRecord written
        # later (e.g. a cleanup sweep after the coordinator halted
        # mid-1PC) must never flip a durably committed transaction.
        locally_decided: dict[int, str] = {}
        prepared: set[int] = set()
        for record in records:
            if isinstance(record, CommitRecord):
                locally_decided[record.txn_id] = "commit"
            elif isinstance(record, AbortRecord):
                locally_decided.setdefault(record.txn_id, "abort")
            elif isinstance(record, PrepareRecord):
                prepared.add(record.txn_id)
        in_doubt = sorted(
            txn_id for txn_id in prepared if txn_id not in locally_decided
        )
        resolutions = {txn_id: str(outcome_of(txn_id)) for txn_id in in_doubt}

        def decide(txn_id: int) -> str:
            if txn_id in locally_decided:
                return locally_decided[txn_id]
            if txn_id in resolutions:
                # In doubt: the coordinator's durable decision rules.
                return resolutions[txn_id]
            return "abort"  # never prepared: presumed abort

        # Pass 2: redo the effects of committed transactions in order.
        for record in records:
            if decide(record.txn_id) != "commit":
                continue
            if isinstance(record, InsertRecord):
                if not self.table.has_rid(record.rid):
                    self.table.insert_with_rid(record.rid, record.row)
            elif isinstance(record, DeleteRecord):
                if self.table.has_rid(record.rid):
                    self.table.delete(record.rid)
            elif isinstance(record, UpdateRecord):
                if self.table.has_rid(record.rid):
                    self.table.update(record.rid, record.new_row)
                else:
                    self.table.insert_with_rid(record.rid, record.new_row)
        self._committed = {
            txn_id
            for txn_id, outcome in locally_decided.items()
            if outcome == "commit"
        }
        self._committed.update(
            txn_id for txn_id, outcome in resolutions.items() if outcome == "commit"
        )
        self.last_recovery = FragmentRecovery(
            rows=len(self.table),
            cost=cost,
            locally_committed=tuple(
                sorted(
                    txn_id
                    for txn_id, outcome in locally_decided.items()
                    if outcome == "commit"
                )
            ),
            in_doubt=tuple(in_doubt),
            in_doubt_outcomes=tuple(resolutions[txn_id] for txn_id in in_doubt),
        )
        self.charge(cost)
        self._charge_meter(WorkMeter(tuples=len(records) + len(snapshot)))
        return len(self.table), cost

    def destroy(self) -> None:
        """Release memory and durable state (DROP TABLE / query teardown)."""
        self.table.release_memory()
        if self.wal is not None:
            self.wal.wipe()
        self.runtime.terminate(self)
