"""Cursors over tables and markings.

The other half of the OFM's "markings and cursor maintenance"
(Section 2.5): a cursor is a resumable position in a fragment scan that
stays well-defined while the fragment changes underneath it.  Rows
deleted after the cursor was opened are skipped; rows inserted after it
passed their position are not revisited; ``FETCH`` never yields the same
row id twice.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.errors import StorageError
from repro.storage.markings import Marking
from repro.storage.schema import Row
from repro.storage.table import Table


class Cursor:
    """A resumable scan over one table (optionally through a marking).

    Parameters
    ----------
    table:
        The fragment to scan.
    marking:
        Restrict the scan to a marking's row ids.
    predicate:
        Optional filter applied to each row.
    """

    def __init__(
        self,
        table: Table,
        marking: Marking | None = None,
        predicate: Callable[[Row], bool] | None = None,
    ):
        if marking is not None and marking.table is not table:
            raise StorageError("cursor marking belongs to a different table")
        self.table = table
        self.marking = marking
        self.predicate = predicate
        self._last_rid = -1
        self._closed = False
        self.fetched = 0

    def fetch(self) -> tuple[int, Row] | None:
        """Next matching ``(rid, row)``, or ``None`` at end of scan."""
        if self._closed:
            raise StorageError("cursor is closed")
        candidate_rids = self._candidates()
        for rid in candidate_rids:
            if rid <= self._last_rid:
                continue
            self._last_rid = rid
            if not self.table.has_rid(rid):
                continue
            row = self.table.get(rid)
            if self.predicate is not None and not self.predicate(row):
                continue
            self.fetched += 1
            return rid, row
        return None

    def fetch_many(self, count: int) -> list[tuple[int, Row]]:
        """Up to *count* further matches."""
        if count < 0:
            raise StorageError(f"negative fetch count: {count}")
        batch = []
        for _ in range(count):
            item = self.fetch()
            if item is None:
                break
            batch.append(item)
        return batch

    def rewind(self) -> None:
        """Restart the scan from the beginning."""
        if self._closed:
            raise StorageError("cursor is closed")
        self._last_rid = -1

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _candidates(self) -> Sequence[int]:
        if self.marking is not None:
            return sorted(self.marking.rids())
        # Row ids are assigned in increasing order and dict preserves
        # insertion order, so the scan is already sorted by rid.
        return [rid for rid, _ in self.table.scan()]

    def __iter__(self):
        while True:
            item = self.fetch()
            if item is None:
                return
            yield item
