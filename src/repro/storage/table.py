"""In-memory tables (relation fragments).

A :class:`Table` stores one relation fragment entirely in main memory:
an insertion-ordered map from *row id* to tuple, plus any number of
secondary indexes.  Row ids are stable for the life of a row, which is
what cursors, markings, and the write-ahead log key on.

When the table is bound to a :class:`~repro.machine.memory.MemoryAccount`
(a processing element's 16 MByte budget), every mutation re-accounts the
footprint, so overfilling an element raises
:class:`~repro.errors.OutOfMemoryError` — placement has real consequences.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Any

from repro.errors import StorageError
from repro.machine.memory import MemoryAccount
from repro.storage.indexes import HashIndex, Index, OrderedIndex
from repro.storage.schema import Row, Schema


class Table:
    """One main-memory relation fragment."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        memory: MemoryAccount | None = None,
    ):
        self.name = name
        self.schema = schema
        self.memory = memory
        self._rows: dict[int, Row] = {}
        self._next_rid = 0
        self._data_bytes = 0
        self.indexes: dict[str, Index] = {}
        self._memory_tag = f"table:{name}"

    # -- memory accounting ----------------------------------------------------

    @property
    def data_bytes(self) -> int:
        """Bytes of row data (excluding index structures)."""
        return self._data_bytes

    def footprint_bytes(self) -> int:
        """Current storage footprint: rows + index structures."""
        index_bytes = sum(index.estimated_bytes() for index in self.indexes.values())
        return self._data_bytes + index_bytes

    def _reaccount(self) -> None:
        if self.memory is not None:
            self.memory.resize(self._memory_tag, self.footprint_bytes())

    def release_memory(self) -> None:
        """Drop this table's memory reservation (on OFM termination)."""
        if self.memory is not None:
            self.memory.free(self._memory_tag)

    # -- mutation ---------------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> int:
        """Validate and store *row*; returns its new row id."""
        validated = self.schema.validate_row(row)
        rid = self._next_rid
        # Index first: a unique violation must not leave a stored row.
        for index in self.indexes.values():
            index.insert(rid, validated)
        self._next_rid += 1
        self._rows[rid] = validated
        self._data_bytes += self.schema.row_bytes(validated)
        try:
            self._reaccount()
        except Exception:
            # Roll the insert back so memory exhaustion is clean.
            for index in self.indexes.values():
                index.delete(rid, validated)
            del self._rows[rid]
            self._data_bytes -= self.schema.row_bytes(validated)
            raise
        return rid

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> list[int]:
        return [self.insert(row) for row in rows]

    def insert_with_rid(self, rid: int, row: Sequence[Any]) -> None:
        """Re-insert a row under a known id (recovery/undo path)."""
        if rid in self._rows:
            raise StorageError(f"row id {rid} already present in {self.name!r}")
        validated = self.schema.validate_row(row)
        for index in self.indexes.values():
            index.insert(rid, validated)
        self._rows[rid] = validated
        self._next_rid = max(self._next_rid, rid + 1)
        self._data_bytes += self.schema.row_bytes(validated)
        self._reaccount()

    def delete(self, rid: int) -> Row:
        """Remove and return the row under *rid*."""
        row = self.get(rid)
        for index in self.indexes.values():
            index.delete(rid, row)
        del self._rows[rid]
        self._data_bytes -= self.schema.row_bytes(row)
        self._reaccount()
        return row

    def update(self, rid: int, new_row: Sequence[Any]) -> Row:
        """Replace the row under *rid*; returns the old row."""
        old_row = self.get(rid)
        validated = self.schema.validate_row(new_row)
        for index in self.indexes.values():
            index.delete(rid, old_row)
        try:
            for index in self.indexes.values():
                index.insert(rid, validated)
        except Exception:
            # Restore old index entries before propagating.
            for index in self.indexes.values():
                index.delete(rid, validated)
                index.insert(rid, old_row)
            raise
        self._rows[rid] = validated
        self._data_bytes += self.schema.row_bytes(validated) - self.schema.row_bytes(old_row)
        self._reaccount()
        return old_row

    def truncate(self) -> int:
        """Delete all rows; returns how many were removed."""
        removed = len(self._rows)
        self._rows.clear()
        self._data_bytes = 0
        for name, index in list(self.indexes.items()):
            self.indexes[name] = _fresh_index(index)
        self._reaccount()
        return removed

    # -- reading -------------------------------------------------------------------

    def get(self, rid: int) -> Row:
        try:
            return self._rows[rid]
        except KeyError:
            raise StorageError(f"no row {rid} in table {self.name!r}") from None

    def has_rid(self, rid: int) -> bool:
        return rid in self._rows

    def scan(self) -> Iterator[tuple[int, Row]]:
        """All ``(rid, row)`` pairs in insertion order."""
        return iter(self._rows.items())

    def rows(self) -> Iterator[Row]:
        return iter(self._rows.values())

    def __len__(self) -> int:
        return len(self._rows)

    # -- indexes --------------------------------------------------------------------

    def create_hash_index(
        self, name: str, columns: Sequence[str], unique: bool = False
    ) -> HashIndex:
        return self._add_index(
            HashIndex(name, [self.schema.index_of(c) for c in columns], unique)
        )

    def create_ordered_index(
        self, name: str, columns: Sequence[str], unique: bool = False
    ) -> OrderedIndex:
        return self._add_index(
            OrderedIndex(name, [self.schema.index_of(c) for c in columns], unique)
        )

    def _add_index(self, index: Index) -> Index:
        if index.name in self.indexes:
            raise StorageError(f"index {index.name!r} already exists on {self.name!r}")
        for rid, row in self._rows.items():
            index.insert(rid, row)
        self.indexes[index.name] = index
        self._reaccount()
        return index

    def drop_index(self, name: str) -> None:
        if name not in self.indexes:
            raise StorageError(f"no index {name!r} on table {self.name!r}")
        del self.indexes[name]
        self._reaccount()

    def index_on(self, columns: Sequence[str]) -> Index | None:
        """An existing index whose key is exactly *columns*, if any."""
        positions = tuple(self.schema.index_of(c) for c in columns)
        for index in self.indexes.values():
            if index.key_positions == positions:
                return index
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={len(self)}, bytes={self.footprint_bytes()})"


def _fresh_index(index: Index) -> Index:
    if isinstance(index, HashIndex):
        return HashIndex(index.name, index.key_positions, index.unique)
    return OrderedIndex(index.name, index.key_positions, index.unique)
