"""Markings: named row-id subsets over a table.

Section 2.5 lists "markings and cursor maintenance" among the OFM's
functions.  A *marking* is a named, persistent selection over a fragment
— the QUEL-era mechanism behind "mark the tuples satisfying P, then keep
refining" query styles and behind shipping intermediate selections
without copying tuples.  Markings compose with set algebra and stay
consistent under deletions (a deleted row silently leaves every
marking at read time).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import StorageError
from repro.storage.schema import Row
from repro.storage.table import Table


class Marking:
    """A named set of row ids on one table."""

    def __init__(self, name: str, table: Table, rids: Iterable[int] = ()):
        self.name = name
        self.table = table
        self._rids: set[int] = set(rids)

    def add(self, rid: int) -> None:
        self._rids.add(rid)

    def discard(self, rid: int) -> None:
        self._rids.discard(rid)

    def rids(self) -> set[int]:
        """Live row ids: drops ids whose rows were deleted since marking."""
        self._rids = {rid for rid in self._rids if self.table.has_rid(rid)}
        return set(self._rids)

    def rows(self) -> Iterator[tuple[int, Row]]:
        for rid in sorted(self.rids()):
            yield rid, self.table.get(rid)

    def __len__(self) -> int:
        return len(self.rids())

    def __contains__(self, rid: int) -> bool:
        return rid in self.rids()

    # -- set algebra ----------------------------------------------------------

    def _check_same_table(self, other: "Marking") -> None:
        if other.table is not self.table:
            raise StorageError(
                f"markings {self.name!r} and {other.name!r} are on different tables"
            )

    def union(self, other: "Marking", name: str) -> "Marking":
        self._check_same_table(other)
        return Marking(name, self.table, self.rids() | other.rids())

    def intersect(self, other: "Marking", name: str) -> "Marking":
        self._check_same_table(other)
        return Marking(name, self.table, self.rids() & other.rids())

    def difference(self, other: "Marking", name: str) -> "Marking":
        self._check_same_table(other)
        return Marking(name, self.table, self.rids() - other.rids())

    def complement(self, name: str) -> "Marking":
        all_rids = {rid for rid, _ in self.table.scan()}
        return Marking(name, self.table, all_rids - self.rids())


class MarkingSet:
    """The markings an OFM maintains for one fragment."""

    def __init__(self, table: Table):
        self.table = table
        self._markings: dict[str, Marking] = {}

    def create(self, name: str, rids: Iterable[int] = ()) -> Marking:
        if name in self._markings:
            raise StorageError(f"marking {name!r} already exists")
        marking = Marking(name, self.table, rids)
        self._markings[name] = marking
        return marking

    def mark_where(self, name: str, predicate) -> Marking:
        """Create a marking of all rows satisfying *predicate(row)*."""
        rids = (rid for rid, row in self.table.scan() if predicate(row))
        return self.create(name, rids)

    def get(self, name: str) -> Marking:
        try:
            return self._markings[name]
        except KeyError:
            raise StorageError(f"no marking {name!r}") from None

    def drop(self, name: str) -> None:
        if name not in self._markings:
            raise StorageError(f"no marking {name!r}")
        del self._markings[name]

    def names(self) -> list[str]:
        return sorted(self._markings)

    def store(self, marking: Marking) -> None:
        """Register a marking produced by set algebra under its name."""
        if marking.table is not self.table:
            raise StorageError("marking belongs to a different table")
        if marking.name in self._markings:
            raise StorageError(f"marking {marking.name!r} already exists")
        self._markings[marking.name] = marking
