"""Column data types and the byte-size model.

PRISMA is a main-memory system with a hard 16 MByte budget per
processing element, so sizes matter: every value has a defined storage
size, and tables report their footprint to the hosting element's
:class:`~repro.machine.memory.MemoryAccount`.

NULLs are supported with simple semantics: ``None`` is a legal value in
nullable columns; comparisons against NULL are false (two-valued logic,
a documented deviation from SQL's three-valued logic — PRISMA predates
consistent NULL treatment anyway).
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import StorageError


class DataType(enum.Enum):
    """The column types supported by the engine.

    ``ANY`` is the dynamically-typed column PRISMAlog relations use —
    the paper notes POOL-X "introduces dynamic typing to efficiently
    support the implementation of relation types" (Section 3.1), and
    Datalog predicates are untyped.
    """

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"
    ANY = "any"

    @property
    def python_type(self) -> type:
        return _PYTHON_TYPES[self]

    def coerce(self, value: Any) -> Any:
        """Convert *value* to this type, or raise :class:`StorageError`.

        Follows SQL-ish conversions: ints widen to floats, bools do not
        silently become ints, strings are never implicitly parsed.
        """
        if value is None:
            return None
        if self is DataType.ANY:
            if isinstance(value, (bool, int, float, str)):
                return value
            raise _coercion_error(self, value)
        if self is DataType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise _coercion_error(self, value)
            return value
        if self is DataType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise _coercion_error(self, value)
            return float(value)
        if self is DataType.STRING:
            if not isinstance(value, str):
                raise _coercion_error(self, value)
            return value
        if self is DataType.BOOL:
            if not isinstance(value, bool):
                raise _coercion_error(self, value)
            return value
        raise AssertionError(f"unhandled type {self}")  # pragma: no cover

    def size_of(self, value: Any) -> int:
        """Storage bytes for one value of this type."""
        if value is None:
            return 1
        if self is DataType.STRING or (self is DataType.ANY and isinstance(value, str)):
            # length prefix + utf-8 payload
            return 2 + len(value.encode("utf-8"))
        if self is DataType.ANY:
            return _FIXED_SIZES.get(infer_type(value), 8)
        return _FIXED_SIZES[self]

    @classmethod
    def from_name(cls, name: str) -> "DataType":
        """Parse a type name as written in SQL (INT, INTEGER, VARCHAR...)."""
        try:
            return _TYPE_NAMES[name.strip().lower()]
        except KeyError:
            raise StorageError(f"unknown data type {name!r}") from None


_PYTHON_TYPES = {
    DataType.INT: int,
    DataType.FLOAT: float,
    DataType.STRING: str,
    DataType.BOOL: bool,
    DataType.ANY: object,
}

_FIXED_SIZES = {
    DataType.INT: 4,
    DataType.FLOAT: 8,
    DataType.BOOL: 1,
}

_TYPE_NAMES = {
    "int": DataType.INT,
    "integer": DataType.INT,
    "smallint": DataType.INT,
    "bigint": DataType.INT,
    "float": DataType.FLOAT,
    "real": DataType.FLOAT,
    "double": DataType.FLOAT,
    "decimal": DataType.FLOAT,
    "numeric": DataType.FLOAT,
    "string": DataType.STRING,
    "text": DataType.STRING,
    "char": DataType.STRING,
    "varchar": DataType.STRING,
    "bool": DataType.BOOL,
    "boolean": DataType.BOOL,
    "any": DataType.ANY,
}


def _coercion_error(data_type: DataType, value: Any) -> StorageError:
    return StorageError(
        f"cannot store {value!r} ({type(value).__name__}) in a"
        f" {data_type.value.upper()} column"
    )


def infer_type(value: Any) -> DataType:
    """The :class:`DataType` that naturally stores *value*."""
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.STRING
    raise StorageError(f"no column type for {value!r} ({type(value).__name__})")
