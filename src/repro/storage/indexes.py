"""In-memory index structures for One-Fragment Managers.

Section 2.5 gives each OFM "(various) storage structures"; we provide
the two classic main-memory ones:

* :class:`HashIndex` — exact-match lookups, O(1);
* :class:`OrderedIndex` — a sorted array maintained with binary search,
  supporting range scans (a main-memory stand-in for a B-tree; at 1988
  memory sizes a sorted array with bisection was the common choice,
  cf. AVL/T-trees).

Indexes map key values to *row ids* in a :class:`~repro.storage.table.Table`.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator, Sequence
from typing import Any

from repro.errors import StorageError

Key = tuple


class DuplicateKeyError(StorageError):
    """A unique index rejected a second row with the same key."""


class _IndexBase:
    """Shared machinery: key extraction and uniqueness."""

    def __init__(self, name: str, key_positions: Sequence[int], unique: bool = False):
        if not key_positions:
            raise StorageError(f"index {name!r} needs at least one key column")
        self.name = name
        self.key_positions = tuple(key_positions)
        self.unique = unique

    def key_of(self, row: Sequence[Any]) -> Key:
        return tuple(row[i] for i in self.key_positions)


class HashIndex(_IndexBase):
    """Hash index: key tuple -> set of row ids."""

    def __init__(self, name: str, key_positions: Sequence[int], unique: bool = False):
        super().__init__(name, key_positions, unique)
        self._buckets: dict[Key, list[int]] = {}

    def insert(self, rid: int, row: Sequence[Any]) -> None:
        key = self.key_of(row)
        bucket = self._buckets.setdefault(key, [])
        if self.unique and bucket:
            raise DuplicateKeyError(
                f"unique index {self.name!r} already has key {key!r}"
            )
        bucket.append(rid)

    def delete(self, rid: int, row: Sequence[Any]) -> None:
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        try:
            bucket.remove(rid)
        except ValueError:
            return
        if not bucket:
            del self._buckets[key]

    def lookup(self, key: Key) -> list[int]:
        """Row ids whose key equals *key* (a tuple, even for one column)."""
        return list(self._buckets.get(tuple(key), ()))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def keys(self) -> Iterator[Key]:
        return iter(self._buckets)

    def estimated_bytes(self) -> int:
        """Rough footprint for memory accounting (pointers + keys)."""
        return 64 + 48 * len(self._buckets) + 8 * len(self)


class OrderedIndex(_IndexBase):
    """Sorted-array index supporting range scans.

    Entries are ``(key, rid)`` pairs kept sorted; point and range lookups
    use binary search.  Keys must be mutually comparable (single-type
    columns guarantee this; NULLs are not indexable).
    """

    def __init__(self, name: str, key_positions: Sequence[int], unique: bool = False):
        super().__init__(name, key_positions, unique)
        self._entries: list[tuple[Key, int]] = []

    def insert(self, rid: int, row: Sequence[Any]) -> None:
        key = self.key_of(row)
        if any(part is None for part in key):
            raise StorageError(
                f"ordered index {self.name!r} cannot index NULL key {key!r}"
            )
        position = bisect.bisect_left(self._entries, (key, -1))
        if self.unique and position < len(self._entries):
            existing_key, _ = self._entries[position]
            if existing_key == key:
                raise DuplicateKeyError(
                    f"unique index {self.name!r} already has key {key!r}"
                )
        self._entries.insert(position, (key, rid))

    def delete(self, rid: int, row: Sequence[Any]) -> None:
        key = self.key_of(row)
        position = bisect.bisect_left(self._entries, (key, -1))
        while position < len(self._entries):
            entry_key, entry_rid = self._entries[position]
            if entry_key != key:
                return
            if entry_rid == rid:
                del self._entries[position]
                return
            position += 1

    def lookup(self, key: Key) -> list[int]:
        key = tuple(key)
        start = bisect.bisect_left(self._entries, (key, -1))
        rids = []
        for entry_key, rid in self._entries[start:]:
            if entry_key != key:
                break
            rids.append(rid)
        return rids

    def range(
        self,
        low: Key | None = None,
        high: Key | None = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[int]:
        """Row ids with low <= key <= high (bounds optional/exclusive)."""
        entries = self._entries
        if low is None:
            start = 0
        else:
            low = tuple(low)
            start = (
                bisect.bisect_left(entries, (low, -1))
                if include_low
                else bisect.bisect_right(entries, (low, float("inf")))
            )
        rids = []
        for entry_key, rid in entries[start:]:
            if high is not None:
                high_t = tuple(high)
                if entry_key > high_t or (entry_key == high_t and not include_high):
                    break
            rids.append(rid)
        return rids

    def min_key(self) -> Key | None:
        return self._entries[0][0] if self._entries else None

    def max_key(self) -> Key | None:
        return self._entries[-1][0] if self._entries else None

    def __len__(self) -> int:
        return len(self._entries)

    def estimated_bytes(self) -> int:
        return 64 + 40 * len(self._entries)


Index = HashIndex | OrderedIndex
