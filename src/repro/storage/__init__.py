"""Main-memory relational storage: types, schemas, tables, indexes,
markings, and cursors — the storage structures inside every
One-Fragment Manager (paper Section 2.5)."""

from repro.storage.cursor import Cursor
from repro.storage.indexes import DuplicateKeyError, HashIndex, OrderedIndex
from repro.storage.markings import Marking, MarkingSet
from repro.storage.schema import Column, Row, Schema
from repro.storage.table import Table
from repro.storage.types import DataType, infer_type

__all__ = [
    "Column",
    "Cursor",
    "DataType",
    "DuplicateKeyError",
    "HashIndex",
    "Marking",
    "MarkingSet",
    "OrderedIndex",
    "Row",
    "Schema",
    "Table",
    "infer_type",
]
