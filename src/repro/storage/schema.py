"""Relation schemas: named, typed column lists.

A :class:`Schema` validates and coerces rows (plain Python tuples),
computes their storage footprint, and supports the structural operations
the algebra needs — projection, concatenation for joins, renaming.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.errors import StorageError
from repro.storage.types import DataType

Row = tuple


@dataclass(frozen=True)
class Column:
    """One column: a name, a type, and nullability."""

    name: str
    data_type: DataType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise StorageError("column name must be non-empty")

    def with_name(self, name: str) -> "Column":
        return Column(name, self.data_type, self.nullable)


class Schema:
    """An ordered list of columns with unique names.

    >>> schema = Schema([Column("id", DataType.INT), Column("name", DataType.STRING)])
    >>> schema.index_of("name")
    1
    >>> schema.validate_row((1, "ada"))
    (1, 'ada')
    """

    def __init__(self, columns: Iterable[Column]):
        self.columns: tuple[Column, ...] = tuple(columns)
        if not self.columns:
            raise StorageError("schema needs at least one column")
        self._index: dict[str, int] = {}
        for position, column in enumerate(self.columns):
            if column.name in self._index:
                raise StorageError(f"duplicate column name {column.name!r}")
            self._index[column.name] = position

    # -- construction helpers -------------------------------------------------

    @classmethod
    def of(cls, **columns: DataType) -> "Schema":
        """Shorthand: ``Schema.of(id=DataType.INT, name=DataType.STRING)``."""
        return cls(Column(name, data_type) for name, data_type in columns.items())

    # -- lookups ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def names(self) -> list[str]:
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        return name in self._index

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise StorageError(
                f"no column {name!r}; have {', '.join(self.names())}"
            ) from None

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def types(self) -> list[DataType]:
        return [column.data_type for column in self.columns]

    # -- row operations -----------------------------------------------------------

    def validate_row(self, row: Sequence[Any]) -> Row:
        """Coerce *row* to this schema; raises on arity/type/null errors."""
        if len(row) != len(self.columns):
            raise StorageError(
                f"row has {len(row)} values, schema has {len(self.columns)} columns"
            )
        coerced = []
        for column, value in zip(self.columns, row):
            if value is None and not column.nullable:
                raise StorageError(f"column {column.name!r} is not nullable")
            coerced.append(column.data_type.coerce(value))
        return tuple(coerced)

    def row_bytes(self, row: Sequence[Any]) -> int:
        """Storage footprint of one row under the size model."""
        return sum(
            column.data_type.size_of(value)
            for column, value in zip(self.columns, row)
        )

    def average_row_bytes(self) -> int:
        """A width estimate used by the optimizer before data exists."""
        total = 0
        for column in self.columns:
            if column.data_type is DataType.STRING:
                total += 2 + 16  # assume short strings
            else:
                total += column.data_type.size_of(0 if column.data_type is not DataType.BOOL else False)
        return total

    # -- structural operations -------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        return Schema(self.column(name) for name in names)

    def project_indexes(self, indexes: Sequence[int]) -> "Schema":
        return Schema(self.columns[i] for i in indexes)

    def concat(self, other: "Schema", disambiguate: bool = True) -> "Schema":
        """Schema of a join result; clashing names get a ``_r`` suffix."""
        taken = set(self.names())
        merged = list(self.columns)
        for column in other.columns:
            name = column.name
            if name in taken:
                if not disambiguate:
                    raise StorageError(f"duplicate column {name!r} in concat")
                suffix = 1
                candidate = f"{name}_r"
                while candidate in taken:
                    suffix += 1
                    candidate = f"{name}_r{suffix}"
                name = candidate
            taken.add(name)
            merged.append(column.with_name(name))
        return Schema(merged)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        return Schema(
            column.with_name(mapping.get(column.name, column.name))
            for column in self.columns
        )

    def prefixed(self, prefix: str) -> "Schema":
        return Schema(
            column.with_name(f"{prefix}.{column.name}") for column in self.columns
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name}:{c.data_type.value}" for c in self.columns)
        return f"Schema({cols})"
