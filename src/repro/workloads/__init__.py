"""Workload generators: Wisconsin-style relations, recursive graph
workloads, and a debit/credit banking mix."""

from repro.workloads.banking import (
    Transfer,
    generate_transfers,
    setup_bank,
    total_balance,
)
from repro.workloads.graphs import (
    binary_tree,
    chain,
    genealogy,
    load_edges,
    parts_explosion,
    random_dag,
)
from repro.workloads.wisconsin import (
    COLUMN_NAMES,
    create_table_sql,
    generate_rows,
    load_wisconsin,
)

__all__ = [
    "COLUMN_NAMES",
    "Transfer",
    "binary_tree",
    "chain",
    "create_table_sql",
    "genealogy",
    "generate_rows",
    "generate_transfers",
    "load_edges",
    "load_wisconsin",
    "parts_explosion",
    "random_dag",
    "setup_bank",
    "total_balance",
]
