"""Graph workloads for the recursive-query experiments (E6/E7).

The motivating recursive workloads of the era: parts explosion
(bill-of-materials), genealogies (ancestor queries), and synthetic
chains/trees/DAGs with controlled depth — depth is the variable that
separates naive from semi-naive from smart closure.
"""

from __future__ import annotations

import random


def chain(length: int) -> list[tuple[int, int]]:
    """A path 0 -> 1 -> ... -> length (depth = length)."""
    return [(i, i + 1) for i in range(length)]


def binary_tree(depth: int) -> list[tuple[int, int]]:
    """A complete binary tree, edges parent -> child; node 1 is the root."""
    edges = []
    for node in range(1, 2**depth):
        for child in (2 * node, 2 * node + 1):
            if child < 2 ** (depth + 1):
                edges.append((node, child))
    return edges


def random_dag(
    n_nodes: int, n_edges: int, seed: int = 7
) -> list[tuple[int, int]]:
    """A random DAG: edges always go from lower to higher node id."""
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = set()
    attempts = 0
    while len(edges) < n_edges and attempts < 50 * n_edges:
        attempts += 1
        a = rng.randrange(n_nodes - 1)
        b = rng.randrange(a + 1, n_nodes)
        edges.add((a, b))
    return sorted(edges)


def parts_explosion(
    n_assemblies: int, fanout: int, depth: int, seed: int = 11
) -> list[tuple[str, str, int]]:
    """A bill-of-materials: (assembly, component, quantity) triples.

    *n_assemblies* top-level products, each a tree of sub-assemblies
    *depth* levels deep with ~*fanout* components per level.
    """
    rng = random.Random(seed)
    triples: list[tuple[str, str, int]] = []
    counter = 0

    def expand(part: str, level: int) -> None:
        nonlocal counter
        if level >= depth:
            return
        for _ in range(fanout):
            counter += 1
            child = f"part_{counter}"
            triples.append((part, child, rng.randint(1, 4)))
            expand(child, level + 1)

    for assembly_index in range(n_assemblies):
        root = f"product_{assembly_index}"
        expand(root, 0)
    return triples


def genealogy(generations: int, couples_per_generation: int, seed: int = 3):
    """(parent, child) pairs over a multi-generation population.

    Returns ``(pairs, people)`` where people maps generation -> names.
    """
    rng = random.Random(seed)
    people: dict[int, list[str]] = {}
    pairs: list[tuple[str, str]] = []
    people[0] = [f"g0_p{i}" for i in range(couples_per_generation * 2)]
    for generation in range(1, generations):
        previous = people[generation - 1]
        current: list[str] = []
        for couple in range(couples_per_generation):
            father = previous[(2 * couple) % len(previous)]
            mother = previous[(2 * couple + 1) % len(previous)]
            for child_index in range(rng.randint(1, 3)):
                child = f"g{generation}_c{couple}_{child_index}"
                current.append(child)
                pairs.append((father, child))
                pairs.append((mother, child))
        people[generation] = current
    return pairs, people


def load_edges(db, name: str, edges, fragments: int = 1) -> int:
    """Create an (src, dst) table in a PrismaDB and load the edges."""
    first = edges[0] if edges else (0, 0)
    type_name = "STRING" if isinstance(first[0], str) else "INT"
    sql = f"CREATE TABLE {name} (src {type_name}, dst {type_name})"
    if fragments > 1:
        sql += f" FRAGMENTED BY HASH(src) INTO {fragments}"
    db.execute(sql)
    return db.bulk_load(name, [tuple(edge[:2]) for edge in edges])
