"""Wisconsin-benchmark-style relations.

The Wisconsin benchmark (Bitton, DeWitt, Turbyfill 1983) was *the*
database-machine benchmark of PRISMA's era; its synthetic relation —
uniform integer columns of controlled selectivities plus padding
strings — is what a 1988 evaluation would have used.  We generate the
classic columns deterministically from a seed.

Columns (all derived from ``unique1``/``unique2`` permutations):

=============  =====================================================
unique1        0..n-1, random permutation (candidate key)
unique2        0..n-1, sequential (candidate key, declared PK)
two            unique1 mod 2
four           unique1 mod 4
ten            unique1 mod 10
twenty         unique1 mod 20
onepercent     unique1 mod 100
tenpercent     unique1 mod 10
twentypercent  unique1 mod 5
fiftypercent   unique1 mod 2
unique3        unique1 (secondary copy)
evenonepercent onepercent * 2
oddonepercent  onepercent * 2 + 1
stringu1       7-char string keyed by unique1
stringu2       7-char string keyed by unique2
string4        cycles through four fixed values
=============  =====================================================
"""

from __future__ import annotations

import random
from collections.abc import Iterator

COLUMNS_SQL = (
    "unique1 INT NOT NULL, "
    "unique2 INT PRIMARY KEY, "
    "two INT, four INT, ten INT, twenty INT, "
    "onepercent INT, tenpercent INT, twentypercent INT, fiftypercent INT, "
    "unique3 INT, evenonepercent INT, oddonepercent INT, "
    "stringu1 STRING, stringu2 STRING, string4 STRING"
)

COLUMN_NAMES = [
    "unique1", "unique2", "two", "four", "ten", "twenty",
    "onepercent", "tenpercent", "twentypercent", "fiftypercent",
    "unique3", "evenonepercent", "oddonepercent",
    "stringu1", "stringu2", "string4",
]

_STRING4_CYCLE = ("AAAA", "HHHH", "OOOO", "VVVV")


def _unique_string(value: int) -> str:
    """The classic 7-significant-character Wisconsin string."""
    letters = []
    remainder = value
    for _ in range(7):
        letters.append(chr(ord("A") + remainder % 26))
        remainder //= 26
    return "".join(reversed(letters))


def generate_rows(n_rows: int, seed: int = 42) -> Iterator[tuple]:
    """Yield *n_rows* Wisconsin tuples, deterministically."""
    rng = random.Random(seed)
    unique1_values = list(range(n_rows))
    rng.shuffle(unique1_values)
    for unique2, unique1 in enumerate(unique1_values):
        onepercent = unique1 % 100
        yield (
            unique1,
            unique2,
            unique1 % 2,
            unique1 % 4,
            unique1 % 10,
            unique1 % 20,
            onepercent,
            unique1 % 10,
            unique1 % 5,
            unique1 % 2,
            unique1,
            onepercent * 2,
            onepercent * 2 + 1,
            _unique_string(unique1),
            _unique_string(unique2),
            _STRING4_CYCLE[unique2 % 4],
        )


def create_table_sql(
    name: str, fragments: int = 1, fragment_by: str = "unique2"
) -> str:
    """DDL for one Wisconsin relation, optionally hash-fragmented."""
    sql = f"CREATE TABLE {name} ({COLUMNS_SQL})"
    if fragments > 1:
        sql += f" FRAGMENTED BY HASH({fragment_by}) INTO {fragments}"
    return sql


def load_wisconsin(db, name: str, n_rows: int, fragments: int = 1, seed: int = 42) -> int:
    """Create and bulk-load a Wisconsin relation into a PrismaDB."""
    db.execute(create_table_sql(name, fragments))
    return db.bulk_load(name, list(generate_rows(n_rows, seed)))
