"""A small banking (debit/credit) workload for the transaction
experiments (E8/E9): the era's canonical OLTP shape (TP1/DebitCredit).

Accounts are hash-fragmented on id; a *transfer* moves money between
two accounts — touching one fragment (local) or two (distributed
commit), which is exactly the 1PC/2PC and lock-conflict surface E8 and
E9 measure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


def setup_bank(db, n_accounts: int, fragments: int, initial_balance: float = 100.0) -> None:
    """Create and populate the accounts table."""
    db.execute(
        "CREATE TABLE account (id INT PRIMARY KEY, balance FLOAT NOT NULL,"
        f" branch INT) FRAGMENTED BY HASH(id) INTO {fragments}"
    )
    rows = [(i, initial_balance, i % 10) for i in range(n_accounts)]
    db.bulk_load("account", rows)


@dataclass(frozen=True)
class Transfer:
    """One transfer transaction: its statements, in order."""

    source: int
    target: int
    amount: float

    def statements(self) -> list[str]:
        return [
            f"UPDATE account SET balance = balance - {self.amount}"
            f" WHERE id = {self.source}",
            f"UPDATE account SET balance = balance + {self.amount}"
            f" WHERE id = {self.target}",
        ]


def generate_transfers(
    n_transfers: int,
    n_accounts: int,
    seed: int = 0,
    hot_fraction: float = 0.0,
    hot_accounts: int = 1,
) -> list[Transfer]:
    """Random transfers; *hot_fraction* of them hit the hot accounts.

    A high hot fraction concentrates conflicts on few fragments — the
    contention knob of E8.
    """
    rng = random.Random(seed)
    transfers = []
    for _ in range(n_transfers):
        if rng.random() < hot_fraction:
            source = rng.randrange(hot_accounts)
            target = rng.randrange(hot_accounts)
            if source == target:
                target = (target + 1) % max(2, hot_accounts)
        else:
            source = rng.randrange(n_accounts)
            target = rng.randrange(n_accounts)
            if source == target:
                target = (target + 1) % n_accounts
        transfers.append(Transfer(source, target, round(rng.uniform(1, 10), 2)))
    return transfers


def total_balance(db) -> float:
    """The conservation invariant: transfers never create money."""
    return db.execute("SELECT SUM(balance) FROM account").scalar()
