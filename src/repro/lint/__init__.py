"""prismalint: AST-based invariant checker for the simulated machine.

The paper's POOL-X model (Section 3.1) rests on two hard rules —
processes communicate by message passing *only* (no shared memory), and
everything unfolds in simulated time, so runs are bit-for-bit
deterministic.  These are easy to violate silently during refactors;
this package checks them statically:

========  ==============================================================
PL001     no wall-clock reads (``time.time`` & friends) outside
          benchmark shims
PL002     no unseeded randomness (global ``random.*``,
          ``random.Random()`` without a seed)
PL003     message-passing only: no cross-process attribute writes, no
          module-level mutable state shared between process classes
PL004     clock discipline: a function using ``PoolRuntime.send`` must
          charge CPU somewhere (or say where it is charged)
PL005     no bare ``except:``; no silently swallowed ``MachineError``
PL006     no host-time calls (``time.*``, any of them) inside ``obs``
          span paths — trace timestamps are simulated time only
========  ==============================================================

Run as ``python -m repro.lint <paths>``.  Escape hatch per file or per
line: ``# prismalint: disable=PL004 -- reason``.

The runtime counterpart — the message-ownership sanitizer that catches
what static analysis cannot — lives in :mod:`repro.pool.sanitizer`.
"""

from repro.lint.cli import ALL_RULES, main
from repro.lint.framework import (
    ImportMap,
    LintError,
    Rule,
    SourceFile,
    Violation,
    lint_paths,
)

__all__ = [
    "ALL_RULES",
    "ImportMap",
    "LintError",
    "Rule",
    "SourceFile",
    "Violation",
    "lint_paths",
    "main",
]
