"""prismalint: AST-based invariant checker for the simulated machine.

The paper's POOL-X model (Section 3.1) rests on two hard rules —
processes communicate by message passing *only* (no shared memory), and
everything unfolds in simulated time, so runs are bit-for-bit
deterministic.  These are easy to violate silently during refactors;
this package checks them statically:

========  ==============================================================
PL001     no wall-clock reads (``time.time`` & friends) outside
          benchmark shims
PL002     no unseeded randomness (global ``random.*``,
          ``random.Random()`` without a seed)
PL003     message-passing only: no cross-process attribute writes, no
          module-level mutable state shared between process classes
PL004     clock discipline: a function using ``PoolRuntime.send`` must
          charge CPU somewhere (or say where it is charged)
PL005     no bare ``except:``; no silently swallowed ``MachineError``
PL006     no host-time calls (``time.*``, any of them) inside ``obs``
          span paths — trace timestamps are simulated time only
========  ==============================================================

The second generation (PL1xx) is **project-wide**: a
:class:`~repro.lint.project.ProjectIndex` builds a symbol table, a
one-level call graph, and per-function summaries over every linted
file, so these rules see across module boundaries:

========  ==============================================================
PL101     unmetered work: loops over row collections in the charged
          layers (exec/ofm/core/algebra) must bill a WorkMeter —
          directly, by hand-off, or via a summary-known charging helper
PL102     unordered iteration: no bare iteration over set-origin values
          (hash order perturbs same-seed stats fingerprints); wrap in
          ``sorted(...)``
PL103     Snapshot conformance: anything exposing ``stats()`` /
          ``fingerprint()`` implements the full stats/fingerprint/reset
          triple with facade-callable signatures (``repro/obs/api.py``)
PL104     static message ownership: a payload must not be mutated after
          it was shipped with ``send``/``post`` (static complement of
          the runtime sanitizer)
========  ==============================================================

Run as ``python -m repro.lint <paths>``.  Escape hatch per file or per
line: ``# prismalint: disable=PL004 -- reason`` (unknown codes in a
pragma are themselves reported as PL000).  Pre-existing justified
findings live in a committed machine-readable baseline
(``prismalint-baseline.json``; see :mod:`repro.lint.baseline`).

The runtime counterpart — the message-ownership sanitizer that catches
what static analysis cannot — lives in :mod:`repro.pool.sanitizer`.
"""

from repro.lint.baseline import Baseline, apply_baseline, write_baseline
from repro.lint.cli import ALL_RULES, main
from repro.lint.framework import (
    ImportMap,
    LintError,
    Rule,
    SourceFile,
    Violation,
    lint_paths,
    registered_codes,
)
from repro.lint.project import ProjectIndex, ProjectRule

__all__ = [
    "ALL_RULES",
    "Baseline",
    "ImportMap",
    "LintError",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "SourceFile",
    "Violation",
    "apply_baseline",
    "lint_paths",
    "main",
    "registered_codes",
    "write_baseline",
]
