"""Command-line entry point: ``python -m repro.lint <paths>``.

Exit status: 0 clean (or fully baselined), 1 violations found, 2 usage
or file errors.

A committed baseline (``prismalint-baseline.json`` in the working
directory, or ``--baseline FILE``) grandfathers pre-existing justified
findings explicitly; ``--write-baseline`` regenerates it from the
current findings.  ``--no-baseline`` shows the unfiltered truth.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.lint.baseline import Baseline, apply_baseline, write_baseline
from repro.lint.framework import LintError, Rule, lint_paths
from repro.lint.report import render_json, render_statistics, render_text
from repro.lint.rules_cost import UnmeteredWorkRule
from repro.lint.rules_determinism import UnorderedIterationRule
from repro.lint.rules_errors import ExceptionHygieneRule
from repro.lint.rules_messaging import ClockDisciplineRule, SharedStateRule
from repro.lint.rules_obs import ObsWallClockRule
from repro.lint.rules_ownership import MessageOwnershipRule
from repro.lint.rules_random import UnseededRandomRule
from repro.lint.rules_snapshot import SnapshotConformanceRule
from repro.lint.rules_time import WallClockRule

__all__ = ["ALL_RULES", "DEFAULT_BASELINE", "main"]

#: Every registered rule class, in rule-code order.
ALL_RULES: tuple[type[Rule], ...] = (
    WallClockRule,
    UnseededRandomRule,
    SharedStateRule,
    ClockDisciplineRule,
    ExceptionHygieneRule,
    ObsWallClockRule,
    UnmeteredWorkRule,
    UnorderedIterationRule,
    SnapshotConformanceRule,
    MessageOwnershipRule,
)

#: Picked up automatically from the working directory when present.
DEFAULT_BASELINE = Path("prismalint-baseline.json")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "prismalint: project-wide static analysis for the simulated "
            "PRISMA machine (determinism, message-passing only, clock "
            "discipline, cost accounting, Snapshot conformance)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        type=Path,
        default=None,
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file, report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        type=Path,
        default=None,
        help="write current findings to FILE as a fresh baseline and exit 0",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append per-rule violation counts",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _parse_codes(raw: str | None) -> set[str]:
    if not raw:
        return set()
    return {code.strip().upper() for code in raw.split(",") if code.strip()}


def _select_rules(select: set[str], ignore: set[str]) -> list[Rule]:
    known = {cls.code for cls in ALL_RULES}
    for code in sorted((select | ignore) - known):
        raise LintError(f"unknown rule code: {code}")
    chosen = [
        cls()
        for cls in ALL_RULES
        if (not select or cls.code in select) and cls.code not in ignore
    ]
    if not chosen:
        raise LintError("rule selection left nothing to run")
    return chosen


def _resolve_baseline(args: argparse.Namespace) -> Baseline | None:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Baseline.load(args.baseline)
    if DEFAULT_BASELINE.is_file():
        return Baseline.load(DEFAULT_BASELINE)
    return None


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for cls in ALL_RULES:
            doc = (cls.__doc__ or "").strip().splitlines()[0]
            print(f"{cls.code}  {cls.name:<24} {doc}")
        return 0
    try:
        rules = _select_rules(_parse_codes(args.select), _parse_codes(args.ignore))
        violations, errors = lint_paths(args.paths, rules)
        baseline = _resolve_baseline(args)
    except LintError as exc:
        print(f"prismalint: error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline is not None:
        count = write_baseline(
            args.write_baseline,
            violations,
            reason="grandfathered by --write-baseline; justify or fix",
        )
        print(
            f"prismalint: wrote {count} baseline entr"
            f"{'y' if count == 1 else 'ies'} "
            f"covering {len(violations)} finding(s) to {args.write_baseline}"
        )
        return 2 if errors else 0
    notes: list[str] = []
    if baseline is not None:
        violations, stale = apply_baseline(violations, baseline)
        if stale:
            notes.append(
                f"baseline {baseline.path} has {len(stale)} stale entr"
                f"{'y' if len(stale) == 1 else 'ies'} covering nothing "
                "(fixed findings? prune them)"
            )
    if args.format == "json":
        print(render_json(violations, errors, notes))
    else:
        print(render_text(violations, errors, notes))
    if args.statistics and violations:
        print(render_statistics(violations))
    if errors:
        return 2
    return 1 if violations else 0
