"""Command-line entry point: ``python -m repro.lint <paths>``.

Exit status: 0 clean, 1 violations found, 2 usage or file errors.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.lint.framework import LintError, Rule, lint_paths
from repro.lint.report import render_json, render_statistics, render_text
from repro.lint.rules_errors import ExceptionHygieneRule
from repro.lint.rules_messaging import ClockDisciplineRule, SharedStateRule
from repro.lint.rules_obs import ObsWallClockRule
from repro.lint.rules_random import UnseededRandomRule
from repro.lint.rules_time import WallClockRule

__all__ = ["ALL_RULES", "main"]

#: Every registered rule class, in rule-code order.
ALL_RULES: tuple[type[Rule], ...] = (
    WallClockRule,
    UnseededRandomRule,
    SharedStateRule,
    ClockDisciplineRule,
    ExceptionHygieneRule,
    ObsWallClockRule,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "prismalint: AST-based invariant checker for the simulated "
            "PRISMA machine (determinism, message-passing only, clock "
            "discipline)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append per-rule violation counts",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _parse_codes(raw: str | None) -> set[str]:
    if not raw:
        return set()
    return {code.strip().upper() for code in raw.split(",") if code.strip()}


def _select_rules(select: set[str], ignore: set[str]) -> list[Rule]:
    known = {cls.code for cls in ALL_RULES}
    for code in (select | ignore) - known:
        raise LintError(f"unknown rule code: {code}")
    chosen = [
        cls()
        for cls in ALL_RULES
        if (not select or cls.code in select) and cls.code not in ignore
    ]
    if not chosen:
        raise LintError("rule selection left nothing to run")
    return chosen


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for cls in ALL_RULES:
            doc = (cls.__doc__ or "").strip().splitlines()[0]
            print(f"{cls.code}  {cls.name:<24} {doc}")
        return 0
    try:
        rules = _select_rules(_parse_codes(args.select), _parse_codes(args.ignore))
        violations, errors = lint_paths(args.paths, rules)
    except LintError as exc:
        print(f"prismalint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(violations, errors))
    else:
        print(render_text(violations, errors))
    if args.statistics and violations:
        print(render_statistics(violations))
    if errors:
        return 2
    return 1 if violations else 0
