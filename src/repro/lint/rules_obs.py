"""PL006 — no host-clock calls inside the observability layer.

The tracer's whole determinism story rests on span/event timestamps
being *simulated* time handed in by the instrumented sites
(``EventLoop.now`` / ``PoolProcess.ready_at``).  One ``time.*`` call in
a span path would stamp host time into trace records and break the
byte-identical trace exports the CI trace-determinism job diffs.

PL001 already bans the well-known wall-clock reads everywhere in the
simulation tree; this rule is stricter and narrower: inside ``obs``
packages it flags *any* call resolved to the ``time`` module — sleep,
strftime, struct-time conversions, everything — because no part of the
trace path has legitimate business with host time.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.framework import ImportMap, Rule, SourceFile, Violation

__all__ = ["ObsWallClockRule"]


def _is_obs_path(source: SourceFile) -> bool:
    return "obs" in source.path_parts()


class ObsWallClockRule(Rule):
    """PL006: flag any ``time`` module call inside ``obs`` span paths."""

    code = "PL006"
    name = "obs-no-host-time"
    hint = (
        "the observability layer must be wall-clock free: timestamps are "
        "simulated time passed in by instrumented sites, never read here"
    )

    def check(self, source: SourceFile) -> Iterator[Violation]:
        if not _is_obs_path(source):
            return
        imports = ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = imports.resolve(node.func)
            if origin is not None and (
                origin == "time" or origin.startswith("time.")
            ):
                yield self.violation(
                    source, node, f"host-time call in obs layer: {origin}()"
                )
