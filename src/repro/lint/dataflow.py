"""Intra-function dataflow helpers shared by the project-wide rules.

Two small analyses over one function body, both deliberately lexical
(statement order, not control-flow order — the simulator's coding style
is straight-line enough that this is the right cost/precision point):

* :class:`UnorderedOrigins` — which local names hold values of
  non-deterministically-ordered origin (``set``/``frozenset`` literals,
  constructors, set algebra, set-typed parameters).  Iterating such a
  value without ``sorted(...)`` perturbs stats fingerprints between
  same-seed runs whenever ``PYTHONHASHSEED`` varies (PL102).
* :func:`iter_mutations` — statements that mutate an object *in place*
  through a root name (attribute/subscript stores, mutating method
  calls, augmented assignment through a chain).  Used by PL104 to catch
  payloads mutated after a ``send``/``post`` and by the
  :class:`~repro.lint.project.ProjectIndex` parameter-mutation
  summaries.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

__all__ = [
    "MUTATING_METHODS",
    "ORDER_SAFE_WRAPPERS",
    "UnorderedOrigins",
    "iter_mutations",
    "mutation_root",
]

#: Constructors whose result has hash-dependent iteration order.
_UNORDERED_CONSTRUCTORS = frozenset({"set", "frozenset"})

#: ``set``/``frozenset`` methods returning another unordered set.
_SET_PRODUCING_METHODS = frozenset(
    {
        "copy",
        "difference",
        "intersection",
        "symmetric_difference",
        "union",
    }
)

#: Set-algebra operators that keep the unordered taint.
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

#: Calls that consume an unordered value order-independently, so passing
#: a set straight in is fine: ``sorted(s)``, ``len(s)``, ``min(s)`` ...
ORDER_SAFE_WRAPPERS = frozenset(
    {"all", "any", "bool", "frozenset", "len", "max", "min", "set", "sorted"}
)

#: Annotation text that marks a parameter as set-typed.
_SET_ANNOTATION_RE = re.compile(
    r"\b(set|frozenset|Set|AbstractSet|FrozenSet|MutableSet)\b"
)

#: Methods that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popitem",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)


def _call_name(call: ast.Call) -> str:
    """Bare name of the called function (last attribute component)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


class UnorderedOrigins:
    """Which names in one function hold unordered (set-origin) values.

    Built with a small fixpoint over the function's assignments so
    taint flows through chains like ``a = set(x); b = a | other``.
    Rebinding a name to an ordered value (``a = sorted(a)``) clears it
    for *subsequent* statements — the analysis is lexical, matching how
    the straight-line simulator code reads.
    """

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._names: set[str] = set()
        arguments = fn.args
        for arg in [*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs]:
            if arg.annotation is not None and _SET_ANNOTATION_RE.search(
                _safe_unparse(arg.annotation)
            ):
                self._names.add(arg.arg)
        # Fixpoint over simple name-assignments: two passes are enough
        # for forward chains; a bounded loop keeps pathological cases
        # finite.
        for _ in range(4):
            changed = False
            for node in ast.walk(fn):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    tainted = self.is_unordered(node.value)
                    if tainted and target.id not in self._names:
                        self._names.add(target.id)
                        changed = True
            if not changed:
                break

    @property
    def names(self) -> frozenset[str]:
        return frozenset(self._names)

    def is_unordered(self, expr: ast.expr) -> bool:
        """Does *expr* evaluate to a hash-ordered (set-like) value?"""
        if isinstance(expr, ast.Name):
            return expr.id in self._names
        if isinstance(expr, ast.Set | ast.SetComp):
            return True
        if isinstance(expr, ast.Call):
            name = _call_name(expr)
            if name in _UNORDERED_CONSTRUCTORS:
                return True
            if (
                name in _SET_PRODUCING_METHODS
                and isinstance(expr.func, ast.Attribute)
                and self.is_unordered(expr.func.value)
            ):
                return True
            return False
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, _SET_BINOPS):
            return self.is_unordered(expr.left) or self.is_unordered(expr.right)
        if isinstance(expr, ast.IfExp):
            return self.is_unordered(expr.body) or self.is_unordered(expr.orelse)
        return False


def _safe_unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed node
        return ""


def access_path(node: ast.expr) -> tuple[str, ...] | None:
    """Names along an attribute/subscript chain, rooted at a ``Name``.

    ``self.buf["k"].rows`` → ``("self", "buf", "rows")`` — subscript
    steps are transparent.  Returns ``None`` when the chain does not
    bottom out at a plain name (a call result, say).
    """
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return tuple(reversed(parts))
        else:
            return None


def mutation_root(target: ast.expr) -> tuple[str, ...] | None:
    """Path of the object a store target mutates *in place*, or ``None``.

    The mutated object is the container the final step writes into:
    ``payload.rows[2].balance = x`` mutates ``("payload", "rows")``;
    ``self.buf["k"] = v`` mutates ``("self", "buf")``.  A bare-name
    rebind (``payload = ...``) returns ``None`` — rebinding is not
    mutation.
    """
    if isinstance(target, ast.Attribute | ast.Subscript):
        return access_path(target.value)
    return None


def iter_mutations(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[tuple[tuple[str, ...], ast.AST]]:
    """Yield ``(mutated_path, node)`` for every in-place mutation in *fn*.

    Covers attribute/subscript stores, augmented assignment through a
    chain, and calls of known mutating methods (``payload.append(...)``
    mutates ``("payload",)``, ``self.buf.update(...)`` mutates
    ``("self", "buf")``).
    """
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            targets: list[ast.expr] = list(node.targets)
        elif isinstance(node, ast.AugAssign | ast.AnnAssign):
            targets = [node.target]
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
                root = access_path(func.value)
                if root is not None:
                    yield root, node
            continue
        else:
            continue
        for target in targets:
            root = mutation_root(target)
            if root is not None:
                yield root, node
