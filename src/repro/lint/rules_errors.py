"""PL005 — exception hygiene: no bare ``except:``, no swallowed
``MachineError``.

A bare ``except:`` catches ``KeyboardInterrupt`` and ``SystemExit`` and
hides simulator bugs behind whatever fallback the handler runs.  And a
``MachineError`` means the simulated machine was *driven incorrectly* —
silently discarding one (an ``except MachineError: pass`` handler)
leaves the simulation in a state the cost model never accounted for.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.framework import Rule, SourceFile, Violation

__all__ = ["ExceptionHygieneRule"]


def _mentions_machine_error(annotation: ast.expr) -> bool:
    return any(
        isinstance(node, (ast.Name, ast.Attribute))
        and "MachineError" in ast.unparse(node)
        for node in ast.walk(annotation)
    )


def _body_is_trivial(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or bare `...`
        return False
    return True


class ExceptionHygieneRule(Rule):
    """PL005: bare excepts and silently-swallowed MachineErrors."""

    code = "PL005"
    name = "exception-hygiene"
    hint = (
        "catch the narrowest exception you can handle; re-raise or record "
        "MachineError instead of discarding it"
    )

    def check(self, source: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    source,
                    node,
                    "bare except: catches SystemExit/KeyboardInterrupt "
                    "and hides simulator bugs",
                )
            elif _mentions_machine_error(node.type) and _body_is_trivial(node.body):
                yield self.violation(
                    source,
                    node,
                    "MachineError swallowed silently: the simulation is now "
                    "in a state the cost model never charged for",
                )
