"""Baseline (suppression) files: grandfather findings *explicitly*.

When a new rule lands, pre-existing justified findings should not force
a hundred pragmas through the tree, but they must not be silently
dropped either.  A baseline file records them machine-readably: every
entry names the path, rule code, and exact message it suppresses, plus
a human reason — so the grandfathered set is reviewable in one place
and shrinks visibly as findings get fixed.

Matching is by ``(path, code, message)`` with a per-entry count, *not*
by line number: messages carry the function/class names, so entries
survive unrelated edits that shift lines, while any change to the
finding itself (renamed function, new occurrence) surfaces again.

Format (JSON, sorted, diff-friendly)::

    {
      "version": 1,
      "entries": [
        {"path": "src/repro/...", "code": "PL102", "count": 1,
         "message": "...", "reason": "why this is acceptable"}
      ]
    }

``apply_baseline`` returns the violations that are *not* covered plus
the stale entries (covering nothing any more) so the CLI can nag about
dead weight without failing the run.
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.lint.framework import LintError, Violation

__all__ = [
    "Baseline",
    "BaselineEntry",
    "apply_baseline",
    "write_baseline",
]

_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding (or several identical ones)."""

    path: str
    code: str
    message: str
    count: int = 1
    reason: str = ""

    def key(self) -> tuple[str, str, str]:
        return (_normalise(self.path), self.code, self.message)


def _normalise(path: str) -> str:
    return path.replace("\\", "/")


@dataclass
class Baseline:
    """A parsed baseline file."""

    path: Path
    entries: list[BaselineEntry]

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise LintError(f"{path}: cannot read baseline: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise LintError(f"{path}: baseline is not valid JSON: {exc}") from exc
        if not isinstance(raw, dict) or raw.get("version") != _VERSION:
            raise LintError(
                f"{path}: unsupported baseline (want {{'version': {_VERSION}}})"
            )
        entries: list[BaselineEntry] = []
        for item in raw.get("entries", []):
            if not isinstance(item, dict):
                raise LintError(f"{path}: malformed baseline entry: {item!r}")
            try:
                entries.append(
                    BaselineEntry(
                        path=str(item["path"]),
                        code=str(item["code"]).upper(),
                        message=str(item["message"]),
                        count=int(item.get("count", 1)),
                        reason=str(item.get("reason", "")),
                    )
                )
            except KeyError as exc:
                raise LintError(
                    f"{path}: baseline entry missing field {exc}: {item!r}"
                ) from exc
        return cls(path, entries)


def apply_baseline(
    violations: Sequence[Violation], baseline: Baseline
) -> tuple[list[Violation], list[BaselineEntry]]:
    """Split *violations* against *baseline*.

    Returns ``(remaining, stale)``: violations not covered by any entry,
    and entries whose budget was not (fully) consumed — candidates for
    deletion now the finding is fixed.
    """
    budget: Counter[tuple[str, str, str]] = Counter()
    for entry in baseline.entries:
        budget[entry.key()] += entry.count
    remaining: list[Violation] = []
    for violation in violations:
        key = (_normalise(violation.path), violation.code, violation.message)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            remaining.append(violation)
    stale = [entry for entry in baseline.entries if budget.get(entry.key(), 0) > 0]
    return remaining, stale


def write_baseline(
    path: Path, violations: Sequence[Violation], reason: str
) -> int:
    """Write a fresh baseline covering *violations*; returns entry count.

    Identical findings collapse into one counted entry.  Every entry is
    stamped with *reason* — edit the file afterwards to give each its
    real justification; an unexplained baseline defeats the point.
    """
    grouped: Counter[tuple[str, str, str]] = Counter(
        (_normalise(v.path), v.code, v.message) for v in violations
    )
    entries = [
        {
            "path": key[0],
            "code": key[1],
            "message": key[2],
            "count": count,
            "reason": reason,
        }
        for key, count in sorted(grouped.items())
    ]
    payload = {"version": _VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", "utf-8")
    return len(entries)
