"""PL002 — no unseeded randomness.

Deterministic replay is a hard requirement of the simulated machine: the
same program on the same configuration must produce bit-for-bit the same
timings and results.  The module-level ``random.*`` functions draw from
a process-global generator seeded from the OS, and ``random.Random()``
without a seed does the same — both make runs irreproducible.  The fix
is always the same: thread an explicit ``random.Random(seed)`` instance
through, as the traffic generators and workloads already do.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.framework import ImportMap, Rule, SourceFile, Violation

__all__ = ["UnseededRandomRule"]

#: Module-level random functions that consume or reset the global RNG.
GLOBAL_RNG_FUNCTIONS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)


def _call_is_seeded(node: ast.Call) -> bool:
    """True when ``random.Random(...)`` received a seed argument."""
    if node.args and not isinstance(node.args[0], ast.Constant):
        return True
    if node.args and getattr(node.args[0], "value", 0) is not None:
        return True
    return any(keyword.arg == "x" for keyword in node.keywords)


class UnseededRandomRule(Rule):
    """PL002: flag global-RNG calls and unseeded ``random.Random()``."""

    code = "PL002"
    name = "no-unseeded-random"
    hint = (
        "create an explicit random.Random(seed) and thread it through; "
        "the global RNG breaks deterministic replay"
    )

    def check(self, source: SourceFile) -> Iterator[Violation]:
        imports = ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = imports.resolve(node.func)
            if origin is None or not origin.startswith("random."):
                continue
            leaf = origin.split(".", 1)[1]
            if leaf in GLOBAL_RNG_FUNCTIONS:
                yield self.violation(
                    source, node, f"global-RNG call: {origin}()"
                )
            elif leaf == "Random" and not _call_is_seeded(node):
                yield self.violation(
                    source,
                    node,
                    "random.Random() constructed without a seed",
                )
