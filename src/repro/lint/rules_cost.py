"""PL101 — unmetered work in charged paths.

The paper's cost argument (and every speedup experiment built on it)
assumes all simulated work is billed to the simulated clock through a
:class:`~repro.exec.operators.WorkMeter` or ``process.charge``.  The
recurring bug class — PR 3's free ``CommitLog.outcomes()`` scan, PR 4's
uncharged ``LimitNode`` rows — is a loop over tuples that does real
per-row work while charging nothing, silently deflating simulated
response times.

The rule walks every function in the charged layers (``exec``, ``ofm``,
``core``, ``algebra``) and flags loops/comprehensions over row
collections (iterable or loop variable named ``row``/``rows``/
``tuple(s)``/``batch(es)``, or annotated ``Rows``/``Sequence[Row]``)
inside functions that never account for the work: no direct meter
mutation, no ``*.charge(...)``, no meter handed to a callee, and — via
the :class:`~repro.lint.project.ProjectIndex` one-level call graph — no
call to a helper that itself charges.  Generators that merely *produce*
rows for a charged consumer should say so with a disable pragma naming
the consumer, the same contract PL004 uses.

Batch kernels (PR 7) are metered at the *batch* boundary: the operators
of :mod:`repro.exec.operators` charge a whole batch's closed-form work
in one place, then run a compiled kernel whose loop carries no meter of
its own.  Two shapes are therefore recognized as metered without
pragmas:

* **kernel factories** — row loops inside a ``lambda``/closure that a
  ``batch_*``/``*_kernel`` function *returns* (the loop is deferred;
  whichever batch operator invokes the kernel charges per batch), and
* **ColumnBatch layout conversion** — methods of the ``ColumnBatch``
  container itself (row↔column materialization), whose cost the
  consuming kernel's operator charges once per batch.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.lint.framework import SourceFile, Violation
from repro.lint.project import ProjectIndex, ProjectRule, iter_functions

__all__ = ["UnmeteredWorkRule"]

#: Layers whose functions carry the simulation's cost argument.
CHARGED_DIRS = frozenset({"algebra", "core", "exec", "ofm"})

#: Identifier (last path component) that denotes a row collection.
_ROWISH_RE = re.compile(r"(^|_)(row|rows|tuple|tuples|batch|batches)(_|$)")

#: Row-collection type annotations.
_ROWISH_ANNOTATION_RE = re.compile(r"\b(Rows|Row\]|Sequence\[Row|ColumnBatch)\b")

#: Functions that *produce* batch kernels rather than running row work:
#: ``batch_*`` / ``*_batch`` names and ``*_kernel`` builders.
_KERNEL_FACTORY_RE = re.compile(r"(^|_)batch(_|$)|_kernel$")

#: The dual-representation batch container; its layout-conversion
#: methods are charged by the batch operator that consumes the batch.
_BATCH_CONTAINER = "ColumnBatch"


def _returned_kernel_nodes(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[int]:
    """ids of AST nodes whose execution is deferred into a returned kernel.

    Covers ``lambda``s appearing in a ``return`` expression and nested
    functions whose name a ``return`` mentions.
    """
    returned_names: set[str] = set()
    deferred: set[int] = set()
    for node in ast.walk(fn):
        if not (isinstance(node, ast.Return) and node.value is not None):
            continue
        for sub in ast.walk(node.value):
            if isinstance(sub, ast.Lambda):
                deferred.update(id(inner) for inner in ast.walk(sub))
            elif isinstance(sub, ast.Name):
                returned_names.add(sub.id)
    if returned_names:
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.FunctionDef | ast.AsyncFunctionDef)
                and node is not fn
                and node.name in returned_names
            ):
                deferred.update(id(inner) for inner in ast.walk(node))
    return deferred


def _in_scope(source: SourceFile) -> bool:
    return any(part in CHARGED_DIRS for part in source.path_parts()[:-1])


def _last_identifier(expr: ast.expr) -> str:
    node = expr
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
    return ""


def _target_names(target: ast.expr) -> Iterator[str]:
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            yield node.id


def _is_rowish_name(name: str) -> bool:
    return bool(name) and bool(_ROWISH_RE.search(name))


def _rowish_params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    arguments = fn.args
    for arg in [*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs]:
        if _is_rowish_name(arg.arg):
            names.add(arg.arg)
        elif arg.annotation is not None:
            try:
                text = ast.unparse(arg.annotation)
            except Exception:  # pragma: no cover - malformed annotation
                continue
            if _ROWISH_ANNOTATION_RE.search(text):
                names.add(arg.arg)
    return names


def _row_loops(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, rowish_params: set[str]
) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(node, what)`` for loops/comprehensions over row collections."""
    for node in ast.walk(fn):
        if isinstance(node, ast.For):
            pairs = [(node.iter, node.target)]
        elif isinstance(
            node, ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp
        ):
            pairs = [(gen.iter, gen.target) for gen in node.generators]
        else:
            continue
        for iterable, target in pairs:
            iter_name = _last_identifier(iterable)
            if (
                _is_rowish_name(iter_name)
                or iter_name in rowish_params
                or any(_is_rowish_name(n) for n in _target_names(target))
            ):
                yield node, iter_name or next(
                    (n for n in _target_names(target) if _is_rowish_name(n)), "rows"
                )
                break


class UnmeteredWorkRule(ProjectRule):
    """PL101: row loops in charged paths must bill a meter somewhere."""

    code = "PL101"
    name = "unmetered-work"
    hint = (
        "per-row work in exec/ofm/core/algebra must reach a WorkMeter or "
        "process.charge (directly, or through a charging helper); if the "
        "caller accounts for it, say where with "
        "'# prismalint: disable=PL101 -- charged in <site>'"
    )

    def check_project(
        self, source: SourceFile, index: ProjectIndex
    ) -> Iterator[Violation]:
        if not _in_scope(source):
            return
        for owner, fn in iter_functions(source.tree):
            if self._function_charges(fn, index):
                continue
            if owner == _BATCH_CONTAINER:
                # Layout conversion inside the batch container: the
                # batch operator consuming the result charges per batch.
                continue
            deferred: set[int] = (
                _returned_kernel_nodes(fn)
                if _KERNEL_FACTORY_RE.search(fn.name)
                else set()
            )
            rowish = _rowish_params(fn)
            qual = f"{owner}.{fn.name}" if owner else fn.name
            for node, what in _row_loops(fn, rowish):
                if id(node) in deferred:
                    # A kernel factory: the loop runs later, inside a
                    # batch operator that charges once per batch.
                    continue
                yield self.violation(
                    source,
                    node,
                    f"loop over {what!r} in {qual}() does per-row work but "
                    "nothing in the function charges a meter",
                )

    @staticmethod
    def _function_charges(
        fn: ast.FunctionDef | ast.AsyncFunctionDef, index: ProjectIndex
    ) -> bool:
        """Direct charge, meter hand-off, or call to a charging helper."""
        info = index.function_for_node(fn)
        if info is None:  # pragma: no cover - index built over other files
            return True
        if info.summary.charges_directly or info.meter_params:
            return True
        return any(
            index.is_charging_callee(callee) for callee in info.summary.calls
        )
