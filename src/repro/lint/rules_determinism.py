"""PL102 — iteration over hash-ordered collections.

Same-seed runs must be bit-identical (PAPER.md §3): the golden-stats
fingerprints, the trace-determinism CI job, and every perf-gate
baseline all hash simulated state.  ``set``/``frozenset`` iteration
order depends on ``PYTHONHASHSEED`` for str keys, so a bare
``for x in some_set`` that feeds *anything* ordered — a list, a stats
counter updated in float arithmetic, a message sequence — silently
perturbs fingerprints between interpreter invocations.  The already
fixed pattern is ``core/gdh.py``'s ``for resource in sorted(set(...))``.

The rule runs an intra-function dataflow walk
(:class:`~repro.lint.dataflow.UnorderedOrigins`) to find names of
set origin — constructors, literals, set algebra, set-typed
parameters — then flags:

* ``for`` statements and comprehension generators iterating one;
* ``list(...)``/``tuple(...)`` materialisations of one (they freeze the
  hash order into an ordered value).

Order-independent consumers (``sorted``, ``len``, ``min``, ``max``,
``any``, ``all``, membership tests, set algebra) are fine.  Iterations
that are *provably* order-insensitive to a human (e.g. building another
set) still get flagged — that judgement call is exactly what the
``# prismalint: disable=PL102 -- <why>`` pragma is for.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.dataflow import ORDER_SAFE_WRAPPERS, UnorderedOrigins
from repro.lint.framework import Rule, SourceFile, Violation
from repro.lint.project import iter_functions

__all__ = ["UnorderedIterationRule"]

_MATERIALISERS = frozenset({"list", "tuple"})


def _wrapping_calls(fn: ast.AST) -> dict[int, str]:
    """id(argument node) -> name of the call that consumes it directly."""
    consumed: dict[int, str] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            for arg in node.args:
                consumed[id(arg)] = node.func.id
    return consumed


class UnorderedIterationRule(Rule):
    """PL102: iterating a set without ``sorted`` perturbs fingerprints."""

    code = "PL102"
    name = "unordered-iteration"
    hint = (
        "set/frozenset iteration order follows PYTHONHASHSEED, not the "
        "simulation; wrap in sorted(...) or justify with "
        "'# prismalint: disable=PL102 -- <why order cannot leak>'"
    )

    def check(self, source: SourceFile) -> Iterator[Violation]:
        for owner, fn in iter_functions(source.tree):
            origins = UnorderedOrigins(fn)
            qual = f"{owner}.{fn.name}" if owner else fn.name
            consumed = _wrapping_calls(fn)
            for node in ast.walk(fn):
                if isinstance(node, ast.For):
                    if origins.is_unordered(node.iter):
                        yield self.violation(
                            source,
                            node,
                            f"for-loop in {qual}() iterates "
                            f"{self._describe(node.iter)} in hash order",
                        )
                elif isinstance(
                    node, ast.ListComp | ast.DictComp | ast.GeneratorExp
                ):
                    # A SetComp result is itself unordered — order cannot
                    # leak through it, so only ordered-result forms count.
                    if consumed.get(id(node)) in ORDER_SAFE_WRAPPERS:
                        continue
                    for gen in node.generators:
                        if origins.is_unordered(gen.iter):
                            yield self.violation(
                                source,
                                node,
                                f"comprehension in {qual}() iterates "
                                f"{self._describe(gen.iter)} in hash order",
                            )
                            break
                elif isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Name)
                        and func.id in _MATERIALISERS
                        and len(node.args) == 1
                        and origins.is_unordered(node.args[0])
                        and consumed.get(id(node)) not in ORDER_SAFE_WRAPPERS
                    ):
                        yield self.violation(
                            source,
                            node,
                            f"{func.id}(...) in {qual}() freezes the hash "
                            f"order of {self._describe(node.args[0])}",
                        )

    @staticmethod
    def _describe(expr: ast.expr) -> str:
        try:
            text = ast.unparse(expr)
        except Exception:  # pragma: no cover - malformed node
            return "a set-origin value"
        if len(text) > 40:
            text = text[:37] + "..."
        return f"set-origin {text!r}"
