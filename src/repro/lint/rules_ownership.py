"""PL104 — payload mutated after a ``send``/``post`` (static ownership).

Messages in the real PRISMA machine are copied onto the wire; in the
reproduction they are Python references, so a sender that keeps
mutating a payload after :meth:`PoolRuntime.post` hands the receiver a
*different* message than the one that was "sent".  The runtime
sanitizer (:mod:`repro.pool.sanitizer`) catches this when it happens in
a test run; this rule is its static complement, catching the pattern
before any test executes — including in paths the suite never drives.

Within each function, every ``*.send(...)`` / ``*.post(...)`` call is
scanned for payload arguments (``post``'s third positional, or a
``payload=``/``message=``/``msg=`` keyword on either).  If the payload
is a name or ``self.<attr>`` path, any lexically later in-place
mutation of that object in the same function — attribute/subscript
stores, ``append``/``update``/... calls — is flagged.  One level of the
call graph is consulted too: handing the sent payload to a project
helper whose summary says it mutates its parameters is flagged as a
probable mutation-by-proxy.

Rebinding the name (``payload = {...}``) is fine — that is how you
*stop* owning a message.  Mutations lexically before the send (loop
bodies that rebuild then re-send) are the runtime sanitizer's half of
the contract.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.dataflow import access_path, iter_mutations
from repro.lint.framework import SourceFile, Violation
from repro.lint.project import ProjectIndex, ProjectRule, iter_functions

__all__ = ["MessageOwnershipRule"]

_SEND_METHODS = frozenset({"post", "send"})
_PAYLOAD_KEYWORDS = frozenset({"message", "msg", "payload"})


def _payload_exprs(call: ast.Call) -> Iterator[ast.expr]:
    func = call.func
    method = func.attr if isinstance(func, ast.Attribute) else ""
    if method == "post" and len(call.args) >= 3:
        yield call.args[2]
    for keyword in call.keywords:
        if keyword.arg in _PAYLOAD_KEYWORDS:
            yield keyword.value


def _is_send_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _SEND_METHODS
    )


def _fmt(path: tuple[str, ...]) -> str:
    return ".".join(path)


class MessageOwnershipRule(ProjectRule):
    """PL104: once sent, a payload belongs to the receiver."""

    code = "PL104"
    name = "message-ownership"
    hint = (
        "a sent payload belongs to the receiver; build a fresh object per "
        "message (or rebind before reuse) — the runtime sanitizer "
        "(REPRO_SANITIZE=1) enforces the same contract dynamically"
    )

    def check_project(
        self, source: SourceFile, index: ProjectIndex
    ) -> Iterator[Violation]:
        for owner, fn in iter_functions(source.tree):
            qual = f"{owner}.{fn.name}" if owner else fn.name
            sends: list[tuple[int, tuple[str, ...]]] = []
            for node in ast.walk(fn):
                if not _is_send_call(node):
                    continue
                assert isinstance(node, ast.Call)
                for payload in _payload_exprs(node):
                    path = access_path(payload)
                    if path is not None:
                        sends.append((node.lineno, path))
            if not sends:
                continue
            rebinds = self._rebind_lines(fn)
            yield from self._direct_mutations(source, fn, qual, sends, rebinds)
            yield from self._proxy_mutations(
                source, index, fn, qual, sends, rebinds
            )

    @staticmethod
    def _rebind_lines(
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> dict[str, list[int]]:
        """Lines where a bare name is rebound (ownership released)."""
        rebinds: dict[str, list[int]] = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                targets: list[ast.expr] = list(node.targets)
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    rebinds.setdefault(target.id, []).append(node.lineno)
        return rebinds

    @staticmethod
    def _released(
        rebinds: dict[str, list[int]],
        payload: tuple[str, ...],
        send_line: int,
        use_line: int,
    ) -> bool:
        """Was the payload name rebound between the send and the use?"""
        return any(
            send_line < line <= use_line
            for line in rebinds.get(payload[0], ())
        )

    def _direct_mutations(
        self,
        source: SourceFile,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        qual: str,
        sends: list[tuple[int, tuple[str, ...]]],
        rebinds: dict[str, list[int]],
    ) -> Iterator[Violation]:
        for mutated, node in iter_mutations(fn):
            lineno = getattr(node, "lineno", 0)
            for send_line, payload in sends:
                if lineno <= send_line:
                    continue
                if self._released(rebinds, payload, send_line, lineno):
                    continue
                if mutated[: len(payload)] == payload:
                    yield self.violation(
                        source,
                        node,
                        f"{_fmt(mutated)} is mutated in {qual}() after "
                        f"{_fmt(payload)} was sent on line {send_line}",
                    )
                    break

    def _proxy_mutations(
        self,
        source: SourceFile,
        index: ProjectIndex,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        qual: str,
        sends: list[tuple[int, tuple[str, ...]]],
        rebinds: dict[str, list[int]],
    ) -> Iterator[Violation]:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call) or _is_send_call(node):
                continue
            func = node.func
            callee = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else ""
            )
            if not callee or not index.mutates_params(callee):
                continue
            for arg in node.args:
                path = access_path(arg)
                if path is None:
                    continue
                for send_line, payload in sends:
                    if (
                        node.lineno > send_line
                        and path == payload
                        and not self._released(
                            rebinds, payload, send_line, node.lineno
                        )
                    ):
                        yield self.violation(
                            source,
                            node,
                            f"{_fmt(payload)} was sent on line {send_line} "
                            f"and is later passed to {callee}(), which "
                            "mutates its parameters",
                        )
                        break
