"""Project-wide symbol index for prismalint.

The PL001–PL006 generation of rules looked at one file at a time, so
bug classes that only show up *across* functions or modules — an
uncharged loop whose helper was supposed to bill the meter, a stats
surface missing one leg of the Snapshot protocol it inherits from two
modules away — sailed through.  :class:`ProjectIndex` gives rules the
cross-module view:

* a symbol table of every module, class, and function in the linted
  file set (module names recovered from the ``src`` layout);
* per-function **summaries** — "charges a WorkMeter", "mutates
  parameter *i*", "iterates an unordered collection" — computed once;
* a **one-level call graph**: a function that calls a directly-charging
  helper (or hands its meter to one) is itself considered charging.
  One level is deliberate: deeper transitive closure would launder
  accountability through long chains, and the paper's cost argument
  wants the charge visible near the work.

Rules that need the index subclass :class:`ProjectRule` and receive it
in :meth:`~ProjectRule.check_project`.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.lint.dataflow import UnorderedOrigins, access_path, iter_mutations
from repro.lint.framework import Rule, SourceFile, Violation

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "FunctionSummary",
    "ProjectIndex",
    "ProjectRule",
    "iter_functions",
]

#: A parameter whose name or annotation matches is a work meter: the
#: holder is expected to bill simulated work to it.
_METER_NAME_RE = re.compile(r"(^|_)meter$|^meter(_|$)")
_METER_ANNOTATION_RE = re.compile(r"\bWorkMeter\b")

#: Bases that are interface machinery, not project classes.
_EXTERNAL_BASES = frozenset(
    {"ABC", "Enum", "Exception", "Generic", "Protocol", "object"}
)


def iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[str | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(class_name, fn)`` for every top-level function/method.

    Functions nested inside other functions are analysed as part of
    their enclosing function, mirroring the PL003/PL004 convention.
    """

    def walk(
        node: ast.AST, owner: str | None
    ) -> Iterator[tuple[str | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.FunctionDef | ast.AsyncFunctionDef):
                yield owner, child
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, child.name)
            elif not isinstance(child, ast.Lambda):
                yield from walk(child, owner)

    return walk(tree, None)


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed node
        return ""


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    arguments = fn.args
    return tuple(
        arg.arg
        for arg in [*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs]
    )


def _is_meter_param(arg: ast.arg) -> bool:
    if _METER_NAME_RE.search(arg.arg):
        return True
    return arg.annotation is not None and bool(
        _METER_ANNOTATION_RE.search(_unparse(arg.annotation))
    )


def _is_meter_expr(expr: ast.expr) -> bool:
    """Does *expr* name a work meter (``meter``, ``self._meter`` ...)?"""
    path = access_path(expr)
    return path is not None and bool(_METER_NAME_RE.search(path[-1]))


def _is_abstract_body(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """A body that is only a docstring plus ``...``/``raise NotImplementedError``."""
    body = list(fn.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    if len(body) != 1:
        return False
    stmt = body[0]
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
        return stmt.value.value is Ellipsis
    if isinstance(stmt, ast.Raise) and stmt.exc is not None:
        return "NotImplementedError" in _unparse(stmt.exc)
    if isinstance(stmt, ast.Pass):
        return True
    return False


@dataclass(frozen=True)
class FunctionSummary:
    """What one function does, as far as the rules care."""

    #: Bills work directly: mutates a meter's counters, calls
    #: ``*.charge(...)``, or hands a meter to a callee.
    charges_directly: bool
    #: Positional-parameter names the function mutates in place.
    mutated_params: frozenset[str]
    #: Contains a loop/comprehension over an unordered (set-origin) value.
    iterates_unordered: bool
    #: Bare names of everything it calls (one level of the call graph).
    calls: frozenset[str]


@dataclass
class FunctionInfo:
    """One function or method plus its summary."""

    module: str
    qualname: str
    name: str
    owner: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: tuple[str, ...]
    meter_params: frozenset[str]
    is_abstract: bool
    summary: FunctionSummary


@dataclass
class ClassInfo:
    """One class: resolved base names and its methods."""

    module: str
    name: str
    node: ast.ClassDef
    bases: tuple[str, ...]
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


def _summarise(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, params: tuple[str, ...]
) -> FunctionSummary:
    charges = False
    calls: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            func = node.func
            callee = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else ""
            )
            if callee:
                calls.add(callee)
            if "charge" in callee:
                charges = True
            elif (
                callee == "add"
                and isinstance(func, ast.Attribute)
                and _is_meter_expr(func.value)
            ):
                charges = True
            elif any(
                _is_meter_expr(arg)
                for arg in [*node.args, *[kw.value for kw in node.keywords]]
            ):
                # Handing the meter to a callee delegates the billing.
                charges = True
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Attribute
        ):
            if _is_meter_expr(node.target.value):
                charges = True
    param_set = frozenset(params)
    mutated = frozenset(
        path[0]
        for path, _node in iter_mutations(fn)
        if path[0] in param_set and path[0] != "self"
    )
    origins = UnorderedOrigins(fn)
    iterates = any(
        origins.is_unordered(node.iter)
        for node in ast.walk(fn)
        if isinstance(node, ast.For)
    ) or any(
        origins.is_unordered(gen.iter)
        for node in ast.walk(fn)
        if isinstance(node, ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp)
        for gen in node.generators
    )
    return FunctionSummary(
        charges_directly=charges,
        mutated_params=mutated,
        iterates_unordered=iterates,
        calls=frozenset(calls),
    )


def _module_name(source: SourceFile) -> str:
    """Dotted module name recovered from the path (``src`` layout aware)."""
    parts = list(source.path.parts)
    stem = source.path.stem
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    dotted = [p for p in parts[:-1] if p not in (".", "")]
    if stem != "__init__":
        dotted.append(stem)
    return ".".join(dotted) if dotted else stem


class ProjectIndex:
    """Symbol table + summaries + one-level call graph over a file set."""

    def __init__(self, sources: Sequence[SourceFile]) -> None:
        #: bare function name -> every FunctionInfo carrying it
        self.functions: dict[str, list[FunctionInfo]] = {}
        #: bare class name -> every ClassInfo carrying it
        self.classes: dict[str, list[ClassInfo]] = {}
        #: id(ast node) -> its FunctionInfo, for O(1) node lookups
        self._by_node: dict[int, FunctionInfo] = {}
        for source in sources:
            self._index_source(source)
        self._charging: frozenset[str] = self._compute_charging()

    # -- construction -----------------------------------------------------

    def _index_source(self, source: SourceFile) -> None:
        module = _module_name(source)
        class_infos: dict[str, ClassInfo] = {}
        for stmt in source.tree.body:
            if isinstance(stmt, ast.ClassDef):
                bases = tuple(
                    base
                    for base in (_unparse(b).split("[")[0] for b in stmt.bases)
                    if base
                )
                info = ClassInfo(module=module, name=stmt.name, node=stmt, bases=bases)
                class_infos[stmt.name] = info
                self.classes.setdefault(stmt.name, []).append(info)
        for owner, fn in iter_functions(source.tree):
            params = _param_names(fn)
            arguments = fn.args
            meter_params = frozenset(
                arg.arg
                for arg in [
                    *arguments.posonlyargs,
                    *arguments.args,
                    *arguments.kwonlyargs,
                ]
                if _is_meter_param(arg)
            )
            info = FunctionInfo(
                module=module,
                qualname=f"{owner}.{fn.name}" if owner else fn.name,
                name=fn.name,
                owner=owner,
                node=fn,
                params=params,
                meter_params=meter_params,
                is_abstract=_is_abstract_body(fn),
                summary=_summarise(fn, params),
            )
            self.functions.setdefault(fn.name, []).append(info)
            self._by_node[id(fn)] = info
            if owner in class_infos and fn.name not in class_infos[owner].methods:
                class_infos[owner].methods[fn.name] = info

    def _compute_charging(self) -> frozenset[str]:
        """Names considered charging helpers.

        A function charges if it bills directly, or takes a meter
        parameter (callers hand it the meter), or — one call-graph
        level — calls a function that bills directly.
        """
        direct = {
            name
            for name, infos in self.functions.items()
            if any(
                info.summary.charges_directly or info.meter_params
                for info in infos
            )
        }
        one_level = {
            name
            for name, infos in self.functions.items()
            if any(info.summary.calls & direct for info in infos)
        }
        return frozenset(direct | one_level)

    # -- queries ----------------------------------------------------------

    def is_charging_callee(self, name: str) -> bool:
        """Does calling *name* account simulated work to a meter?"""
        return "charge" in name or name in self._charging

    def function_for_node(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> FunctionInfo | None:
        """The FunctionInfo built for exactly this AST node."""
        return self._by_node.get(id(fn))

    def lookup_class(self, name: str) -> ClassInfo | None:
        """The project class called *name* (last dotted component)."""
        infos = self.classes.get(name.rsplit(".", maxsplit=1)[-1])
        return infos[0] if infos else None

    def resolve_methods(
        self, cls: ClassInfo, _seen: frozenset[str] = frozenset()
    ) -> dict[str, FunctionInfo]:
        """Methods of *cls* including project bases (depth-first MRO-ish)."""
        if cls.name in _seen:
            return {}
        seen = _seen | {cls.name}
        resolved: dict[str, FunctionInfo] = {}
        for base in cls.bases:
            last = base.rsplit(".", maxsplit=1)[-1]
            if last in _EXTERNAL_BASES:
                continue
            base_info = self.lookup_class(last)
            if base_info is not None:
                for name, info in self.resolve_methods(base_info, seen).items():
                    resolved.setdefault(name, info)
        resolved.update(cls.methods)
        return resolved

    def unresolved_bases(
        self, cls: ClassInfo, _seen: frozenset[str] = frozenset()
    ) -> tuple[str, ...]:
        """Base names (transitively) that the index cannot see.

        A non-empty result means inherited members may exist outside the
        linted file set, so "missing method" conclusions are unsafe.
        """
        if cls.name in _seen:
            return ()
        seen = _seen | {cls.name}
        missing: list[str] = []
        for base in cls.bases:
            last = base.rsplit(".", maxsplit=1)[-1]
            if last in _EXTERNAL_BASES:
                continue
            info = self.lookup_class(last)
            if info is None:
                missing.append(base)
            else:
                missing.extend(self.unresolved_bases(info, seen))
        return tuple(missing)

    def mutates_params(self, callee: str) -> bool:
        """Does any project function named *callee* mutate a parameter?

        Name-level and positional-blind: the one level of call graph the
        index keeps is about accountability, not full type inference.
        """
        return any(
            info.summary.mutated_params
            for info in self.functions.get(callee, [])
        )


class ProjectRule(Rule):
    """A rule that needs the cross-module :class:`ProjectIndex`."""

    requires_project = True

    def check_project(
        self, source: SourceFile, index: ProjectIndex
    ) -> Iterator[Violation]:
        raise NotImplementedError

    def check(self, source: SourceFile) -> Iterator[Violation]:
        # Degrade gracefully: a project of one file is still a project.
        yield from self.check_project(source, ProjectIndex([source]))

    def run(
        self, source: SourceFile, index: ProjectIndex | None = None
    ) -> Iterator[Violation]:
        checker = (
            self.check(source)
            if index is None
            else self.check_project(source, index)
        )
        for violation in checker:
            if not source.is_disabled(self.code, violation.line):
                yield violation
