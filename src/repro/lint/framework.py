"""Rule framework for prismalint.

A :class:`Rule` inspects one parsed :class:`SourceFile` and yields
:class:`Violation` records.  The framework handles the parts every rule
needs: parsing, import resolution, and the ``# prismalint: disable=``
escape hatch.

Disable comments come in two strengths:

* a comment *line* of its own (nothing but whitespace before the ``#``)
  disables the listed rules for the **whole file**;
* a *trailing* comment on a code line disables them for **that line
  only** (the line the violation is reported on).

``disable=all`` switches every rule off.  A reason after the codes is
encouraged: ``# prismalint: disable=PL004 -- charged by the caller``.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "ImportMap",
    "LintError",
    "Rule",
    "SourceFile",
    "Violation",
    "iter_python_files",
    "lint_paths",
]

#: Directory names never descended into when a directory is linted.
#: (Explicitly named files are always linted, so the violating fixtures
#: under tests/lint_fixtures stay reachable from the test suite.)
DEFAULT_EXCLUDED_DIRS = frozenset(
    {
        ".git",
        ".mypy_cache",
        ".ruff_cache",
        ".venv",
        "__pycache__",
        "build",
        "dist",
        "lint_fixtures",
    }
)

_DISABLE_RE = re.compile(r"#\s*prismalint:\s*disable=([A-Za-z0-9, ]+)")


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
            f"\n    hint: {self.hint}"
        )


class LintError(Exception):
    """A file could not be linted at all (I/O or syntax error)."""


def _parse_disables(text: str) -> tuple[set[str], dict[int, set[str]]]:
    """Extract file-level and line-level disable pragmas from source text."""
    file_disables: set[str] = set()
    line_disables: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _DISABLE_RE.search(line)
        if match is None:
            continue
        codes = {
            code.strip().upper()
            for code in match.group(1).split(",")
            if code.strip()
        }
        codes = {"ALL" if c == "ALL" else c for c in codes}
        if line[: match.start()].strip() == "":
            file_disables |= codes
        else:
            line_disables.setdefault(lineno, set()).update(codes)
    return file_disables, line_disables


@dataclass
class SourceFile:
    """One parsed Python file plus its disable pragmas."""

    path: Path
    text: str
    tree: ast.Module
    file_disables: set[str] = field(default_factory=set)
    line_disables: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "SourceFile":
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"{path}: cannot read: {exc}") from exc
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            raise LintError(
                f"{path}:{exc.lineno or 0}: syntax error: {exc.msg}"
            ) from exc
        file_disables, line_disables = _parse_disables(text)
        return cls(path, text, tree, file_disables, line_disables)

    def is_disabled(self, code: str, line: int) -> bool:
        for scope in (self.file_disables, self.line_disables.get(line, ())):
            if code in scope or "ALL" in scope:
                return True
        return False

    def path_parts(self) -> tuple[str, ...]:
        return self.path.parts


class ImportMap:
    """Resolves names in one module back to their imported origin.

    ``import time as t`` maps ``t`` to ``time``; ``from random import
    choice as pick`` maps ``pick`` to ``random.choice``.  Attribute
    chains are appended, so ``t.perf_counter`` resolves to
    ``time.perf_counter`` and ``datetime.datetime.now`` to itself.
    """

    def __init__(self, tree: ast.Module):
        self._origins: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._origins[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self._origins[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted origin of an expression, or None when not import-rooted."""
        chain: list[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self._origins.get(node.id)
        if origin is None:
            return None
        return ".".join([origin, *reversed(chain)])


class Rule:
    """Base class: subclasses set ``code``/``name``/``hint`` and implement
    :meth:`check` to yield violations for one file."""

    code: str = "PL000"
    name: str = "abstract"
    hint: str = ""

    def check(self, source: SourceFile) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self,
        source: SourceFile,
        node: ast.AST | None,
        message: str,
        hint: str | None = None,
    ) -> Violation:
        line = getattr(node, "lineno", 0) or 0
        col = getattr(node, "col_offset", 0) or 0
        return Violation(
            path=str(source.path),
            line=line,
            col=col + 1,
            code=self.code,
            message=message,
            hint=hint if hint is not None else self.hint,
        )

    def run(self, source: SourceFile) -> Iterator[Violation]:
        """Apply the rule, honouring disable pragmas."""
        for violation in self.check(source):
            if not source.is_disabled(self.code, violation.line):
                yield violation


def iter_python_files(paths: Sequence[Path | str]) -> Iterator[Path]:
    """Yield .py files under *paths*; explicit files bypass exclusions."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path not in seen:
                seen.add(path)
                yield path
            continue
        if not path.is_dir():
            raise LintError(f"{path}: no such file or directory")
        for candidate in sorted(path.rglob("*.py")):
            relative = candidate.relative_to(path)
            if any(part in DEFAULT_EXCLUDED_DIRS for part in relative.parts[:-1]):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_paths(
    paths: Sequence[Path | str],
    rules: Iterable[Rule],
) -> tuple[list[Violation], list[str]]:
    """Lint every Python file under *paths* with *rules*.

    Returns ``(violations, errors)`` where *errors* are files that could
    not be parsed (these should fail the run too).
    """
    rules = list(rules)
    violations: list[Violation] = []
    errors: list[str] = []
    for path in iter_python_files(paths):
        try:
            source = SourceFile.load(path)
        except LintError as exc:
            errors.append(str(exc))
            continue
        for rule in rules:
            violations.extend(rule.run(source))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations, errors
