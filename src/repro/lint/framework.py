"""Rule framework for prismalint.

A :class:`Rule` inspects one parsed :class:`SourceFile` and yields
:class:`Violation` records.  The framework handles the parts every rule
needs: parsing, import resolution, and the ``# prismalint: disable=``
escape hatch.

Disable comments come in two strengths:

* a comment *line* of its own (nothing but whitespace before the ``#``)
  disables the listed rules for the **whole file**;
* a *trailing* comment on a code line disables them for **that line
  only** (the line the violation is reported on).

``disable=all`` switches every rule off.  A reason after the codes is
encouraged: ``# prismalint: disable=PL004 -- charged by the caller``.
A pragma naming a rule code that no registered rule carries is itself
reported (as ``PL000``) instead of being silently accepted — a typo'd
``disable=PL102`` pragma that suppresses nothing is worse than noise.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.project import ProjectIndex

__all__ = [
    "PRAGMA_CODE",
    "ImportMap",
    "LintError",
    "Rule",
    "SourceFile",
    "Violation",
    "iter_python_files",
    "lint_paths",
    "registered_codes",
]

#: Directory names never descended into when a directory is linted.
#: (Explicitly named files are always linted, so the violating fixtures
#: under tests/lint_fixtures stay reachable from the test suite.)
DEFAULT_EXCLUDED_DIRS = frozenset(
    {
        ".git",
        ".mypy_cache",
        ".ruff_cache",
        ".venv",
        "__pycache__",
        "build",
        "dist",
        "lint_fixtures",
    }
)

_DISABLE_RE = re.compile(r"#\s*prismalint:\s*disable=([A-Za-z0-9, ]+)")

#: Meta-code for problems with the pragmas themselves (unknown rule
#: codes in a ``disable=`` list).  Not a selectable rule.
PRAGMA_CODE = "PL000"

#: Codes of every Rule subclass ever defined (auto-populated by
#: ``Rule.__init_subclass__``); the vocabulary pragmas are checked
#: against.
_REGISTERED_CODES: set[str] = set()


def registered_codes() -> frozenset[str]:
    """Every rule code known to the framework (for pragma validation)."""
    return frozenset(_REGISTERED_CODES)


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
            f"\n    hint: {self.hint}"
        )


class LintError(Exception):
    """A file could not be linted at all (I/O or syntax error)."""


def _parse_disables(
    text: str,
) -> tuple[set[str], dict[int, set[str]], list[tuple[int, str]]]:
    """Extract file/line disable pragmas plus unknown-code problems."""
    file_disables: set[str] = set()
    line_disables: dict[int, set[str]] = {}
    problems: list[tuple[int, str]] = []
    known = registered_codes()
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _DISABLE_RE.search(line)
        if match is None:
            continue
        codes = {
            code.strip().upper()
            for code in match.group(1).split(",")
            if code.strip()
        }
        for code in sorted(codes):
            if code != "ALL" and code not in known:
                problems.append((lineno, code))
        if line[: match.start()].strip() == "":
            file_disables |= codes
        else:
            line_disables.setdefault(lineno, set()).update(codes)
    return file_disables, line_disables, problems


@dataclass
class SourceFile:
    """One parsed Python file plus its disable pragmas."""

    path: Path
    text: str
    tree: ast.Module
    file_disables: set[str] = field(default_factory=set)
    line_disables: dict[int, set[str]] = field(default_factory=dict)
    #: ``(lineno, code)`` for disable pragmas naming unknown rule codes.
    pragma_problems: list[tuple[int, str]] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "SourceFile":
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"{path}: cannot read: {exc}") from exc
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            raise LintError(
                f"{path}:{exc.lineno or 0}: syntax error: {exc.msg}"
            ) from exc
        file_disables, line_disables, problems = _parse_disables(text)
        return cls(path, text, tree, file_disables, line_disables, problems)

    def is_disabled(self, code: str, line: int) -> bool:
        for scope in (self.file_disables, self.line_disables.get(line, ())):
            if code in scope or "ALL" in scope:
                return True
        return False

    def path_parts(self) -> tuple[str, ...]:
        return self.path.parts


class ImportMap:
    """Resolves names in one module back to their imported origin.

    ``import time as t`` maps ``t`` to ``time``; ``from random import
    choice as pick`` maps ``pick`` to ``random.choice``.  Attribute
    chains are appended, so ``t.perf_counter`` resolves to
    ``time.perf_counter`` and ``datetime.datetime.now`` to itself.
    """

    def __init__(self, tree: ast.Module):
        self._origins: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._origins[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self._origins[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted origin of an expression, or None when not import-rooted."""
        chain: list[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self._origins.get(node.id)
        if origin is None:
            return None
        return ".".join([origin, *reversed(chain)])


class Rule:
    """Base class: subclasses set ``code``/``name``/``hint`` and implement
    :meth:`check` to yield violations for one file."""

    code: str = PRAGMA_CODE
    name: str = "abstract"
    hint: str = ""
    #: Project-wide rules (see :class:`repro.lint.project.ProjectRule`)
    #: flip this and receive a ProjectIndex in ``run``.
    requires_project: bool = False

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        if cls.code != PRAGMA_CODE:
            _REGISTERED_CODES.add(cls.code)

    def check(self, source: SourceFile) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self,
        source: SourceFile,
        node: ast.AST | None,
        message: str,
        hint: str | None = None,
    ) -> Violation:
        line = getattr(node, "lineno", 0) or 0
        col = getattr(node, "col_offset", 0) or 0
        return Violation(
            path=str(source.path),
            line=line,
            col=col + 1,
            code=self.code,
            message=message,
            hint=hint if hint is not None else self.hint,
        )

    def run(
        self, source: SourceFile, index: "ProjectIndex | None" = None
    ) -> Iterator[Violation]:
        """Apply the rule, honouring disable pragmas.

        Per-file rules ignore *index*; :class:`ProjectRule` overrides
        this to route through :meth:`check_project`.
        """
        for violation in self.check(source):
            if not source.is_disabled(self.code, violation.line):
                yield violation


def iter_python_files(paths: Sequence[Path | str]) -> Iterator[Path]:
    """Yield .py files under *paths*; explicit files bypass exclusions."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path not in seen:
                seen.add(path)
                yield path
            continue
        if not path.is_dir():
            raise LintError(f"{path}: no such file or directory")
        for candidate in sorted(path.rglob("*.py")):
            relative = candidate.relative_to(path)
            if any(part in DEFAULT_EXCLUDED_DIRS for part in relative.parts[:-1]):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def _pragma_violations(source: SourceFile) -> Iterator[Violation]:
    """PL000 findings for disable pragmas naming unknown rule codes."""
    for lineno, code in source.pragma_problems:
        if source.is_disabled(PRAGMA_CODE, lineno):
            continue
        yield Violation(
            path=str(source.path),
            line=lineno,
            col=1,
            code=PRAGMA_CODE,
            message=f"unknown rule code {code!r} in disable pragma",
            hint=(
                "this pragma suppresses nothing; fix the typo or drop the "
                f"code (known codes: {', '.join(sorted(registered_codes()))})"
            ),
        )


def lint_paths(
    paths: Sequence[Path | str],
    rules: Iterable[Rule],
) -> tuple[list[Violation], list[str]]:
    """Lint every Python file under *paths* with *rules*.

    All files are parsed up front; if any rule is project-wide a
    :class:`~repro.lint.project.ProjectIndex` is built over the whole
    file set and shared, so cross-module rules see every symbol no
    matter which file they are currently reporting on.

    Returns ``(violations, errors)`` where *errors* are files that could
    not be parsed (these should fail the run too).
    """
    rules = list(rules)
    violations: list[Violation] = []
    errors: list[str] = []
    sources: list[SourceFile] = []
    for path in iter_python_files(paths):
        try:
            sources.append(SourceFile.load(path))
        except LintError as exc:
            errors.append(str(exc))
    index: "ProjectIndex | None" = None
    if any(rule.requires_project for rule in rules):
        from repro.lint.project import ProjectIndex

        index = ProjectIndex(sources)
    for source in sources:
        violations.extend(_pragma_violations(source))
        for rule in rules:
            if rule.requires_project:
                violations.extend(rule.run(source, index))
            else:
                violations.extend(rule.run(source))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations, errors
