"""PL103 — Snapshot-protocol conformance, checked cross-module.

:mod:`repro.obs.api` defines the one shape every stats surface agrees
on: ``stats() -> Mapping``, ``fingerprint() -> str``, ``reset() ->
None``, all taking only ``self``.  The :class:`Observatory` facade, the
golden-stats machinery, and the perf gate all *assume* that shape — a
class that grew a ``stats()`` but forgot ``reset()`` works fine until
the first ``observatory.reset()`` walks into an ``AttributeError`` mid
benchmark, and a ``stats(self, verbose)`` signature breaks the facade
at a distance.

Per-file linting cannot see this: the methods are routinely inherited
(``SnapshotMixin`` supplies ``fingerprint``) from classes in other
modules.  This rule resolves each class's methods through the
:class:`~repro.lint.project.ProjectIndex` class table and checks:

* any class exposing a concrete ``stats()`` or ``fingerprint()`` —
  directly or registered into an ``Observatory`` by constructor call —
  implements the **full** triple (abstract bodies, ``...`` or ``raise
  NotImplementedError``, do not satisfy the requirement);
* each leg takes only ``self`` (no required extra parameters), so the
  facade can call it blind.

Pure interface classes (every protocol method abstract) are exempt:
they *declare* the contract rather than claim to implement it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.framework import SourceFile, Violation
from repro.lint.project import ClassInfo, FunctionInfo, ProjectIndex, ProjectRule

__all__ = ["SnapshotConformanceRule"]

PROTOCOL_METHODS = ("stats", "fingerprint", "reset")

#: Triggering a class by one of these alone would be far too broad
#: (`reset` is a common verb); only the distinctive legs trigger.
_TRIGGER_METHODS = frozenset({"stats", "fingerprint"})


def _required_extra_params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> int:
    """Required parameters beyond ``self`` (defaults excused)."""
    arguments = fn.args
    positional = [*arguments.posonlyargs, *arguments.args]
    required = max(0, len(positional) - len(arguments.defaults)) - 1  # - self
    required_kwonly = sum(
        1 for default in arguments.kw_defaults if default is None
    )
    return max(0, required) + required_kwonly


def _registered_constructor_classes(source: SourceFile) -> dict[str, ast.AST]:
    """Class names passed to ``*.register(name, Cls(...))`` in this file."""
    found: dict[str, ast.AST] = {}
    for node in ast.walk(source.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "register"
            and len(node.args) == 2
        ):
            continue
        value = node.args[1]
        if isinstance(value, ast.Call):
            ctor = value.func
            name = (
                ctor.attr
                if isinstance(ctor, ast.Attribute)
                else ctor.id
                if isinstance(ctor, ast.Name)
                else ""
            )
            if name and name[:1].isupper():
                found.setdefault(name, node)
    return found


class SnapshotConformanceRule(ProjectRule):
    """PL103: a stats surface implements the whole Snapshot triple."""

    code = "PL103"
    name = "snapshot-conformance"
    hint = (
        "anything exposing stats()/fingerprint() is a Snapshot surface: "
        "implement stats() + fingerprint() + reset(), each taking only "
        "self, so Observatory/golden-stats tooling can drive it blind "
        "(contract: repro/obs/api.py)"
    )

    def check_project(
        self, source: SourceFile, index: ProjectIndex
    ) -> Iterator[Violation]:
        registered = _registered_constructor_classes(source)
        for infos in index.classes.values():
            for cls in infos:
                if cls.node not in source.tree.body:
                    continue
                yield from self._check_class(
                    source, index, cls, forced=cls.name in registered
                )
        # A registered constructor whose class the index cannot see at
        # all is a conformance hole too — but only warn when the class
        # is genuinely unknown project-wide, not merely defined elsewhere.
        for name, node in registered.items():
            if index.lookup_class(name) is None:
                yield self.violation(
                    source,
                    node,
                    f"class {name!r} is registered into an Observatory but "
                    "is not defined in the linted file set, so its Snapshot "
                    "conformance cannot be checked",
                    hint=(
                        "lint the module defining it together with this one, "
                        "or register an instance the index can resolve"
                    ),
                )

    def _check_class(
        self,
        source: SourceFile,
        index: ProjectIndex,
        cls: ClassInfo,
        forced: bool,
    ) -> Iterator[Violation]:
        resolved = index.resolve_methods(cls)
        concrete = {
            name: info
            for name, info in resolved.items()
            if name in PROTOCOL_METHODS and not info.is_abstract
        }
        triggered = forced or any(name in concrete for name in _TRIGGER_METHODS)
        if not triggered:
            return
        # A leg that is declared but abstract (``...``/``raise
        # NotImplementedError``) is deliberately deferred to subclasses —
        # the dangerous case is a leg that is absent *entirely*, which
        # only fails at a distance when the facade calls it.
        missing = [
            name for name in PROTOCOL_METHODS if name not in resolved
        ]
        # With bases outside the linted file set the missing legs may be
        # inherited invisibly — only the signature check stays safe.
        if missing and not index.unresolved_bases(cls):
            yield self.violation(
                source,
                cls.node,
                f"class {cls.name} exposes a Snapshot surface but has no "
                f"concrete {'/'.join(missing)} "
                f"(protocol: stats/fingerprint/reset, repro/obs/api.py)",
            )
        for name, info in concrete.items():
            extra = _required_extra_params(info.node)
            if extra:
                node: ast.AST = (
                    info.node if info.module == cls.module else cls.node
                )
                yield self.violation(
                    source,
                    node,
                    f"{cls.name}.{name}() takes {extra} required "
                    "parameter(s) beyond self; the Snapshot protocol "
                    "calls it with no arguments",
                )

