"""PL001 — no wall-clock reads inside the simulated machine.

Every behaviour of the reproduction unfolds in *simulated* time
(``PoolProcess.ready_at`` / ``EventLoop.now``); reading the host's clock
makes runs non-deterministic and couples experiment results to the
hardware they happen to run on.  Benchmark harnesses are the one place
wall-clock time is the point, so paths containing a ``benchmarks``
directory (or ``*_harness.py`` shims) are allowlisted.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.framework import ImportMap, Rule, SourceFile, Violation

__all__ = ["WallClockRule"]

#: Dotted origins whose *call* reads the host clock.
BANNED_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def _is_benchmark_shim(source: SourceFile) -> bool:
    parts = source.path_parts()
    return "benchmarks" in parts or source.path.stem.endswith("_harness")


class WallClockRule(Rule):
    """PL001: flag wall-clock reads outside benchmark shims."""

    code = "PL001"
    name = "no-wall-clock"
    hint = (
        "use simulated time (PoolProcess.ready_at / EventLoop.now); "
        "wall-clock reads belong only in benchmarks/ harness shims"
    )

    def check(self, source: SourceFile) -> Iterator[Violation]:
        if _is_benchmark_shim(source):
            return
        imports = ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = imports.resolve(node.func)
            if origin in BANNED_CALLS or (
                origin is not None
                and origin.startswith("datetime.")
                and origin.split(".")[-1] in {"now", "utcnow", "today"}
            ):
                yield self.violation(
                    source, node, f"wall-clock read: {origin}()"
                )
