"""PL003 / PL004 — the message-passing discipline of Section 3.1.

POOL-X processes "communicate via message-passing only, i.e. no shared
memory".  In the reproduction that means a process may mutate only its
own state; everything it wants another process to know must travel
through :meth:`PoolRuntime.send` / :meth:`PoolRuntime.post`, which
charge the machine's network cost model.  Two statically checkable
failure modes:

* **PL003** — cross-process mutation: writing an attribute on an object
  reached through *another* process reference, or module-level mutable
  state referenced from more than one process class.  Both are shared
  memory wearing a trench coat.
* **PL004** — clock indiscipline: a function that ships messages via
  ``runtime.send`` but never charges any CPU anywhere suggests the work
  that *produced* the message is unaccounted for, silently deflating
  response times.

Both rules apply only to modules under ``pool/``, ``machine/`` and
``core/`` directories — the layers that carry the simulation's
correctness argument.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.framework import Rule, SourceFile, Violation

__all__ = ["ClockDisciplineRule", "SharedStateRule"]

SCOPED_DIRS = frozenset({"pool", "machine", "core"})

_MUTABLE_CONSTRUCTORS = frozenset(
    {"Counter", "OrderedDict", "bytearray", "defaultdict", "deque", "dict", "list", "set"}
)


def _in_scope(source: SourceFile) -> bool:
    return any(part in SCOPED_DIRS for part in source.path_parts()[:-1])


def _top_level_functions(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Functions/methods not nested inside another function.

    Nested closures are analysed as part of their enclosing function, so
    a helper that charges on behalf of its closure still counts.
    """

    def walk(node: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child
            elif isinstance(child, ast.ClassDef):
                yield from walk(child)
            elif not isinstance(child, ast.Lambda):
                yield from walk(child)

    return walk(tree)


def _annotation_is_process(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - malformed annotation
        return False
    return "Process" in text or "Manager" in text


def _process_typed_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names in *fn* that (heuristically) refer to a PoolProcess."""
    names: set[str] = set()
    arguments = fn.args
    for arg in [*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs]:
        if _annotation_is_process(arg.annotation):
            names.add(arg.arg)
    if fn.name == "handle":
        names.add("sender")  # reactive-style handler: sender is a process
    for node in ast.walk(fn):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        func = node.value.func
        attr = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if attr == "spawn" or (
            "process" in attr.lower() and attr not in {"live_processes", "processes"}
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    names.discard("self")
    return names


def _root_name(target: ast.expr) -> str | None:
    """Root Name of an attribute/subscript chain, if the chain has one
    attribute step (i.e. the write lands on somebody else's state)."""
    node = target
    saw_attribute = False
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            saw_attribute = True
        node = node.value
    if saw_attribute and isinstance(node, ast.Name):
        return node.id
    return None


class SharedStateRule(Rule):
    """PL003: message-passing only — no cross-process mutation, no
    module-level mutable state shared between process classes."""

    code = "PL003"
    name = "message-passing-only"
    hint = (
        "processes own their state; communicate through PoolRuntime.send/post "
        "instead of reaching into another process (Section 3.1: no shared memory)"
    )

    def check(self, source: SourceFile) -> Iterator[Violation]:
        if not _in_scope(source):
            return
        yield from self._cross_process_writes(source)
        yield from self._shared_module_state(source)

    def _cross_process_writes(self, source: SourceFile) -> Iterator[Violation]:
        for fn in _top_level_functions(source.tree):
            process_names = _process_typed_names(fn)
            if not process_names:
                continue
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                else:
                    continue
                for target in targets:
                    root = _root_name(target)
                    if root in process_names:
                        yield self.violation(
                            source,
                            node,
                            f"cross-process mutation: {ast.unparse(target)} "
                            f"writes through process reference {root!r}",
                        )

    def _shared_module_state(self, source: SourceFile) -> Iterator[Violation]:
        tree = source.tree
        mutable_globals: dict[str, ast.stmt] = {}
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                value, targets = stmt.value, stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value, targets = stmt.value, [stmt.target]
            else:
                continue
            if not _is_mutable_literal(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id != "__all__":
                    mutable_globals[target.id] = stmt
        if not mutable_globals:
            return
        process_classes = _process_classes(tree)
        if len(process_classes) < 2:
            return
        for name, stmt in mutable_globals.items():
            sharers = [
                cls.name
                for cls in process_classes
                if any(
                    isinstance(node, ast.Name) and node.id == name
                    for node in ast.walk(cls)
                )
            ]
            if len(sharers) >= 2:
                yield self.violation(
                    source,
                    stmt,
                    f"module-level mutable {name!r} is shared by process "
                    f"classes {', '.join(sharers)}",
                )


def _is_mutable_literal(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _process_classes(tree: ast.Module) -> list[ast.ClassDef]:
    """Classes that (transitively, within this module) subclass a
    process type — detected by base names containing 'Process'."""
    classes = [node for node in tree.body if isinstance(node, ast.ClassDef)]
    process_names: set[str] = set()
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name in process_names:
                continue
            for base in cls.bases:
                text = ast.unparse(base)
                if "Process" in text or text in process_names:
                    process_names.add(cls.name)
                    changed = True
                    break
    return [cls for cls in classes if cls.name in process_names]


class ClockDisciplineRule(Rule):
    """PL004: a function that sends but never charges is hiding CPU."""

    code = "PL004"
    name = "clock-discipline"
    hint = (
        "charge() the sending process for the CPU that produced this message; "
        "if that happens elsewhere, annotate the send with "
        "'# prismalint: disable=PL004 -- <where>'"
    )

    def check(self, source: SourceFile) -> Iterator[Violation]:
        if not _in_scope(source):
            return
        for fn in _top_level_functions(source.tree):
            sends = []
            charges = False
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Attribute):
                    if func.attr == "send" and "runtime" in ast.unparse(func.value):
                        sends.append(node)
                    elif "charge" in func.attr:
                        charges = True
                elif isinstance(func, ast.Name) and "charge" in func.id:
                    charges = True
            if charges:
                continue
            for send in sends:
                yield self.violation(
                    source,
                    send,
                    f"PoolRuntime.send in {fn.name}() which never charges "
                    "the sending process",
                )
