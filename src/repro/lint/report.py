"""Rendering lint results for humans and machines."""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Sequence

from repro.lint.framework import Violation

__all__ = ["render_json", "render_statistics", "render_text"]


def _per_rule_summary(violations: Sequence[Violation]) -> str:
    counts = Counter(v.code for v in violations)
    return ", ".join(f"{code} x{count}" for code, count in sorted(counts.items()))


def render_text(
    violations: Sequence[Violation],
    errors: Sequence[str],
    notes: Sequence[str] = (),
) -> str:
    """GCC-style ``file:line:col: CODE message`` lines plus a summary.

    The failing summary line lists per-rule counts so a CI log tail is
    enough to see *what kind* of regression landed.
    """
    lines = [violation.render() for violation in violations]
    lines.extend(f"error: {error}" for error in errors)
    lines.extend(f"note: {note}" for note in notes)
    if violations or errors:
        lines.append(
            f"prismalint: {len(violations)} violation(s)"
            f" [{_per_rule_summary(violations)}]"
            f", {len(errors)} file error(s)"
            if violations
            else f"prismalint: 0 violation(s), {len(errors)} file error(s)"
        )
    else:
        lines.append("prismalint: clean")
    return "\n".join(lines)


def render_json(
    violations: Sequence[Violation],
    errors: Sequence[str],
    notes: Sequence[str] = (),
) -> str:
    """Stable machine-readable output (one object, sorted violations)."""
    payload = {
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "code": v.code,
                "message": v.message,
                "hint": v.hint,
            }
            for v in violations
        ],
        "errors": list(errors),
        "notes": list(notes),
        "counts": dict(Counter(v.code for v in violations)),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_statistics(violations: Sequence[Violation]) -> str:
    """Per-rule violation counts, most frequent first."""
    counts = Counter(v.code for v in violations)
    if not counts:
        return "no violations"
    width = max(len(code) for code in counts)
    return "\n".join(
        f"{code:<{width}}  {count}"
        for code, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    )
