"""PRISMA database machine reproduction.

A distributed, main-memory DBMS (Apers, Kersten, Oerlemans, EDBT 1988)
rebuilt as a Python library: a discrete-event multi-computer simulator,
a POOL-X-style process runtime, One-Fragment Managers with a generative
expression compiler and a transitive-closure operator, a knowledge-based
query optimizer, SQL and PRISMAlog front-ends, fragment-level two-phase
locking, two-phase commit, and WAL-based crash recovery.

Quickstart::

    from repro import PrismaDB

    db = PrismaDB()
    db.execute("CREATE TABLE emp (id INT PRIMARY KEY, dept STRING,"
               " sal FLOAT) FRAGMENTED BY HASH(id) INTO 8")
    db.execute("INSERT INTO emp VALUES (1, 'eng', 120.0)")
    result = db.execute("SELECT dept, AVG(sal) FROM emp GROUP BY dept")
    print(result.rows, result.response_time)
"""

from repro.core.database import PrismaDB, Session
from repro.core.result import QueryResult
from repro.errors import PrismaError
from repro.machine.config import MachineConfig, paper_prototype, small_machine
from repro.obs import Observatory, Snapshot, Tracer

__version__ = "0.1.0"

__all__ = [
    "MachineConfig",
    "Observatory",
    "PrismaDB",
    "PrismaError",
    "QueryResult",
    "Session",
    "Snapshot",
    "Tracer",
    "__version__",
    "paper_prototype",
    "small_machine",
]
