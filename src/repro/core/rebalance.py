"""Online re-fragmentation: split, merge, and migrate fragments live.

The paper fixes a relation's fragmentation at CREATE TABLE; a skewed
workload then hammers whichever OFM owns the hot fragment while its
neighbours idle.  This module adds the missing control loop — a
:class:`Rebalancer` supervised by the GDH that watches the executor's
per-fragment access counters and reshapes placement *online*:

* **migrate** — move one fragment copy to another element,
* **split** — carve the hot half of a fragment's hash buckets into a
  new fragment placed on a fresh element,
* **merge** — fold a cold fragment back into a sibling.

Every action follows the same three-phase protocol:

1. **copy** — new OFM copies are spawned and filled from a live source
   copy while the fragment keeps serving reads and writes (the new
   copies are invisible: nothing in the catalog routes to them yet).
   The copy rides :func:`repro.core.recovery.sync_copy_from`, the same
   WAL-checkpointed path replica catch-up uses.
2. **catch-up + flip** — a short exclusive lock on the fragment drains
   in-flight statements (writers queue in the lock table exactly like
   any conflicting transaction), the delta that arrived during the copy
   is re-synced, and the catalog flips atomically: FragmentInfo entries
   and the OFM registry change together under the lock.
3. **publish** — :meth:`GlobalDataHandler.placement_changed` bumps the
   DDL epoch (invalidating every cached plan, which may have pruned to
   fragments that no longer exist) and forces the dictionary to disk;
   the lock releases; obsolete OFMs are destroyed.

Split/merge change tuple routing, so they need a scheme whose routing
can be edited in place: :class:`RebalancedFragmentation` maps hash
buckets to fragment ids through an explicit table.  Deriving it from a
``HashFragmentation`` with ``n | B`` buckets is row-assignment-identical
(``(h % B) % n == h % n``), so the first rebalance action converts the
scheme without moving a single row.

Determinism: the rebalancer runs on the GDH's simulated clock, places
fragments through the allocator's :class:`~repro.core.allocation
.FragmentPlacement` policy, and uses no randomness — two same-seed runs
take identical actions (the CI rebalance-determinism job diffs them).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RebalanceError
from repro.obs.api import SnapshotMixin
from repro.core.catalog import FragmentInfo, TableInfo
from repro.core.fragmentation import (
    FragmentationScheme,
    HashFragmentation,
    stable_hash,
)
from repro.core.gdh import GlobalDataHandler
from repro.core.locks import LockMode
from repro.core.recovery import sync_copy_from
from repro.core.transactions import TxnState
from repro.ofm.manager import OneFragmentManager

#: Hash buckets per initial fragment when deriving a
#: :class:`RebalancedFragmentation` from plain hash fragmentation.
#: Must keep ``n_fragments | buckets`` so the derivation is a no-op.
BUCKETS_PER_FRAGMENT = 8


class RebalancedFragmentation(FragmentationScheme, kind="rebalanced"):
    """Hash fragmentation with an editable bucket → fragment table.

    ``bucket_map[stable_hash(key) % len(bucket_map)]`` is the fragment
    id.  Splits and merges rewrite the table instead of re-hashing, so
    only the tuples whose buckets actually move ever travel.  Fragment
    ids may be non-contiguous after a merge; :meth:`TableInfo.fragment`
    handles the gaps.
    """

    def __init__(self, column: int, bucket_map: tuple[int, ...]):
        if not bucket_map:
            raise RebalanceError("bucket map cannot be empty")
        self.column = column
        self.bucket_map = tuple(bucket_map)
        self.n_fragments = len(set(self.bucket_map))

    @classmethod
    def from_hash(
        cls, scheme: HashFragmentation, buckets_per_fragment: int = BUCKETS_PER_FRAGMENT
    ) -> "RebalancedFragmentation":
        """Derive from hash fragmentation without moving any row.

        With ``B = n * buckets_per_fragment`` buckets and bucket ``b``
        owned by fragment ``b % n``, every key keeps its fragment:
        ``(h % B) % n == h % n`` because ``n`` divides ``B``.
        """
        n = scheme.n_fragments
        buckets = n * max(1, buckets_per_fragment)
        return cls(scheme.column, tuple(b % n for b in range(buckets)))

    def fragment_of(self, row: tuple) -> int:
        return self.bucket_map[stable_hash(row[self.column]) % len(self.bucket_map)]

    def key_columns(self) -> tuple[int, ...]:
        return (self.column,)

    def prunable_fragments(self, column: int, value) -> list[int] | None:
        if column == self.column and value is not None:
            return [self.bucket_map[stable_hash(value) % len(self.bucket_map)]]
        return None

    def describe(self) -> str:
        return (
            f"rebalanced(col{self.column};"
            f" {len(self.bucket_map)} buckets over {self.n_fragments} fragments)"
        )

    def to_spec(self) -> dict:
        return {
            "kind": "rebalanced",
            "column": self.column,
            "bucket_map": list(self.bucket_map),
        }

    @classmethod
    def _from_spec(cls, spec: dict) -> "RebalancedFragmentation":
        return cls(spec["column"], tuple(spec["bucket_map"]))

    # -- editing ------------------------------------------------------------

    def fragment_buckets(self, fragment_id: int) -> list[int]:
        """The bucket indices currently routed to *fragment_id*."""
        return [
            bucket
            for bucket, owner in enumerate(self.bucket_map)
            if owner == fragment_id
        ]

    def split(self, fragment_id: int, new_fragment_id: int) -> "RebalancedFragmentation":
        """Route the odd half of *fragment_id*'s buckets to a new id."""
        buckets = self.fragment_buckets(fragment_id)
        if len(buckets) < 2:
            raise RebalanceError(
                f"fragment {fragment_id} holds a single bucket; cannot split"
            )
        moved = set(buckets[1::2])
        return RebalancedFragmentation(
            self.column,
            tuple(
                new_fragment_id if bucket in moved else owner
                for bucket, owner in enumerate(self.bucket_map)
            ),
        )

    def merge(self, source_id: int, dest_id: int) -> "RebalancedFragmentation":
        """Route every bucket of *source_id* to *dest_id*."""
        if source_id == dest_id:
            raise RebalanceError("cannot merge a fragment into itself")
        if not self.fragment_buckets(source_id):
            raise RebalanceError(f"fragment {source_id} owns no buckets")
        return RebalancedFragmentation(
            self.column,
            tuple(
                dest_id if owner == source_id else owner
                for owner in self.bucket_map
            ),
        )


@dataclass
class RebalanceReport(SnapshotMixin):
    """What the rebalancer did (Snapshot: ``stats``/``fingerprint``)."""

    #: ("migrate", table, fragment_id, from_node, to_node) /
    #: ("split", table, fragment_id, new_fragment_id, to_node) /
    #: ("merge", table, source_id, dest_id, rows_folded)
    actions: list[tuple] = field(default_factory=list)
    rows_moved: int = 0
    fragments_migrated: int = 0
    fragments_split: int = 0
    fragments_merged: int = 0
    #: Simulated seconds the flip held each exclusive lock (sum).
    lock_hold_s: float = 0.0

    def stats(self) -> dict[str, object]:
        return {
            "actions": [list(action) for action in self.actions],
            "rows_moved": self.rows_moved,
            "fragments_migrated": self.fragments_migrated,
            "fragments_split": self.fragments_split,
            "fragments_merged": self.fragments_merged,
            "lock_hold_s": self.lock_hold_s,
        }


class Rebalancer:
    """Online fragment re-placement, supervised by the GDH.

    Placement questions go to the GDH allocator's
    :class:`~repro.core.allocation.FragmentPlacement` policy — the same
    protocol CREATE TABLE uses — so a topology-aware policy shapes both
    initial placement and every later move.  ``db.rebalancer`` holds one
    per database.
    """

    def __init__(
        self,
        gdh: GlobalDataHandler,
        hot_ratio: float = 2.0,
        min_accesses: int = 64,
    ):
        self.gdh = gdh
        #: A fragment is "hot" when its window accesses exceed
        #: ``hot_ratio`` × the per-fragment mean.
        self.hot_ratio = hot_ratio
        #: Ignore observation windows with fewer total accesses.
        self.min_accesses = min_accesses
        self.report = RebalanceReport()
        #: Monotone suffix for migrated-copy names: a fresh OFM name is
        #: a fresh WAL key space, so the new copy's durable state never
        #: collides with the old copy's chunks.
        self._generation = 0

    # -- policy -------------------------------------------------------------

    def step(self, table: str) -> list[tuple]:
        """One control-loop round: split the hottest fragment if skewed.

        Reads the executor's access counts since the last round
        (:meth:`FragmentAccessTracker.delta_since`), splits the hottest
        fragment when it runs at ≥ ``hot_ratio`` × the mean (falling
        back to migrating it off the busiest element when it is down to
        one bucket), then starts a new observation window.  Returns the
        actions taken (possibly empty).
        """
        gdh = self.gdh
        info = gdh.catalog.table(table)
        tracker = gdh.executor.access
        heat = tracker.delta_since(info.name) or tracker.table_counts(info.name)
        before = len(self.report.actions)
        total = sum(heat.values())
        if total >= self.min_accesses and len(info.fragments) > 0:
            mean = total / len(info.fragments)
            hottest = max(sorted(heat), key=lambda f: heat[f])
            if heat[hottest] >= self.hot_ratio * mean:
                try:
                    self.split_fragment(info.name, hottest)
                except RebalanceError:
                    # Down to one bucket: spreading by routing is out;
                    # move the copy to the least-loaded element instead.
                    self.migrate_fragment(info.name, hottest)
        tracker.mark()
        return self.report.actions[before:]

    # -- actions ------------------------------------------------------------

    def migrate_fragment(
        self,
        table: str,
        fragment_id: int,
        target_node: int | None = None,
        copy_index: int = 0,
    ) -> tuple | None:
        """Move one copy of a fragment to another element, online.

        *copy_index* 0 is the primary, 1.. the replicas.  The source of
        the data is the first *live* copy — so a copy lost to an element
        crash can be migrated away from the dead element, fed by its
        surviving sibling.  Returns the action tuple, or ``None`` when
        the policy picks the element the copy already occupies.
        """
        gdh = self.gdh
        info = gdh.catalog.table(table)
        fragment = info.fragment(fragment_id)
        copies = fragment.all_copies()
        if not 0 <= copy_index < len(copies):
            raise RebalanceError(
                f"fragment {fragment_id} of {info.name!r} has no copy"
                f" #{copy_index}"
            )
        old_node, old_name = copies[copy_index]
        if target_node is None:
            target_node = gdh.allocator.migration_target(
                {node for node, _name in copies}
            )
        if target_node == old_node:
            return None
        if any(node == target_node for node, _name in copies):
            raise RebalanceError(
                f"element {target_node} already hosts a copy of fragment"
                f" {fragment_id} of {info.name!r}"
            )
        source = gdh._live_copy(fragment)
        if source is None:
            raise RebalanceError(
                f"fragment {fragment_id} of {info.name!r} has no live copy"
                " to migrate from"
            )

        self._generation += 1
        new_name = f"{old_name}@g{self._generation}"
        new_ofm = gdh.spawn_fragment_copy(
            info, new_name, target_node, gdh.gdh_process.ready_at
        )
        try:
            # Phase 1: bulk copy while the fragment stays online (the
            # new copy is not in the catalog; no statement routes to it).
            sync_copy_from(gdh, source, new_ofm)

            def flip() -> None:
                # Phase 2, under the X lock: the source may have taken
                # writes during the copy — sync the delta, then swap the
                # catalog entry and the OFM registry together.
                sync_copy_from(gdh, source, new_ofm)
                if copy_index == 0:
                    fragment.node_id = target_node
                    fragment.ofm_name = new_name
                else:
                    replicas = list(fragment.replicas)
                    replicas[copy_index - 1] = (target_node, new_name)
                    fragment.replicas = tuple(replicas)

            self._locked_flip(info, [fragment_id], flip)
        except Exception:
            self._discard(new_name)
            raise
        old_ofm = gdh.fragment_ofms.pop(old_name, None)
        if old_ofm is not None:
            old_ofm.destroy()
        self.report.fragments_migrated += 1
        self.report.rows_moved += len(new_ofm.table)
        action = ("migrate", info.name, fragment_id, old_node, target_node)
        self.report.actions.append(action)
        return action

    def split_fragment(
        self, table: str, fragment_id: int, target_node: int | None = None
    ) -> tuple:
        """Carve half of a fragment's hash buckets into a new fragment.

        The new fragment gets the same copy count as its parent and a
        home picked by the placement policy (excluding the parent's
        elements, so the split actually sheds load).  Rows whose buckets
        move are bulk-copied online; the exclusive lock then covers the
        delta catch-up, pruning the moved rows out of the parent's
        copies, and the scheme/catalog flip.
        """
        gdh = self.gdh
        info = gdh.catalog.table(table)
        scheme = self._rebalanced_scheme(info)
        fragment = info.fragment(fragment_id)
        source = gdh._live_copy(fragment)
        if source is None:
            raise RebalanceError(
                f"fragment {fragment_id} of {info.name!r} has no live copy"
                " to split from"
            )
        new_id = max(f.fragment_id for f in info.fragments) + 1
        new_scheme = scheme.split(fragment_id, new_id)

        # Place the new fragment's copies off the parent's elements.
        parent_nodes = {node for node, _name in fragment.all_copies()}
        if target_node is None:
            target_node = gdh.allocator.migration_target(parent_nodes)
        primary_name = f"{info.name}.{new_id}"
        placed: list[tuple[int, str]] = [(target_node, primary_name)]
        used = parent_nodes | {target_node}
        for replica_index in range(1, 1 + len(fragment.replicas)):
            replica_node = gdh.allocator.place_replica(target_node, used)
            used.add(replica_node)
            placed.append((replica_node, f"{primary_name}r{replica_index}"))
        new_copies = [
            gdh.spawn_fragment_copy(info, name, node, gdh.gdh_process.ready_at)
            for node, name in placed
        ]

        moved_rows = 0
        try:
            # Phase 1: bulk-copy the moving rows while traffic continues.
            moving = self._moving_rows(source, new_scheme, new_id)
            for dest in new_copies:
                self._sync_rows(info, source, dest, moving)

            def flip() -> None:
                nonlocal moved_rows
                moving_now = self._moving_rows(source, new_scheme, new_id)
                moved_rows = len(moving_now)
                for dest in new_copies:
                    self._sync_rows(info, source, dest, moving_now)
                # Prune the moved rows out of every parent copy.
                for _node, name in fragment.all_copies():
                    parent = gdh.fragment_ofms.get(name)
                    if parent is not None and parent.alive:
                        keep = sorted(
                            (rid, row)
                            for rid, row in parent.table.scan()
                            if new_scheme.fragment_of(row) != new_id
                        )
                        self._rewrite(parent, keep)
                info.fragments.append(
                    FragmentInfo(
                        new_id, target_node, primary_name, tuple(placed[1:])
                    )
                )
                info.scheme = new_scheme

            self._locked_flip(info, [fragment_id, new_id], flip)
        except Exception:
            for _node, name in placed:
                self._discard(name)
            raise
        gdh.refresh_table_stats(info.name)
        self.report.fragments_split += 1
        self.report.rows_moved += moved_rows
        action = ("split", info.name, fragment_id, new_id, target_node)
        self.report.actions.append(action)
        return action

    def merge_fragments(self, table: str, source_id: int, dest_id: int) -> tuple:
        """Fold fragment *source_id* into *dest_id* and retire it.

        Unlike migrate/split there is no invisible pre-copy target — the
        destination's copies already serve traffic — so the whole fold
        runs under the exclusive locks: destination copies are rewritten
        to the union (source rows re-homed above the destination's row
        ids, identically in every copy), the scheme reroutes the
        source's buckets, the source's catalog entry disappears, and its
        OFMs are destroyed.
        """
        gdh = self.gdh
        info = gdh.catalog.table(table)
        scheme = self._rebalanced_scheme(info)
        source_fragment = info.fragment(source_id)
        dest_fragment = info.fragment(dest_id)
        new_scheme = scheme.merge(source_id, dest_id)
        folded = 0

        def flip() -> None:
            nonlocal folded
            source = gdh._live_copy(source_fragment)
            dest = gdh._live_copy(dest_fragment)
            if source is None or dest is None:
                raise RebalanceError(
                    f"merge {source_id}->{dest_id} of {info.name!r} needs a"
                    " live copy on both sides"
                )
            incoming = sorted(source.table.scan())
            folded = len(incoming)
            base = max((rid for rid, _row in dest.table.scan()), default=-1) + 1
            merged = sorted(dest.table.scan()) + [
                (base + offset, row)
                for offset, (_rid, row) in enumerate(incoming)
            ]
            for _node, name in dest_fragment.all_copies():
                copy = gdh.fragment_ofms.get(name)
                if copy is not None and copy.alive:
                    self._sync_rows(info, source, copy, merged)
            info.fragments.remove(source_fragment)
            info.scheme = new_scheme

        self._locked_flip(info, [source_id, dest_id], flip)
        for _node, name in source_fragment.all_copies():
            self._discard(name)
        gdh.refresh_table_stats(info.name)
        self.report.fragments_merged += 1
        self.report.rows_moved += folded
        action = ("merge", info.name, source_id, dest_id, folded)
        self.report.actions.append(action)
        return action

    # -- protocol helpers ---------------------------------------------------

    def _rebalanced_scheme(self, info: TableInfo) -> RebalancedFragmentation:
        """The table's scheme as an editable bucket map.

        Plain hash fragmentation converts in place (row-assignment-
        identical, see :meth:`RebalancedFragmentation.from_hash`); other
        schemes have no bucket structure to edit.
        """
        scheme = info.scheme
        if isinstance(scheme, RebalancedFragmentation):
            return scheme
        if isinstance(scheme, HashFragmentation):
            derived = RebalancedFragmentation.from_hash(scheme)
            info.scheme = derived
            return derived
        raise RebalanceError(
            f"cannot rebalance {info.name!r}: scheme {scheme.describe()!r}"
            " is not hash-based"
        )

    def _locked_flip(self, info: TableInfo, fragment_ids, flip) -> None:
        """Run *flip* with the fragments X-locked, then publish.

        The lock acquisition is the drain: any statement holding these
        fragments forces a wait (``WouldBlock``/deadlock semantics
        identical to DML), and once granted no statement can touch the
        fragments until release.  ``placement_changed`` runs inside the
        lock so the epoch bump and the catalog flip are one atomic step
        from every other session's point of view.
        """
        gdh = self.gdh
        process = gdh.gdh_process
        txn = gdh.txns.begin(process.ready_at, autocommit=True)
        hold_started = process.ready_at
        committed = False
        try:
            for fragment_id in sorted(set(fragment_ids)):
                floor = gdh.txns.lock(
                    txn, (info.name, fragment_id), LockMode.EXCLUSIVE
                )
                process.advance_to(floor)
            flip()
            gdh.placement_changed()
            committed = True
        finally:
            if txn.state is TxnState.ACTIVE:
                gdh.txns.finish(
                    txn,
                    TxnState.COMMITTED if committed else TxnState.ABORTED,
                    process.ready_at,
                )
                if not committed:
                    # An administrative action that backed out is not a
                    # workload abort; keep the counter meaningful.
                    gdh.txns.aborted -= 1
            self.report.lock_hold_s += process.ready_at - hold_started

    def _moving_rows(
        self,
        source: OneFragmentManager,
        scheme: RebalancedFragmentation,
        new_id: int,
    ) -> list[tuple[int, tuple]]:
        return sorted(  # prismalint: disable=PL101 -- the copy these rows feed is charged in _rewrite
            (rid, row)
            for rid, row in source.table.scan()
            if scheme.fragment_of(row) == new_id
        )

    def _sync_rows(
        self,
        info: TableInfo,
        source: OneFragmentManager,
        dest: OneFragmentManager,
        rows: list[tuple[int, tuple]],
    ) -> bool:
        """Make *dest* hold exactly *rows*, shipped from *source*.

        The partial-copy sibling of :func:`sync_copy_from` (which moves
        a whole table): same network/CPU/WAL-checkpoint cost model,
        sized by the rows that actually travel.  No-op when *dest*
        already matches.
        """
        gdh = self.gdh
        if dict(dest.table.scan()) == dict(rows):
            return False
        self._rewrite(dest, rows)
        payload = max(64, len(rows) * info.schema.average_row_bytes())
        if source is not dest:
            gdh.runtime.send(source, dest, payload)  # prismalint: disable=PL004 -- receiver-side copy work charged in _rewrite
        return True

    def _rewrite(
        self, ofm: OneFragmentManager, rows: list[tuple[int, tuple]]
    ) -> None:
        """Replace an OFM's rows wholesale and checkpoint the result."""
        ofm.table.truncate()
        for rid, row in rows:
            ofm.table.insert_with_rid(rid, row)
        ofm.charge(self.gdh.machine.cpu_time(tuples=len(rows)), tuples=len(rows))
        if ofm.wal is not None:
            ofm.charge(ofm.wal.checkpoint(rows))

    def _discard(self, ofm_name: str) -> None:
        """Drop a copy from the registry and release its state (no-op if
        an element crash already reaped it)."""
        ofm = self.gdh.fragment_ofms.pop(ofm_name, None)
        if ofm is not None and ofm.alive:
            ofm.destroy()
