"""The Global Data Handler (paper Section 2.2).

"The PRISMA DBMS consists of centralized database systems, called
One-Fragment Managers (OFM), running under the supervision of a Global
Data Handler (GDH).  The GDH contains the data dictionary, the query
optimizer, the transaction manager, the concurrency control unit, and
the parsers for SQL and PRISMAlog [...] Besides these components, there
is a recovery component and a data allocation manager."

This module wires all of those together and executes statements.
Following the paper's intra-DBMS parallelism ("for each query a new
instance is created, possibly running at its own processor"), every
statement gets a fresh *query process* placed on a lightly loaded
element; its timeline carries parsing, optimization, coordination, and
the final result assembly for that query.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    BindError,
    CatalogError,
    DeadlockError,
    PrismaError,
    TransactionAborted,
    TransactionError,
)
from repro.exec.expressions import ColumnRef, Comparison, Literal, conjuncts
from repro.algebra.optimizer import Optimizer, OptimizerOptions
from repro.algebra.plan import PlanNode, ScanNode
from repro.core.allocation import DataAllocationManager, FragmentPlacement
from repro.core.catalog import Catalog, FragmentInfo, IndexInfo, TableInfo
from repro.core.executor import DistributedExecutor
from repro.core.faults import FaultInjector
from repro.core.fragmentation import SingleFragment, build_scheme
from repro.core.locks import LockManager, LockMode
from repro.core.result import QueryResult
from repro.core.transactions import Transaction, TransactionManager, TxnState
from repro.core.twophase import CommitLog, TwoPhaseCommit
from repro.ofm.manager import OFMProfile, OneFragmentManager
from repro.pool.placement import LeastLoaded
from repro.pool.process import PoolProcess
from repro.pool.runtime import PoolRuntime
from repro.sql import ast as sql_ast
from repro.sql.binder import Binder
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_statement
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType

#: Simulated parsing cost per token and optimization cost per plan node.
PARSE_COST_PER_TOKEN_S = 5e-6
OPTIMIZE_COST_PER_NODE_S = 2e-4
#: Simulated cost of a plan-cache hit: one structural hash + lookup at
#: the GDH, replacing the parse + optimize charges above (the E5/E8
#: compiler caches showed the same shape at expression granularity).
PLAN_CACHE_HIT_COST_S = 2e-5
#: Wire size of a shipped DML statement / row batch header.
STATEMENT_BYTES = 256

GDH_NODE = 0


@dataclass
class SessionState:
    """Per-client state the GDH tracks (the facade owns Session objects)."""

    session_id: int
    clock: float = 0.0
    txn: Transaction | None = None
    statements: int = 0
    deadlocks: int = 0
    waits: int = 0


@dataclass
class PreparedSelect:
    """A query carried past the front end: bound, optimized, reusable.

    Produced by :meth:`GlobalDataHandler.prepare_select`; executing one
    skips tokenize/parse/bind/optimize on the host *and* replaces the
    simulated parse+optimize charges with one cache-lookup charge when
    ``cached=True``.  Valid only while ``ddl_epoch`` matches the GDH's —
    DDL changes fragment placement and schemas under the plan.
    """

    statement: sql_ast.SelectStmt | sql_ast.SetOpStmt
    #: Output column names (the *logical* plan's schema).
    columns: list[str]
    #: The optimizer's output (plan + shared subexpressions).
    optimized: object
    #: Node count of the bound logical plan (the optimize charge basis).
    frontend_nodes: int
    #: The GDH's DDL epoch when this plan was prepared.
    ddl_epoch: int


class GlobalDataHandler:
    """Supervisor of the One-Fragment Managers."""

    def __init__(
        self,
        runtime: PoolRuntime,
        compiled_expressions: bool = True,
        optimizer_options: OptimizerOptions | None = None,
        allow_one_phase: bool = True,
        default_fragments: int | None = None,
        disk_resident: bool = False,
        faults: FaultInjector | None = None,
        placement: FragmentPlacement | None = None,
    ):
        self.runtime = runtime
        #: E3 baseline switch: conventional disk-resident storage.
        self.disk_resident = disk_resident
        self.machine = runtime.machine
        self.catalog = Catalog()
        self.locks = LockManager()
        self.txns = TransactionManager(self.locks)
        self.commit_log = CommitLog(self.machine, GDH_NODE)
        #: Deterministic fault injector; a default (never-armed) one is
        #: created so the crash-point hooks cost only a None check.
        self.faults = faults or FaultInjector()
        self.faults.bind(runtime)
        self.two_phase = TwoPhaseCommit(
            runtime, self.commit_log, allow_one_phase, faults=self.faults
        )
        #: Where fragment copies live is a policy decision
        #: (:class:`~repro.core.allocation.FragmentPlacement`); the
        #: default reproduces the historical most-free-memory spread.
        self.allocator = DataAllocationManager(
            self.machine, reserve_node=GDH_NODE, policy=placement
        )
        self.fragment_ofms: dict[str, OneFragmentManager] = {}
        self.compiled_expressions = compiled_expressions
        self.optimizer_options = optimizer_options or OptimizerOptions()
        self.executor = DistributedExecutor(
            runtime, self.catalog, self.fragment_ofms, compiled_expressions
        )
        self.default_fragments = default_fragments
        self.gdh_process = runtime.spawn(PoolProcess, name="gdh", node=GDH_NODE)
        self._query_counter = 0
        self._session_counter = 0
        #: Open sessions, by id — so quiesce/crash handling can reach
        #: every client's clock and transaction pointer, not just the
        #: facade's default session.
        self.sessions: dict[int, SessionState] = {}
        #: Bumped on every DDL statement; prepared plans pin the epoch
        #: they were built under and the serving layer's plan cache
        #: invalidates on mismatch.
        self.ddl_epoch = 0
        #: Serving-layer hooks, installed by :mod:`repro.serve` — both
        #: default to None so the single-shot facade path costs one
        #: attribute test and fingerprints stay byte-identical.
        self.admission = None
        self.plan_cache = None

    # -- sessions ------------------------------------------------------------------

    def new_session(self) -> SessionState:
        self._session_counter += 1
        state = SessionState(self._session_counter, clock=self.gdh_process.ready_at)
        self.sessions[state.session_id] = state
        return state

    def close_session(self, session: SessionState) -> None:
        """Forget a client session (aborting any open transaction)."""
        if session.txn is not None:
            txn = session.txn
            session.txn = None
            if self.txns.active.get(txn.txn_id) is txn:
                self._abort_txn(txn, session)
        self.sessions.pop(session.session_id, None)

    def _new_query_process(self, session: SessionState, label: str) -> PoolProcess:
        """The per-query component instance of Section 2.2."""
        self._query_counter += 1
        return self.runtime.spawn(
            PoolProcess,
            name=f"query-{self._query_counter}-{label}",
            placement=LeastLoaded(),
            start_at=session.clock,
        )

    def _finish_query(self, session: SessionState, process: PoolProcess) -> None:
        session.clock = max(session.clock, process.ready_at)
        self.runtime.terminate(process)

    # -- statement entry point ---------------------------------------------------------

    def execute_sql(self, text: str, session: SessionState) -> QueryResult:
        statement = parse_statement(text)
        return self.execute_statement(statement, session, sql_text=text)

    def execute_statement(
        self,
        statement: sql_ast.Statement | PreparedSelect,
        session: SessionState,
        sql_text: str = "",
        cached: bool = False,
    ) -> QueryResult:
        """The single statement entry point.

        Everything that executes a statement — ``Session.execute``,
        ``execute_script``, the serving layer's cursors (which may pass
        an already-prepared :class:`PreparedSelect`) — funnels through
        here, so per-statement accounting and the admission queue can't
        be skipped.  Admission (when installed) bounds how many query
        processes overlap in simulated time: a statement arriving while
        all slots are busy starts at the earliest slot-release time,
        FIFO, and the wait is charged to the session's clock.
        """
        session.statements += 1
        ticket = None
        if self.admission is not None:
            ticket = self.admission.admit(session)
        try:
            return self._dispatch_statement(statement, session, sql_text, cached)
        finally:
            if ticket is not None:
                self.admission.release(ticket, session.clock)

    def _dispatch_statement(
        self,
        statement: sql_ast.Statement | PreparedSelect,
        session: SessionState,
        sql_text: str,
        cached: bool,
    ) -> QueryResult:
        if isinstance(statement, PreparedSelect):
            return self._run_prepared_select(statement, session, sql_text, cached)
        if isinstance(statement, sql_ast.SelectStmt | sql_ast.SetOpStmt):
            return self._run_select(statement, session, sql_text)
        if isinstance(statement, sql_ast.InsertStmt):
            return self._run_insert(statement, session, sql_text)
        if isinstance(statement, sql_ast.UpdateStmt):
            return self._run_update(statement, session, sql_text)
        if isinstance(statement, sql_ast.DeleteStmt):
            return self._run_delete(statement, session, sql_text)
        if isinstance(statement, sql_ast.CreateTableStmt):
            return self._create_table(statement, session)
        if isinstance(statement, sql_ast.CreateIndexStmt):
            return self._create_index(statement, session)
        if isinstance(statement, sql_ast.DropTableStmt):
            return self._drop_table(statement, session)
        if isinstance(statement, sql_ast.BeginStmt):
            return self.begin(session)
        if isinstance(statement, sql_ast.CommitStmt):
            return self.commit(session)
        if isinstance(statement, sql_ast.RollbackStmt):
            return self.rollback(session)
        if isinstance(statement, sql_ast.ExplainStmt):
            return self._explain(statement, session)
        if isinstance(statement, sql_ast.ShowTablesStmt):
            rows = [(name,) for name in self.catalog.table_names()]
            return QueryResult("select", columns=["table_name"], rows=rows)
        if isinstance(statement, sql_ast.AnalyzeStmt):
            tables = (
                [statement.table] if statement.table else self.catalog.table_names()
            )
            for name in tables:
                self.refresh_table_stats(name, sample_distinct=True)
            return QueryResult(
                "ddl", message=f"analyzed {len(tables)} table(s)"
            )
        if isinstance(statement, sql_ast.ShowFragmentsStmt):
            info = self.catalog.table(statement.table)
            rows = []
            for fragment in info.fragments:
                for copy_index, (node, ofm_name) in enumerate(fragment.all_copies()):
                    ofm = self.fragment_ofms.get(ofm_name)
                    rows.append(
                        (
                            fragment.fragment_id,
                            "primary" if copy_index == 0 else f"replica{copy_index}",
                            node,
                            ofm_name,
                            len(ofm.table) if ofm else 0,
                        )
                    )
            return QueryResult(
                "select",
                columns=["fragment", "copy", "element", "ofm", "rows"],
                rows=rows,
            )
        if isinstance(statement, sql_ast.CheckpointStmt):
            cost = self.checkpoint()
            return QueryResult(
                "ddl", message=f"checkpoint complete ({cost:.4f}s simulated)"
            )
        raise TransactionError(
            f"unsupported statement {type(statement).__name__}"
        )

    # -- DDL -----------------------------------------------------------------------------

    def _create_table(
        self, statement: sql_ast.CreateTableStmt, session: SessionState
    ) -> QueryResult:
        columns = []
        primary_key = []
        for definition in statement.columns:
            data_type = DataType.from_name(definition.type_name)
            columns.append(
                Column(definition.name.lower(), data_type, nullable=not definition.not_null)
            )
            if definition.primary_key:
                primary_key.append(definition.name.lower())
        schema = Schema(columns)
        clause = statement.fragmentation
        if clause is not None:
            scheme = build_scheme(
                clause.kind, schema, clause.column, clause.count, clause.boundaries
            )
        elif self.default_fragments and self.default_fragments > 1 and primary_key:
            scheme = build_scheme(
                "hash", schema, primary_key[0], self.default_fragments
            )
        else:
            scheme = SingleFragment()
        name = statement.name.lower()
        if self.catalog.has_table(name):
            raise CatalogError(f"table {name!r} already exists")

        nodes = self.allocator.place_fragments(scheme.n_fragments)
        n_copies = max(1, statement.replicas)
        if n_copies > self.machine.n_nodes:
            raise CatalogError(
                f"cannot place {n_copies} copies on {self.machine.n_nodes} elements"
            )
        fragments: list[FragmentInfo] = []

        def spawn_copy(ofm_name: str, node_id: int) -> OneFragmentManager:
            ofm = self.runtime.spawn(
                OneFragmentManager,
                name=ofm_name,
                node=node_id,
                start_at=session.clock,
                schema=schema,
                profile=OFMProfile.FULL,
                compiled_expressions=self.compiled_expressions,
                disk_resident=self.disk_resident,
            )
            self.fragment_ofms[ofm_name] = ofm
            return ofm

        for fragment_id, node_id in enumerate(nodes):
            ofm_name = f"{name}.{fragment_id}"
            spawn_copy(ofm_name, node_id)
            # Replica copies live on distinct elements (availability and
            # read load-balancing; Section 2.2 speaks of fragment copies);
            # which element each copy gets is the placement policy's call.
            replica_entries = []
            used_nodes = {node_id}
            for replica_index in range(1, n_copies):
                replica_node = self.allocator.place_replica(node_id, used_nodes)
                used_nodes.add(replica_node)
                replica_name = f"{name}.{fragment_id}r{replica_index}"
                spawn_copy(replica_name, replica_node)
                replica_entries.append((replica_node, replica_name))
            fragments.append(
                FragmentInfo(fragment_id, node_id, ofm_name, tuple(replica_entries))
            )

        info = TableInfo(
            name=name,
            schema=schema,
            scheme=scheme,
            fragments=fragments,
            primary_key=tuple(primary_key),
        )
        self.catalog.create_table(info)
        if primary_key:
            self._build_index_everywhere(
                info, IndexInfo("pk_" + name, tuple(primary_key), True, "hash")
            )
        self._ddl_changed()
        self._persist_catalog()
        return QueryResult(
            "ddl",
            message=(
                f"table {name} created: {scheme.describe()},"
                f" fragments on elements {nodes}"
            ),
        )

    def fragment_copies(self, info: TableInfo, fragment_id: int):
        """All live copies (primary first) of one fragment.

        Raises rather than returning an empty list: a write routed to a
        fragment with no live copy must fail loudly, not silently skip
        the fragment and diverge from the durable state.
        """
        fragment = info.fragment(fragment_id)
        copies = [
            self.fragment_ofms[ofm_name]
            for _node, ofm_name in fragment.all_copies()
            if ofm_name in self.fragment_ofms
            and self.fragment_ofms[ofm_name].alive
        ]
        if not copies:
            raise TransactionError(
                f"fragment {fragment_id} of table {info.name!r} has no live"
                " copy (element down?); restart it before touching this data"
            )
        return copies

    def locate_fragment_copy(self, ofm_name: str):
        """(TableInfo, FragmentInfo, node_id) for a fragment-copy name."""
        for info in self.catalog.tables():
            for fragment in info.fragments:
                for copy_node, copy_name in fragment.all_copies():
                    if copy_name == ofm_name:
                        return info, fragment, copy_node
        raise CatalogError(f"no catalog entry places fragment copy {ofm_name!r}")

    def spawn_fragment_copy(
        self, info: TableInfo, ofm_name: str, node_id: int, start_at: float
    ) -> OneFragmentManager:
        """Spawn an empty OFM for one fragment copy of *info*.

        Recreates the table's secondary indexes and registers the OFM;
        used by crash recovery (same name => same ``wal/<name>/...``
        keys to replay) and by the online rebalancer (new name, filled
        by the copy phase).
        """
        ofm = self.runtime.spawn(
            OneFragmentManager,
            name=ofm_name,
            node=node_id,
            start_at=start_at,
            schema=info.schema,
            profile=OFMProfile.FULL,
            compiled_expressions=self.compiled_expressions,
            disk_resident=self.disk_resident,
        )
        for index in info.indexes:
            ofm.create_index(index.name, index.columns, index.unique, index.method)
        self.fragment_ofms[ofm_name] = ofm
        return ofm

    def respawn_fragment_ofm(
        self, info: TableInfo, ofm_name: str, node_id: int
    ) -> OneFragmentManager:
        """Spawn a fresh OFM process for a fragment copy lost to a crash.

        The new process starts empty; the caller replays its durable WAL
        (same name => same `wal/<name>/...` keys) via
        :meth:`RecoveryManager.restart_fragments`.
        """
        return self.spawn_fragment_copy(
            info, ofm_name, node_id, self.gdh_process.ready_at
        )

    def _build_index_everywhere(self, info: TableInfo, index: IndexInfo) -> None:
        for fragment in info.fragments:
            for ofm in self.fragment_copies(info, fragment.fragment_id):
                ofm.create_index(index.name, index.columns, index.unique, index.method)
        info.indexes.append(index)

    def _create_index(
        self, statement: sql_ast.CreateIndexStmt, session: SessionState
    ) -> QueryResult:
        info = self.catalog.table(statement.table)
        if any(existing.name == statement.name for existing in info.indexes):
            raise CatalogError(f"index {statement.name!r} already exists")
        for column in statement.columns:
            info.schema.index_of(column)  # validates
        self._build_index_everywhere(
            info,
            IndexInfo(
                statement.name,
                tuple(c.lower() for c in statement.columns),
                statement.unique,
                statement.method,
            ),
        )
        self._ddl_changed()
        self._persist_catalog()
        return QueryResult("ddl", message=f"index {statement.name} created")

    def _drop_table(
        self, statement: sql_ast.DropTableStmt, session: SessionState
    ) -> QueryResult:
        info = self.catalog.table(statement.name)
        held = {
            resource
            for txn in self.txns.active.values()
            for resource in txn.touched
            if resource[0] == info.name
        }
        if held:
            raise TransactionError(
                f"cannot drop {info.name!r}: fragments in use by active transactions"
            )
        for fragment in info.fragments:
            for _node, ofm_name in fragment.all_copies():
                ofm = self.fragment_ofms.pop(ofm_name, None)
                if ofm is not None:
                    ofm.destroy()
        self.catalog.drop_table(info.name)
        self._ddl_changed()
        self._persist_catalog()
        return QueryResult("ddl", message=f"table {info.name} dropped")

    def _ddl_changed(self) -> None:
        """DDL moved schemas or fragment placement: every prepared plan
        (and the serving layer's cache of them) is now invalid."""
        self.ddl_epoch += 1
        if self.plan_cache is not None:
            self.plan_cache.invalidate(self.ddl_epoch)

    def placement_changed(self) -> None:
        """A fragment moved, split, or merged without a DDL statement.

        The plan cache's contract is that no cached plan ever routes to
        a moved fragment, but historically only DDL *statements* bumped
        the epoch — an online placement change left stale plans live.
        Every rebalance flip funnels through here: bump the epoch (which
        invalidates the cache) and force the dictionary to disk, exactly
        as DDL does.
        """
        self._ddl_changed()
        self._persist_catalog()

    def _persist_catalog(self) -> None:
        """The data dictionary is durable state: force it on DDL."""
        disk_node = self.machine.nearest_disk_node(GDH_NODE)
        disk = self.machine.nodes[disk_node].disk
        assert disk is not None
        payload = self.catalog.serialize()
        cost = self.machine.transfer_time(GDH_NODE, disk_node, len(payload))
        cost += disk.write("catalog", payload, sequential=True)
        self.gdh_process.charge(cost)

    def load_catalog_from_disk(self) -> Catalog:
        disk_node = self.machine.nearest_disk_node(GDH_NODE)
        disk = self.machine.nodes[disk_node].disk
        assert disk is not None
        payload, cost = disk.read("catalog", sequential=True)
        self.gdh_process.charge(cost)
        return Catalog.deserialize(payload)

    # -- transactions ----------------------------------------------------------------------

    def begin(self, session: SessionState) -> QueryResult:
        if session.txn is not None:
            raise TransactionError("transaction already in progress")
        session.txn = self.txns.begin(session.clock)
        return QueryResult("txn", message=f"BEGIN (txn {session.txn.txn_id})")

    def _check_live_txn(self, session: SessionState) -> None:
        """Detect a stale session→transaction pointer and fail cleanly.

        A machine crash clears ``txns.active`` wholesale and an element
        crash can abort a transaction underneath its session, but the
        ``SessionState`` still points at the dead ``Transaction``.  The
        identity check catches every flavor (crash, resolve_in_doubt,
        external abort): if the manager no longer tracks *this* object
        as active, the transaction is gone — drop the pointer and raise
        ``TransactionAborted`` instead of operating on an untracked txn.
        """
        txn = session.txn
        if txn is None:
            return
        if self.txns.active.get(txn.txn_id) is txn and txn.state is TxnState.ACTIVE:
            return
        session.txn = None
        raise TransactionAborted(
            f"transaction {txn.txn_id} was aborted by a crash; start a new one"
        )

    def _ensure_txn(self, session: SessionState) -> tuple[Transaction, bool]:
        self._check_live_txn(session)
        if session.txn is not None:
            return session.txn, False
        return self.txns.begin(session.clock, autocommit=True), True

    def commit(self, session: SessionState) -> QueryResult:
        self._check_live_txn(session)
        if session.txn is None:
            raise TransactionError("no transaction in progress")
        txn = session.txn
        session.txn = None
        outcome = self._commit_txn(txn, session)
        return QueryResult(
            "txn",
            message=(
                f"COMMIT (txn {txn.txn_id}, {outcome.participants} participant(s),"
                f" {'1PC' if outcome.one_phase else '2PC'})"
            ),
        )

    def _commit_txn(self, txn: Transaction, session: SessionState):
        coordinator = self._new_query_process(session, "commit")
        try:
            try:
                outcome = self.two_phase.commit(txn, coordinator)
            except TransactionAborted:
                # A participant died during phase one: the protocol
                # already rolled back the survivors; close the books.
                self.txns.finish(txn, TxnState.ABORTED, coordinator.ready_at)
                self._refresh_stats(txn)
                raise
            # (An InjectedCrash propagates past this handler entirely:
            # the coordinator halted, so the transaction stays ACTIVE
            # with its locks held until resolve_in_doubt or restart.)
            self.txns.finish(txn, TxnState.COMMITTED, coordinator.ready_at)
            self._refresh_stats(txn)
        finally:
            self._finish_query(session, coordinator)
        return outcome

    def rollback(self, session: SessionState) -> QueryResult:
        self._check_live_txn(session)
        if session.txn is None:
            raise TransactionError("no transaction in progress")
        txn = session.txn
        session.txn = None
        self._abort_txn(txn, session)
        return QueryResult("txn", message=f"ROLLBACK (txn {txn.txn_id})")

    def _abort_txn(self, txn: Transaction, session: SessionState) -> None:
        coordinator = self._new_query_process(session, "abort")
        try:
            self.two_phase.abort(txn, coordinator)
            self.txns.finish(txn, TxnState.ABORTED, coordinator.ready_at)
            self._refresh_stats(txn)
        finally:
            self._finish_query(session, coordinator)

    def abort_session_txn(self, session: SessionState) -> None:
        """External abort (deadlock victim handling by the driver)."""
        if session.txn is not None:
            txn = session.txn
            session.txn = None
            self._abort_txn(txn, session)

    def _statement_failed(self, txn: Transaction, session: SessionState) -> None:
        """A statement failed after taking effect somewhere: abort the
        transaction so partial effects are undone and locks released.

        (Statement-level atomicity via transaction abort — the engine
        has no savepoints, matching its 1988 contemporaries.)
        """
        if txn is session.txn:
            session.txn = None
        if txn.state is TxnState.ACTIVE:
            self._abort_txn(txn, session)

    def _lock(
        self,
        txn: Transaction,
        session: SessionState,
        process: PoolProcess,
        resources: list[tuple[str, int]],
        mode: LockMode,
    ) -> None:
        """Acquire locks for a statement (all before any effect).

        DeadlockError aborts the transaction (victim = requester);
        WouldBlock propagates with the transaction intact so the driver
        can retry the statement.
        """
        try:
            for resource in sorted(set(resources)):
                floor = self.txns.lock(txn, resource, mode)
                process.advance_to(floor)
        except DeadlockError:
            session.deadlocks += 1
            if txn is session.txn:
                session.txn = None
            self._abort_txn(txn, session)
            raise
        except TransactionError as exc:
            from repro.core.locks import WouldBlock

            if isinstance(exc, WouldBlock):
                session.waits += 1
                if txn.autocommit:
                    # A statement-scoped txn holds no other work; drop it
                    # so the retry starts clean.
                    self.txns.finish(txn, TxnState.ABORTED, process.ready_at)
                    self.txns.aborted -= 1  # waiting is not a real abort
            raise

    # -- SELECT ----------------------------------------------------------------------------

    def _binder(self) -> Binder:
        return Binder(self.catalog.schemas())

    def _optimizer(self) -> Optimizer:
        return Optimizer(self.catalog.statistics(), self.optimizer_options)

    def _charge_frontend(
        self, process: PoolProcess, sql_text: str, plan_nodes: int | None
    ) -> None:
        if sql_text:
            try:
                tokens = len(tokenize(sql_text))
            except PrismaError:
                # PRISMAlog text (different lexer): estimate by length.
                tokens = max(8, len(sql_text) // 5)
        else:
            tokens = 8
        process.charge(tokens * PARSE_COST_PER_TOKEN_S)
        if plan_nodes is not None:
            process.charge(plan_nodes * OPTIMIZE_COST_PER_NODE_S)

    def _scan_resources(self, plan: PlanNode) -> list[tuple[str, int]]:
        """Fragments a plan reads — pruned for point predicates.

        After predicate pushdown, selections sit directly above scans;
        a point predicate on the fragmentation column narrows the lock
        set to the fragments the executor will actually visit.
        """
        from repro.algebra.plan import SelectNode

        resources: list[tuple[str, int]] = []

        def add_scan(scan: ScanNode, predicate) -> None:
            if not self.catalog.has_table(scan.table_name):
                return
            info = self.catalog.table(scan.table_name)
            fragment_ids = self._target_fragments(info, predicate)
            resources.extend((info.name, fid) for fid in fragment_ids)

        def walk(node: PlanNode) -> None:
            if isinstance(node, SelectNode) and isinstance(node.child, ScanNode):
                add_scan(node.child, node.predicate)
                return
            if isinstance(node, ScanNode):
                add_scan(node, None)
                return
            for child in node.children:
                walk(child)

        walk(plan)
        return resources

    def prepare_select(
        self, statement: sql_ast.SelectStmt | sql_ast.SetOpStmt
    ) -> PreparedSelect:
        """Bind and optimize a query without executing it.

        Host-side work only — no simulated charges, no locks, no query
        process.  The simulated parse/optimize cost is charged at
        execution time (or replaced by the cache-hit charge when the
        plan came out of the serving layer's cache), so an uncached
        prepare-then-execute is byte-identical to the direct path.
        """
        plan = self._binder().bind_query(statement)
        # Optimize before locking: pushdown exposes which fragments the
        # query can actually touch, shrinking the lock set.
        optimized = self._optimizer().optimize(plan)
        return PreparedSelect(
            statement=statement,
            columns=plan.schema.names(),
            optimized=optimized,
            frontend_nodes=sum(1 for _ in plan.walk()),
            ddl_epoch=self.ddl_epoch,
        )

    def _run_select(
        self,
        statement: sql_ast.SelectStmt | sql_ast.SetOpStmt,
        session: SessionState,
        sql_text: str,
    ) -> QueryResult:
        prepared = self.prepare_select(statement)
        return self._run_prepared_select(prepared, session, sql_text, cached=False)

    def _run_prepared_select(
        self,
        prepared: PreparedSelect,
        session: SessionState,
        sql_text: str,
        cached: bool,
    ) -> QueryResult:
        if prepared.ddl_epoch != self.ddl_epoch:
            raise TransactionError(
                "prepared statement is stale (DDL since prepare); prepare again"
            )
        txn, autocommit = self._ensure_txn(session)
        process = self._new_query_process(session, "select")
        try:
            optimized = prepared.optimized
            resources = self._scan_resources(optimized.plan)
            for shared in optimized.shared:
                resources.extend(self._scan_resources(shared.plan))
            self._lock(txn, session, process, resources, LockMode.SHARED)
            if cached:
                # One structural hash + lookup at the GDH stands in for
                # the whole simulated parse/optimize front end.
                process.charge(PLAN_CACHE_HIT_COST_S)
            else:
                self._charge_frontend(process, sql_text, prepared.frontend_nodes)
            try:
                rows, report = self.executor.execute(optimized, process)
            except PrismaError:
                if autocommit:
                    self.txns.finish(txn, TxnState.ABORTED, process.ready_at)
                raise
            if autocommit:
                self.txns.finish(txn, TxnState.COMMITTED, process.ready_at)
            return QueryResult(
                "select",
                columns=list(prepared.columns),
                rows=rows,
                report=report,
            )
        finally:
            self._finish_query(session, process)

    def _explain(
        self, statement: sql_ast.ExplainStmt, session: SessionState
    ) -> QueryResult:
        target = statement.target
        if not isinstance(target, sql_ast.SelectStmt | sql_ast.SetOpStmt):
            raise BindError("EXPLAIN supports queries only")
        plan = self._binder().bind_query(target)
        optimized = self._optimizer().optimize(plan)
        text = optimized.explain()
        lines = text.splitlines()
        lines.append(f"-- estimated rows: {optimized.estimated_rows:.0f}")
        resources = self._scan_resources(optimized.plan)
        lines.append(
            f"-- fragments to lock/scan: {len(resources)}"
        )
        return QueryResult(
            "explain",
            columns=["plan"],
            rows=[(line,) for line in lines],
        )

    # -- DML -------------------------------------------------------------------------------------

    def _run_insert(
        self, statement: sql_ast.InsertStmt, session: SessionState, sql_text: str
    ) -> QueryResult:
        bound = self._binder().bind_insert(statement)
        info = self.catalog.table(bound.table)
        routed: dict[int, list[tuple]] = {}
        for row in bound.rows:
            routed.setdefault(info.scheme.fragment_of(row), []).append(row)
        txn, autocommit = self._ensure_txn(session)
        process = self._new_query_process(session, "insert")
        try:
            resources = [(info.name, fid) for fid in routed]
            self._lock(txn, session, process, resources, LockMode.EXCLUSIVE)
            self._charge_frontend(process, sql_text, None)
        except PrismaError:
            self._finish_query(session, process)
            raise
        try:
            for fragment_id, rows in sorted(routed.items()):
                self.executor.access.record(info.name, fragment_id)
                for ofm in self.fragment_copies(info, fragment_id):
                    # Participant first: if a later row fails, the abort
                    # must undo the earlier rows on this fragment.
                    txn.add_participant(ofm)
                    self.runtime.send(
                        process, ofm, STATEMENT_BYTES + _rows_bytes(rows)
                    )
                    for row in rows:
                        ofm.txn_insert(txn.txn_id, row)
                    process.advance_to(
                        self.runtime.send(ofm, process, 32)
                    )
            if autocommit:
                session.clock = max(session.clock, process.ready_at)
                session.txn = txn
                try:
                    self.commit(session)
                finally:
                    session.txn = None
                process.advance_to(session.clock)
            return QueryResult("insert", affected_rows=len(bound.rows))
        except PrismaError:
            self._statement_failed(txn, session)
            raise
        finally:
            self._finish_query(session, process)

    def _target_fragments(self, info: TableInfo, predicate) -> list[int]:
        """Fragments a predicate can touch (point-prunes when possible)."""
        if predicate is not None:
            for conjunct in conjuncts(predicate):
                if (
                    isinstance(conjunct, Comparison)
                    and conjunct.op == "="
                    and isinstance(conjunct.left, ColumnRef)
                    and isinstance(conjunct.right, Literal)
                ):
                    pruned = info.scheme.prunable_fragments(
                        conjunct.left.index, conjunct.right.value
                    )
                    if pruned is not None:
                        return pruned
        return [fragment.fragment_id for fragment in info.fragments]

    def _run_update(
        self, statement: sql_ast.UpdateStmt, session: SessionState, sql_text: str
    ) -> QueryResult:
        bound = self._binder().bind_update(statement)
        info = self.catalog.table(bound.table)
        assigned = {index for index, _ in bound.assignments}
        moves_rows = bool(assigned & set(info.scheme.key_columns()))
        txn, autocommit = self._ensure_txn(session)
        process = self._new_query_process(session, "update")
        try:
            if moves_rows:
                # Updating the fragmentation key can change tuple homes:
                # every fragment may send or receive, lock them all.
                fragment_ids = [f.fragment_id for f in info.fragments]
            else:
                fragment_ids = self._target_fragments(info, bound.predicate)
            resources = [(info.name, fid) for fid in fragment_ids]
            self._lock(txn, session, process, resources, LockMode.EXCLUSIVE)
            self._charge_frontend(process, sql_text, None)
        except PrismaError:
            self._finish_query(session, process)
            raise
        try:
            new_row_fn = self._assignment_fn(info.schema, bound.assignments)
            affected = 0
            moved_rows: list[tuple] = []
            for fragment_id in fragment_ids:
                self.executor.access.record(info.name, fragment_id)
                for copy_index, ofm in enumerate(
                    self.fragment_copies(info, fragment_id)
                ):
                    is_primary = copy_index == 0
                    txn.add_participant(ofm)
                    self.runtime.send(process, ofm, STATEMENT_BYTES)
                    pairs = ofm.txn_update_where(
                        txn.txn_id, bound.predicate, new_row_fn
                    )
                    if moves_rows:
                        move = [
                            (old, new)
                            for old, new in pairs
                            if info.scheme.fragment_of(new) != fragment_id
                        ]
                        # Undo the in-place update for movers: delete them.
                        for old, new in move:
                            ofm.txn_delete_where(
                                txn.txn_id, _row_equality(info.schema, new)
                            )
                            if is_primary:
                                moved_rows.append(new)
                    if is_primary:
                        affected += len(pairs)
                    process.advance_to(self.runtime.send(ofm, process, 32))
            for row in moved_rows:
                fragment_id = info.scheme.fragment_of(row)
                for ofm in self.fragment_copies(info, fragment_id):
                    txn.add_participant(ofm)
                    self.runtime.send(
                        process, ofm, STATEMENT_BYTES + _rows_bytes([row])
                    )
                    ofm.txn_insert(txn.txn_id, row)
                    process.advance_to(self.runtime.send(ofm, process, 32))
            if autocommit:
                session.clock = max(session.clock, process.ready_at)
                session.txn = txn
                try:
                    self.commit(session)
                finally:
                    session.txn = None
                process.advance_to(session.clock)
            return QueryResult("update", affected_rows=affected)
        except PrismaError:
            self._statement_failed(txn, session)
            raise
        finally:
            self._finish_query(session, process)

    def _run_delete(
        self, statement: sql_ast.DeleteStmt, session: SessionState, sql_text: str
    ) -> QueryResult:
        bound = self._binder().bind_delete(statement)
        info = self.catalog.table(bound.table)
        txn, autocommit = self._ensure_txn(session)
        process = self._new_query_process(session, "delete")
        try:
            fragment_ids = self._target_fragments(info, bound.predicate)
            resources = [(info.name, fid) for fid in fragment_ids]
            self._lock(txn, session, process, resources, LockMode.EXCLUSIVE)
            self._charge_frontend(process, sql_text, None)
        except PrismaError:
            self._finish_query(session, process)
            raise
        try:
            affected = 0
            for fragment_id in fragment_ids:
                self.executor.access.record(info.name, fragment_id)
                for copy_index, ofm in enumerate(
                    self.fragment_copies(info, fragment_id)
                ):
                    txn.add_participant(ofm)
                    self.runtime.send(process, ofm, STATEMENT_BYTES)
                    count = ofm.txn_delete_where(txn.txn_id, bound.predicate)
                    if copy_index == 0:
                        affected += count
                    process.advance_to(self.runtime.send(ofm, process, 32))
            if autocommit:
                session.clock = max(session.clock, process.ready_at)
                session.txn = txn
                try:
                    self.commit(session)
                finally:
                    session.txn = None
                process.advance_to(session.clock)
            return QueryResult("delete", affected_rows=affected)
        except PrismaError:
            self._statement_failed(txn, session)
            raise
        finally:
            self._finish_query(session, process)

    def _assignment_fn(self, schema: Schema, assignments: list[tuple[int, object]]):
        """row -> new row applying SET clauses (compiled)."""
        from repro.exec.expressions import ColumnRef as Ref

        exprs = []
        assigned = dict(assignments)
        for index in range(len(schema)):
            exprs.append(assigned.get(index, Ref(index)))
        evaluator = self.executor.evaluator
        projector, _ = evaluator.projector(tuple(exprs))
        return projector

    # -- statistics maintenance -------------------------------------------------------------------

    def _refresh_stats(self, txn: Transaction) -> None:
        """Recompute row counts for tables a transaction touched."""
        tables = {resource[0] for resource in txn.touched}
        for name in sorted(tables):
            if not self.catalog.has_table(name):
                continue
            self.refresh_table_stats(name)

    def _live_copy(self, fragment: FragmentInfo) -> OneFragmentManager | None:
        """First live copy of a fragment (primary preferred), if any."""
        for _node, copy_name in fragment.all_copies():
            ofm = self.fragment_ofms.get(copy_name)
            if ofm is not None and ofm.alive:
                return ofm
        return None

    def refresh_table_stats(self, name: str, sample_distinct: bool = False) -> None:
        info = self.catalog.table(name)
        row_count = 0
        total_bytes = 0
        for fragment in info.fragments:
            ofm = self._live_copy(fragment)
            if ofm is None:
                continue
            row_count += len(ofm.table)
            total_bytes += ofm.table.data_bytes
        info.row_count = row_count
        info.total_bytes = total_bytes
        if sample_distinct and row_count:
            distinct: dict[str, set] = {c.name: set() for c in info.schema.columns}
            for fragment in info.fragments:
                ofm = self._live_copy(fragment)
                if ofm is None:
                    continue
                for row in ofm.table.rows():
                    for column, value in zip(info.schema.columns, row):
                        distinct[column.name].add(value)
            info.distinct_estimates = {
                name: len(values) for name, values in distinct.items()
            }

    # -- bulk loading -------------------------------------------------------------------------------

    def bulk_load(self, table: str, rows: list[tuple]) -> int:
        """Fast initial population: routes rows, loads fragments, updates
        statistics, snapshots durable fragments.  Not transactional —
        meant for benchmark/workload setup, like a bulk loader utility.
        """
        info = self.catalog.table(table)
        routed: dict[int, list[tuple]] = {}
        for row in rows:
            validated = info.schema.validate_row(row)
            routed.setdefault(info.scheme.fragment_of(validated), []).append(validated)
        for fragment_id, fragment_rows in routed.items():
            for ofm in self.fragment_copies(info, fragment_id):
                # Loader CPU is charged inside ofm.bulk_load (per-tuple
                # meter + WAL checkpoint cost).
                self.runtime.send(  # prismalint: disable=PL004 -- charged in ofm.bulk_load
                    self.gdh_process, ofm, _rows_bytes(fragment_rows)
                )
                ofm.bulk_load(fragment_rows)
        self.refresh_table_stats(table, sample_distinct=True)
        self._persist_catalog()
        return len(rows)

    # -- checkpoint -----------------------------------------------------------------------------------

    def checkpoint(self) -> float:
        """Snapshot every durable fragment; returns total simulated cost."""
        total = 0.0
        for ofm in self.fragment_ofms.values():
            if ofm.profile is OFMProfile.FULL:
                total += ofm.checkpoint()
        self._persist_catalog()
        return total


def _rows_bytes(rows: list[tuple]) -> int:
    from repro.core.executor import _value_bytes

    return sum(_value_bytes(row) for row in rows) + 16  # prismalint: disable=PL101 -- message sizing only; the send this feeds charges the network


def _row_equality(schema: Schema, row: tuple):
    """Predicate expr matching exactly *row* (used when relocating a
    tuple whose fragmentation key changed)."""
    from repro.exec.expressions import (
        ColumnRef,
        Comparison,
        IsNull,
        and_,
    )

    parts = []
    for index, value in enumerate(row):
        if value is None:
            parts.append(IsNull(ColumnRef(index)))
        else:
            parts.append(Comparison("=", ColumnRef(index), Literal(value)))
    return and_(*parts)
