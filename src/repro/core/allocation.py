"""The data allocation manager (paper Section 2.2).

Decides which processing element hosts each fragment *copy* of a
relation.  Placement is a first-class policy protocol
(:class:`FragmentPlacement`, mirroring
:class:`repro.pool.placement.PlacementPolicy` for processes): the
default spreads primaries over distinct elements with the most free
memory — fragments are the unit of parallelism, so spreading them is
what buys intra-query speedup (E4), while memory-awareness keeps
16 MByte elements from overflowing — and parks replicas on the
emptiest elements not already holding a copy.  A topology-aware policy
additionally prices link distance so replicas land near their primary
(cheap catch-up traffic) and migration targets land near the reader
population.  The online rebalancer (:mod:`repro.core.rebalance`) asks
the same protocol where split and migrated fragments should go.
"""

from __future__ import annotations

from repro.errors import AllocationError
from repro.machine.machine import Machine


class FragmentPlacement:
    """Policy protocol: which element hosts each fragment copy.

    Stateless by design (like ``pool.placement.PlacementPolicy``): every
    method receives the machine, so one policy instance can serve many
    tables.  ``reserve_node`` is the GDH's home element, avoided while
    alternatives exist so coordination work does not contend with
    fragment hosting on small machines.
    """

    def place_primaries(
        self,
        machine: Machine,
        n_fragments: int,
        expected_bytes_per_fragment: int = 0,
        reserve_node: int | None = 0,
        avoid: set[int] | None = None,
    ) -> list[int]:
        """Home elements for the primary copy of each fragment."""
        raise NotImplementedError

    def place_replica(
        self,
        machine: Machine,
        primary_node: int,
        used_nodes: set[int],
        reserve_node: int | None = 0,
    ) -> int:
        """Element for one more copy of a fragment whose copies already
        occupy *used_nodes* (the primary's element included)."""
        raise NotImplementedError

    def migration_target(
        self,
        machine: Machine,
        exclude: set[int],
        reserve_node: int | None = 0,
    ) -> int:
        """Element for a fragment copy being moved or split off.

        *exclude* holds the elements that already host a copy of the
        fragment (a fragment never keeps two copies on one element).
        """
        raise NotImplementedError


class DefaultPlacement(FragmentPlacement):
    """The historical policy, bit-identical to the pre-protocol code.

    Primaries spread most-free-memory-first over distinct elements;
    replicas go to the element with the fewest processes started (ties:
    most free memory, then lowest id).  No topology awareness.
    """

    def place_primaries(
        self,
        machine: Machine,
        n_fragments: int,
        expected_bytes_per_fragment: int = 0,
        reserve_node: int | None = 0,
        avoid: set[int] | None = None,
    ) -> list[int]:
        if n_fragments < 1:
            raise AllocationError(f"cannot place {n_fragments} fragments")
        avoid = set(avoid or ())
        candidates = [
            node_id
            for node_id in range(machine.n_nodes)
            if node_id not in avoid
        ]
        if (
            reserve_node is not None
            and len(candidates) > n_fragments
            and reserve_node in candidates
        ):
            candidates.remove(reserve_node)
        if not candidates:
            raise AllocationError("no processing elements available for placement")
        ranked = sorted(
            candidates,
            key=lambda n: (-machine.node(n).memory.available, n),
        )
        placements: list[int] = []
        for i in range(n_fragments):
            node_id = ranked[i % len(ranked)]
            free = machine.node(node_id).memory.available
            if expected_bytes_per_fragment and free < expected_bytes_per_fragment:
                raise AllocationError(
                    f"element {node_id} has {free} bytes free,"
                    f" fragment needs ~{expected_bytes_per_fragment}"
                )
            placements.append(node_id)
        return placements

    def _replica_candidates(
        self,
        machine: Machine,
        used_nodes: set[int],
        reserve_node: int | None,
    ) -> list[int]:
        candidates = [
            n for n in range(machine.n_nodes) if n not in used_nodes
        ]
        if not candidates:
            raise AllocationError(
                "every processing element already hosts a copy of this fragment"
            )
        if reserve_node is not None and len(candidates) > 1 and reserve_node in candidates:
            candidates.remove(reserve_node)
        return candidates

    def place_replica(
        self,
        machine: Machine,
        primary_node: int,
        used_nodes: set[int],
        reserve_node: int | None = 0,
    ) -> int:
        candidates = self._replica_candidates(machine, used_nodes, reserve_node)
        candidates.sort(
            key=lambda n: (
                machine.node(n).stats.processes_started,
                -machine.node(n).memory.available,
                n,
            )
        )
        return candidates[0]

    def migration_target(
        self,
        machine: Machine,
        exclude: set[int],
        reserve_node: int | None = 0,
    ) -> int:
        """The least-busy live element not yet hosting a copy."""
        candidates = [
            n
            for n in self._replica_candidates(machine, set(exclude), reserve_node)
            if machine.node_is_up(n)
        ]
        if not candidates:
            raise AllocationError("no live processing element to migrate to")
        return min(
            candidates,
            key=lambda n: (
                machine.node(n).stats.busy_time_s,
                machine.node(n).stats.processes_started,
                -machine.node(n).memory.available,
                n,
            ),
        )


class TopologyAwarePlacement(DefaultPlacement):
    """Replica- and distance-aware placement (opt-in).

    Replicas land close to their primary — catch-up and write fan-out
    cross few links — while still avoiding elements that already host a
    copy; migration targets additionally prefer elements close to the
    GDH, where the query processes that read the fragment originate.
    """

    def place_replica(
        self,
        machine: Machine,
        primary_node: int,
        used_nodes: set[int],
        reserve_node: int | None = 0,
    ) -> int:
        candidates = self._replica_candidates(machine, used_nodes, reserve_node)
        candidates.sort(
            key=lambda n: (
                machine.node(n).stats.processes_started,
                machine.router.hops(primary_node, n),
                -machine.node(n).memory.available,
                n,
            )
        )
        return candidates[0]

    def migration_target(
        self,
        machine: Machine,
        exclude: set[int],
        reserve_node: int | None = 0,
    ) -> int:
        candidates = [
            n
            for n in self._replica_candidates(machine, set(exclude), reserve_node)
            if machine.node_is_up(n)
        ]
        if not candidates:
            raise AllocationError("no live processing element to migrate to")
        anchor = reserve_node if reserve_node is not None else 0
        return min(
            candidates,
            key=lambda n: (
                machine.node(n).stats.busy_time_s,
                machine.router.hops(anchor, n),
                machine.node(n).stats.processes_started,
                n,
            ),
        )


class DataAllocationManager:
    """Places fragments onto processing elements via a policy."""

    def __init__(
        self,
        machine: Machine,
        reserve_node: int | None = 0,
        policy: FragmentPlacement | None = None,
    ):
        """*reserve_node* (the GDH's home) is avoided while alternatives
        exist, so coordination work does not contend with fragment
        hosting on small machines."""
        self.machine = machine
        self.reserve_node = reserve_node
        self.policy = policy if policy is not None else DefaultPlacement()

    def place_fragments(
        self,
        n_fragments: int,
        expected_bytes_per_fragment: int = 0,
        avoid: set[int] | None = None,
    ) -> list[int]:
        """Pick a home element for each of *n_fragments* fragments.

        Spreads over distinct elements first (most-free-memory order
        under the default policy); wraps around when there are more
        fragments than elements.  Raises :class:`AllocationError` if no
        element can fit the expected footprint.
        """
        return self.policy.place_primaries(
            self.machine,
            n_fragments,
            expected_bytes_per_fragment,
            reserve_node=self.reserve_node,
            avoid=avoid,
        )

    def place_replica(self, primary_node: int, used_nodes: set[int]) -> int:
        """Pick the element for one more copy of a fragment."""
        return self.policy.place_replica(
            self.machine,
            primary_node,
            used_nodes,
            reserve_node=self.reserve_node,
        )

    def migration_target(self, exclude: set[int]) -> int:
        """Pick where a moved/split-off fragment copy should live."""
        return self.policy.migration_target(
            self.machine,
            set(exclude),
            reserve_node=self.reserve_node,
        )
