"""The data allocation manager (paper Section 2.2).

Decides which processing element hosts each fragment of a new relation.
The default policy spreads fragments over distinct elements with the
most free memory — fragments are the unit of parallelism, so spreading
them is what buys intra-query speedup (E4), while memory-awareness
keeps 16 MByte elements from overflowing.
"""

from __future__ import annotations

from repro.errors import AllocationError
from repro.machine.machine import Machine


class DataAllocationManager:
    """Places fragments onto processing elements."""

    def __init__(self, machine: Machine, reserve_node: int | None = 0):
        """*reserve_node* (the GDH's home) is avoided while alternatives
        exist, so coordination work does not contend with fragment
        hosting on small machines."""
        self.machine = machine
        self.reserve_node = reserve_node

    def place_fragments(
        self,
        n_fragments: int,
        expected_bytes_per_fragment: int = 0,
        avoid: set[int] | None = None,
    ) -> list[int]:
        """Pick a home element for each of *n_fragments* fragments.

        Spreads over distinct elements first (most-free-memory order);
        wraps around when there are more fragments than elements.
        Raises :class:`AllocationError` if no element can fit the
        expected footprint.
        """
        if n_fragments < 1:
            raise AllocationError(f"cannot place {n_fragments} fragments")
        avoid = set(avoid or ())
        candidates = [
            node_id
            for node_id in range(self.machine.n_nodes)
            if node_id not in avoid
        ]
        if (
            self.reserve_node is not None
            and len(candidates) > n_fragments
            and self.reserve_node in candidates
        ):
            candidates.remove(self.reserve_node)
        if not candidates:
            raise AllocationError("no processing elements available for placement")
        ranked = sorted(
            candidates,
            key=lambda n: (-self.machine.node(n).memory.available, n),
        )
        placements: list[int] = []
        for i in range(n_fragments):
            node_id = ranked[i % len(ranked)]
            free = self.machine.node(node_id).memory.available
            if expected_bytes_per_fragment and free < expected_bytes_per_fragment:
                raise AllocationError(
                    f"element {node_id} has {free} bytes free,"
                    f" fragment needs ~{expected_bytes_per_fragment}"
                )
            placements.append(node_id)
        return placements
