"""The data dictionary of the Global Data Handler (paper Section 2.2).

Tracks every relation: schema, primary key, fragmentation scheme,
fragment placement (which processing element / OFM owns each fragment),
secondary indexes, and per-table statistics for the optimizer.

The dictionary itself is critical state: it is serialized to stable
storage on every DDL change so restart recovery can rebuild the system
(:mod:`repro.core.recovery`).
"""

from __future__ import annotations

import ast as _pyast
from dataclasses import dataclass, field

from repro.errors import CatalogError
from repro.algebra.estimates import TableStats
from repro.core.fragmentation import FragmentationScheme
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType


@dataclass
class IndexInfo:
    name: str
    columns: tuple[str, ...]
    unique: bool
    method: str  # 'hash' | 'btree'


@dataclass
class FragmentInfo:
    """One fragment: its primary copy plus any replicas.

    The paper's concurrency rule speaks of "the same *copy* of base
    fragments" (Section 2.2) — fragments may have several copies.
    ``node_id``/``ofm_name`` identify the primary; ``replicas`` lists
    the additional copies as ``(node_id, ofm_name)`` pairs.  Reads pick
    any copy (load balancing); writes go to all of them.
    """

    fragment_id: int
    node_id: int
    ofm_name: str
    replicas: tuple[tuple[int, str], ...] = ()

    def all_copies(self) -> list[tuple[int, str]]:
        """(node_id, ofm_name) of the primary and every replica."""
        return [(self.node_id, self.ofm_name), *self.replicas]


@dataclass
class TableInfo:  # prismalint: disable=PL103 -- stats() here returns optimizer TableStats, not an observability Snapshot
    """Dictionary entry for one relation."""

    name: str
    schema: Schema
    scheme: FragmentationScheme
    fragments: list[FragmentInfo] = field(default_factory=list)
    primary_key: tuple[str, ...] = ()
    indexes: list[IndexInfo] = field(default_factory=list)
    row_count: int = 0
    #: crude per-column distinct-value estimates, updated on writes
    distinct_estimates: dict[str, int] = field(default_factory=dict)
    total_bytes: int = 0

    def stats(self) -> TableStats:
        avg = self.total_bytes / self.row_count if self.row_count else float(
            self.schema.average_row_bytes()
        )
        return TableStats(self.row_count, avg, dict(self.distinct_estimates))

    def fragment_nodes(self) -> list[int]:
        return [fragment.node_id for fragment in self.fragments]

    def fragment(self, fragment_id: int) -> FragmentInfo:
        """The entry for *fragment_id*.

        Position usually equals id, but an online merge removes entries,
        leaving id gaps — so fall back to a search when they diverge.
        """
        if (
            0 <= fragment_id < len(self.fragments)
            and self.fragments[fragment_id].fragment_id == fragment_id
        ):
            return self.fragments[fragment_id]
        for fragment in self.fragments:
            if fragment.fragment_id == fragment_id:
                return fragment
        raise CatalogError(
            f"table {self.name!r} has no fragment {fragment_id}"
        )


class Catalog:
    """The data dictionary: name -> TableInfo, plus schema views."""

    def __init__(self):
        self._tables: dict[str, TableInfo] = {}

    # -- mutation ---------------------------------------------------------------

    def create_table(self, info: TableInfo) -> None:
        name = info.name.lower()
        if name in self._tables:
            raise CatalogError(f"table {info.name!r} already exists")
        info.name = name
        self._tables[name] = info

    def drop_table(self, name: str) -> TableInfo:
        info = self.table(name)
        del self._tables[info.name]
        return info

    # -- lookup -----------------------------------------------------------------

    def table(self, name: str) -> TableInfo:
        info = self._tables.get(name.lower())
        if info is None:
            raise CatalogError(f"unknown table {name!r}")
        return info

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def tables(self) -> list[TableInfo]:
        """All dictionary entries, in name order."""
        return [self._tables[name] for name in sorted(self._tables)]

    def adopt(self, other: "Catalog") -> None:
        """Replace this dictionary's contents with *other*'s, in place.

        Restart recovery adopts the durable copy through this: the
        Catalog *object* is shared by reference with the executor, the
        binder, and every component the GDH wired up, so the swap must
        mutate it rather than rebind a private attribute elsewhere.
        """
        self._tables.clear()
        for info in other.tables():
            self._tables[info.name] = info

    def schemas(self) -> dict[str, Schema]:
        """The binder's view: table name -> schema."""
        return {name: info.schema for name, info in self._tables.items()}

    def statistics(self) -> dict[str, TableStats]:
        """The optimizer's view: table name -> stats."""
        return {name: info.stats() for name, info in self._tables.items()}

    # -- persistence (the dictionary must survive crashes) ------------------------

    def serialize(self) -> bytes:
        """A literal-eval-able snapshot of all metadata (no row data)."""
        payload = []
        for info in self._tables.values():
            payload.append(
                {
                    "name": info.name,
                    "columns": [
                        (c.name, c.data_type.value, c.nullable)
                        for c in info.schema.columns
                    ],
                    "scheme": info.scheme.to_spec(),
                    "fragments": [
                        (f.fragment_id, f.node_id, f.ofm_name, list(f.replicas))
                        for f in info.fragments
                    ],
                    "primary_key": list(info.primary_key),
                    "indexes": [
                        (i.name, list(i.columns), i.unique, i.method)
                        for i in info.indexes
                    ],
                    "row_count": info.row_count,
                    "distinct": dict(info.distinct_estimates),
                    "total_bytes": info.total_bytes,
                }
            )
        return repr(payload).encode("utf-8")

    @classmethod
    def deserialize(cls, payload: bytes) -> "Catalog":
        catalog = cls()
        entries = _pyast.literal_eval(payload.decode("utf-8"))
        for entry in entries:
            schema = Schema(
                Column(name, DataType(type_name), nullable)
                for name, type_name, nullable in entry["columns"]
            )
            info = TableInfo(
                name=entry["name"],
                schema=schema,
                scheme=FragmentationScheme.from_spec(entry["scheme"]),
                fragments=[
                    FragmentInfo(
                        fid, node, ofm,
                        tuple((int(rn), str(ro)) for rn, ro in replicas),
                    )
                    for fid, node, ofm, replicas in entry["fragments"]
                ],
                primary_key=tuple(entry["primary_key"]),
                indexes=[
                    IndexInfo(name, tuple(cols), unique, method)
                    for name, cols, unique, method in entry["indexes"]
                ],
                row_count=entry["row_count"],
                distinct_estimates=dict(entry["distinct"]),
                total_bytes=entry["total_bytes"],
            )
            catalog.create_table(info)
        return catalog
