"""Cooperative multi-session transaction driver.

The engine is synchronous (one Python thread), so concurrent clients
are *interleaved*: the driver round-robins statements across sessions;
a statement that must wait for a lock raises
:class:`~repro.core.locks.WouldBlock` and the driver parks that session
until the blocking transaction finishes; a deadlock victim's
transaction is retried from the top.  Simulated time does the rest —
waiters' clocks advance to the holder's release time, so throughput and
response times come out of the critical path, not the driver's loop
order.

This is the harness behind experiment E8 ("evaluation of several
queries and updates can be done in parallel, except for accesses to the
same copy of base fragments").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeadlockError
from repro.core.database import PrismaDB, Session
from repro.core.locks import WouldBlock


@dataclass
class DriverReport:
    """What an interleaved run did, on the simulated clock."""

    transactions_committed: int = 0
    deadlocks: int = 0
    lock_waits: int = 0
    statements_executed: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    per_session_finish: dict[int, float] = field(default_factory=dict)

    @property
    def makespan_s(self) -> float:
        return max(0.0, self.finished_at - self.started_at)

    @property
    def throughput_tps(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.transactions_committed / self.makespan_s


class _ClientState:
    """One client: a queue of transactions, each a list of statements."""

    def __init__(self, session: Session, transactions: list[list[str]]):
        self.session = session
        self.transactions = transactions
        self.txn_index = 0
        self.stmt_index = -1  # -1 = must BEGIN next
        self.parked = False
        self.retries = 0

    @property
    def done(self) -> bool:
        return self.txn_index >= len(self.transactions)


class InterleavedDriver:
    """Runs transaction scripts from many sessions concurrently."""

    def __init__(self, db: PrismaDB, max_deadlock_retries: int = 25):
        self.db = db
        self.max_deadlock_retries = max_deadlock_retries

    def run(self, scripts: list[list[list[str]]]) -> DriverReport:
        """*scripts[i]* is client i's list of transactions (statement
        lists).  Returns the aggregated report."""
        clients = [
            _ClientState(self.db.session(), transactions)
            for transactions in scripts
        ]
        report = DriverReport()
        report.started_at = min(
            (client.session.clock for client in clients), default=0.0
        )
        stuck_rounds = 0
        while any(not client.done for client in clients):
            progressed = False
            for client in clients:
                if client.done or client.parked:
                    continue
                progressed = self._step(client, report) or progressed
            # End of round: locks may have been released by commits this
            # round, so parked sessions get another chance.
            for client in clients:
                client.parked = False
            stuck_rounds = 0 if progressed else stuck_rounds + 1
            if stuck_rounds > 3:
                raise DeadlockError(
                    "interleaved driver made no progress for several rounds"
                    " (undetected deadlock?)"
                )
        report.finished_at = max(
            (client.session.clock for client in clients), default=0.0
        )
        for client in clients:
            report.per_session_finish[client.session.session_id] = (
                client.session.clock
            )
        return report

    def _step(self, client: _ClientState, report: DriverReport) -> bool:
        """Advance one client by one statement; returns True on progress."""
        session = client.session
        statements = client.transactions[client.txn_index]
        try:
            if client.stmt_index < 0:
                session.begin()
                client.stmt_index = 0
                return True
            if client.stmt_index < len(statements):
                session.execute(statements[client.stmt_index])
                report.statements_executed += 1
                client.stmt_index += 1
                return True
            session.commit()
            report.transactions_committed += 1
            client.txn_index += 1
            client.stmt_index = -1
            return True
        except WouldBlock:
            report.lock_waits += 1
            client.parked = True
            return False
        except DeadlockError:
            report.deadlocks += 1
            client.retries += 1
            if client.retries > self.max_deadlock_retries:
                raise
            # The GDH already aborted the transaction; retry it fresh.
            client.stmt_index = -1
            return True


def transactions_from_transfers(transfers) -> list[list[str]]:
    """Adapter: banking transfers -> driver transaction scripts."""
    return [transfer.statements() for transfer in transfers]
