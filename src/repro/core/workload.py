"""Cooperative multi-session transaction driver.

The engine is synchronous (one Python thread), so concurrent clients
are *interleaved*: the driver round-robins statements across sessions;
a statement that must wait for a lock raises
:class:`~repro.core.locks.WouldBlock` and the driver parks that session
until the blocking transaction finishes; a deadlock victim's
transaction is retried from the top.  Simulated time does the rest —
waiters' clocks advance to the holder's release time, so throughput and
response times come out of the critical path, not the driver's loop
order.

This is the harness behind experiment E8 ("evaluation of several
queries and updates can be done in parallel, except for accesses to the
same copy of base fragments").

:class:`ConcurrentSessionDriver` is the serving-layer counterpart: N
DBAPI connections with seeded think times and a Zipf-skewed mixed
OLTP/analytics operation stream, interleaved in simulated-time order and
reporting latency percentiles — the harness behind
``benchmarks/bench_serving.py`` and the ``serving`` perf-gate suite.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from heapq import heappop, heappush

from repro.errors import DeadlockError
from repro.obs.api import SnapshotMixin
from repro.core.database import PrismaDB, Session
from repro.core.locks import WouldBlock


@dataclass
class DriverReport:
    """What an interleaved run did, on the simulated clock."""

    transactions_committed: int = 0
    deadlocks: int = 0
    lock_waits: int = 0
    statements_executed: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    per_session_finish: dict[int, float] = field(default_factory=dict)

    @property
    def makespan_s(self) -> float:
        return max(0.0, self.finished_at - self.started_at)

    @property
    def throughput_tps(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.transactions_committed / self.makespan_s


class _ClientState:
    """One client: a queue of transactions, each a list of statements."""

    def __init__(self, session: Session, transactions: list[list[str]]):
        self.session = session
        self.transactions = transactions
        self.txn_index = 0
        self.stmt_index = -1  # -1 = must BEGIN next
        self.parked = False
        self.retries = 0

    @property
    def done(self) -> bool:
        return self.txn_index >= len(self.transactions)


class InterleavedDriver:
    """Runs transaction scripts from many sessions concurrently."""

    def __init__(self, db: PrismaDB, max_deadlock_retries: int = 25):
        self.db = db
        self.max_deadlock_retries = max_deadlock_retries

    def run(self, scripts: list[list[list[str]]]) -> DriverReport:
        """*scripts[i]* is client i's list of transactions (statement
        lists).  Returns the aggregated report."""
        clients = [
            _ClientState(self.db.session(), transactions)
            for transactions in scripts
        ]
        report = DriverReport()
        report.started_at = min(
            (client.session.clock for client in clients), default=0.0
        )
        stuck_rounds = 0
        while any(not client.done for client in clients):
            progressed = False
            for client in clients:
                if client.done or client.parked:
                    continue
                progressed = self._step(client, report) or progressed
            # End of round: locks may have been released by commits this
            # round, so parked sessions get another chance.
            for client in clients:
                client.parked = False
            stuck_rounds = 0 if progressed else stuck_rounds + 1
            if stuck_rounds > 3:
                raise DeadlockError(
                    "interleaved driver made no progress for several rounds"
                    " (undetected deadlock?)"
                )
        report.finished_at = max(
            (client.session.clock for client in clients), default=0.0
        )
        for client in clients:
            report.per_session_finish[client.session.session_id] = (
                client.session.clock
            )
        return report

    def _step(self, client: _ClientState, report: DriverReport) -> bool:
        """Advance one client by one statement; returns True on progress."""
        session = client.session
        statements = client.transactions[client.txn_index]
        try:
            if client.stmt_index < 0:
                session.begin()
                client.stmt_index = 0
                return True
            if client.stmt_index < len(statements):
                session.execute(statements[client.stmt_index])
                report.statements_executed += 1
                client.stmt_index += 1
                return True
            session.commit()
            report.transactions_committed += 1
            client.txn_index += 1
            client.stmt_index = -1
            return True
        except WouldBlock:
            report.lock_waits += 1
            client.parked = True
            return False
        except DeadlockError:
            report.deadlocks += 1
            client.retries += 1
            if client.retries > self.max_deadlock_retries:
                raise
            # The GDH already aborted the transaction; retry it fresh.
            client.stmt_index = -1
            return True


def transactions_from_transfers(transfers) -> list[list[str]]:
    """Adapter: banking transfers -> driver transaction scripts."""
    return [transfer.statements() for transfer in transfers]


# ---------------------------------------------------------------------------
# Serving workload: N concurrent DBAPI sessions with think times.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServingWorkloadSpec:
    """A mixed OLTP/analytics serving workload, fully seeded.

    Each of *n_sessions* clients issues *ops_per_session* operations
    with exponentially distributed think time between them.  Point
    operations pick keys Zipf-skewed (rank weights ``1/r^alpha``), so a
    small hot set dominates — which is also what makes the plan cache's
    exact-match keys pay: the hot statements repeat.
    """

    n_sessions: int = 100
    ops_per_session: int = 8
    seed: int = 42
    table: str = "kv"
    n_keys: int = 128
    zipf_alpha: float = 1.3
    think_mean_s: float = 0.002
    #: Relative operation weights (any positive scale).
    read_weight: float = 0.60
    update_weight: float = 0.25
    insert_weight: float = 0.05
    analytics_weight: float = 0.10
    #: Added to every generated insert key.  Lets a second driver run on
    #: the same database (e.g. the measure phase of a rebalancing A/B
    #: after a profiling phase) without colliding with the first run's
    #: inserted keys.
    insert_key_offset: int = 0


class ZipfSampler:
    """Deterministic Zipf(alpha) rank sampler over ``n`` keys.

    Rank r (1-based) gets weight ``1/r^alpha``; sampling inverts the
    cumulative table with one RNG draw, so a seeded ``random.Random``
    gives the same key sequence on every run.
    """

    def __init__(self, n: int, alpha: float):
        weights = [1.0 / ((rank + 1) ** alpha) for rank in range(n)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        cumulative[-1] = 1.0  # guard float drift at the top end
        self._cumulative = cumulative

    def sample(self, rng) -> int:
        from bisect import bisect_left

        return bisect_left(self._cumulative, rng.random())


@dataclass
class ServingReport(SnapshotMixin):
    """Latency/throughput accounting for a concurrent-session run.

    A ``Snapshot``: ``stats()`` reports per-kind counts, p50/p99, and
    total simulated latency (float sums preserve bit patterns), so
    ``fingerprint()`` differs iff any operation's timing differed —
    the serving perf gate's determinism check hashes exactly this.
    """

    n_sessions: int = 0
    operations: int = 0
    statements: int = 0
    deadlocks: int = 0
    lock_waits: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    latencies_by_kind: dict[str, list[float]] = field(default_factory=dict)

    @property
    def makespan_s(self) -> float:
        return max(0.0, self.finished_at - self.started_at)

    @property
    def throughput_ops(self) -> float:
        """Operations per simulated second over the whole run."""
        return self.operations / self.makespan_s if self.makespan_s > 0 else 0.0

    def record(self, kind: str, latency_s: float) -> None:
        self.latencies_by_kind.setdefault(kind, []).append(latency_s)
        self.operations += 1

    def percentile(self, kind: str, p: float) -> float:
        """Nearest-rank percentile of *kind*'s latencies (p in 0..100)."""
        latencies = sorted(self.latencies_by_kind.get(kind, ()))
        if not latencies:
            return 0.0
        rank = max(1, math.ceil(p / 100.0 * len(latencies)))
        return latencies[min(rank, len(latencies)) - 1]

    def stats(self) -> dict:
        per_kind = {}
        for kind in sorted(self.latencies_by_kind):
            latencies = self.latencies_by_kind[kind]
            per_kind[kind] = {
                "count": len(latencies),
                "p50_s": self.percentile(kind, 50.0),
                "p99_s": self.percentile(kind, 99.0),
                "total_s": math.fsum(latencies),
            }
        return {
            "n_sessions": self.n_sessions,
            "operations": self.operations,
            "statements": self.statements,
            "deadlocks": self.deadlocks,
            "lock_waits": self.lock_waits,
            "makespan_s": self.makespan_s,
            "throughput_ops": self.throughput_ops,
            "kinds": per_kind,
        }

    def reset(self) -> None:
        self.n_sessions = 0
        self.operations = 0
        self.statements = 0
        self.deadlocks = 0
        self.lock_waits = 0
        self.started_at = 0.0
        self.finished_at = 0.0
        self.latencies_by_kind.clear()


class _ServingClient:
    """One serving client: a connection, its RNG, its op budget."""

    def __init__(self, connection, rng, ops_remaining: int):
        self.connection = connection
        self.cursor = connection.cursor()
        self.rng = rng
        self.ops_remaining = ops_remaining


class ConcurrentSessionDriver:
    """Runs a :class:`ServingWorkloadSpec` over DBAPI connections.

    Clients are interleaved by simulated time: the driver always issues
    the next operation of the client whose clock (after think time) is
    earliest, with the session index breaking ties — a deterministic
    discrete-event loop, so two same-seed runs produce bit-identical
    :class:`ServingReport` fingerprints.  Each operation is one
    autocommit statement through the serving layer's plan-cache path;
    admission control (when installed on the GDH) shows up as added
    latency under saturation.
    """

    #: Statement templates (fixed text => plan-cache keys repeat).
    READ_SQL = "SELECT v FROM {table} WHERE id = ?"
    UPDATE_SQL = "UPDATE {table} SET v = v + ? WHERE id = ?"
    INSERT_SQL = "INSERT INTO {table} VALUES (?, ?)"
    ANALYTICS_SQL = "SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM {table}"
    #: Inserted keys start far above any loaded key so the workload
    #: never collides with the seeded table contents.
    INSERT_KEY_BASE = 1_000_000_000

    def __init__(self, db: PrismaDB, spec: ServingWorkloadSpec):
        self.db = db
        self.spec = spec
        self._zipf = ZipfSampler(spec.n_keys, spec.zipf_alpha)
        self._kinds = ("read", "update", "insert", "analytics")
        self._weights = (
            spec.read_weight,
            spec.update_weight,
            spec.insert_weight,
            spec.analytics_weight,
        )
        self._insert_counter = 0

    def run(self) -> ServingReport:
        spec = self.spec
        clients = []
        for index in range(spec.n_sessions):
            clients.append(
                _ServingClient(
                    self.db.connect(),
                    random.Random(spec.seed * 1_000_003 + index),
                    spec.ops_per_session,
                )
            )
        report = ServingReport(n_sessions=spec.n_sessions)
        report.started_at = min(
            (client.connection.session.clock for client in clients),
            default=0.0,
        )
        ready: list[tuple[float, int]] = []
        for index, client in enumerate(clients):
            heappush(ready, (self._next_issue_at(client), index))
        while ready:
            _issue_at, index = heappop(ready)
            client = clients[index]
            self._issue(client, report)
            client.ops_remaining -= 1
            if client.ops_remaining > 0:
                heappush(ready, (self._next_issue_at(client), index))
        report.finished_at = max(
            (client.connection.session.clock for client in clients),
            default=0.0,
        )
        for client in clients:
            client.connection.close()
        return report

    def _next_issue_at(self, client: _ServingClient) -> float:
        """Advance the client past its think time; returns the clock."""
        think = client.rng.expovariate(1.0 / self.spec.think_mean_s)
        client.connection.session.advance_clock(think)
        return client.connection.session.clock

    def _issue(self, client: _ServingClient, report: ServingReport) -> None:
        spec = self.spec
        rng = client.rng
        kind = rng.choices(self._kinds, weights=self._weights)[0]
        session = client.connection.session
        issued_at = session.clock
        try:
            if kind == "read":
                key = self._zipf.sample(rng)
                client.cursor.execute(
                    self.READ_SQL.format(table=spec.table), (key,)
                )
            elif kind == "update":
                key = self._zipf.sample(rng)
                client.cursor.execute(
                    self.UPDATE_SQL.format(table=spec.table), (1, key)
                )
            elif kind == "insert":
                self._insert_counter += 1
                key = (
                    self.INSERT_KEY_BASE
                    + spec.insert_key_offset
                    + self._insert_counter
                )
                client.cursor.execute(
                    self.INSERT_SQL.format(table=spec.table), (key, 0)
                )
            else:
                client.cursor.execute(self.ANALYTICS_SQL.format(table=spec.table))
            report.statements += 1
        except WouldBlock:
            # Single-statement autocommit ops cannot block in host order,
            # but count it rather than assume (future multi-stmt mixes).
            report.lock_waits += 1
            return
        except DeadlockError:
            report.deadlocks += 1
            return
        report.record(kind, session.clock - issued_at)
