"""Crash and restart: the GDH's recovery component (Sections 2.2, 3.2).

A *crash* wipes all volatile state: every fragment table, every
in-flight transaction, all lock state.  *Restart* rebuilds the system
from stable storage:

1. the data dictionary is read back from the GDH's disk;
2. every durable OFM replays snapshot + WAL, resolving in-doubt
   (prepared) transactions against the coordinator's commit log —
   presumed abort for anything the log does not show committed;
3. fragment statistics are refreshed.

OFM recoveries run in parallel (one per element), so the simulated
recovery time is the slowest fragment, not the sum — exactly the
"automatic recovery upon system failures" the disk-equipped elements
exist for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RecoveryError
from repro.core.gdh import GlobalDataHandler
from repro.ofm.manager import OFMProfile


@dataclass
class CrashReport:
    """What a simulated crash destroyed."""

    at_time: float
    aborted_transactions: list[int] = field(default_factory=list)
    fragments_lost: int = 0


@dataclass
class RecoveryReport:
    """What restart rebuilt, and what it cost."""

    fragments_recovered: int = 0
    rows_restored: int = 0
    #: Slowest single-fragment recovery (parallel critical path).
    duration_s: float = 0.0
    #: Sum of all per-fragment recovery costs (total work).
    total_work_s: float = 0.0
    committed_outcomes: int = 0
    in_doubt_resolved: int = 0


class RecoveryManager:
    """Drives crash simulation and restart for a whole database."""

    def __init__(self, gdh: GlobalDataHandler):
        self.gdh = gdh

    def crash(self) -> CrashReport:
        """Lose all volatile state, as a machine-wide failure would."""
        gdh = self.gdh
        at = max(
            (process.ready_at for process in gdh.runtime.live_processes()),
            default=0.0,
        )
        report = CrashReport(at_time=at)
        # In-flight transactions simply vanish (their locks with them);
        # undo happens later from the logs, not from volatile chains.
        report.aborted_transactions = sorted(gdh.txns.active)
        gdh.txns.active.clear()
        from repro.core.locks import LockManager

        gdh.locks = LockManager()
        gdh.txns.locks = gdh.locks
        for ofm in gdh.fragment_ofms.values():
            ofm.crash()
            report.fragments_lost += 1
        return report

    def restart(self) -> RecoveryReport:
        """Rebuild committed state from stable storage."""
        gdh = self.gdh
        report = RecoveryReport()

        # 1. Data dictionary comes back from disk.
        try:
            recovered_catalog = gdh.load_catalog_from_disk()
        except KeyError:
            raise RecoveryError(
                "no durable data dictionary found; was the database ever"
                " checkpointed or DDL-ed?"
            ) from None
        expected = set(gdh.catalog.table_names())
        recovered = set(recovered_catalog.table_names())
        if expected != recovered:
            raise RecoveryError(
                f"data dictionary mismatch: volatile {sorted(expected)},"
                f" durable {sorted(recovered)}"
            )
        # Adopt the durable copy (authoritative after a crash). Fragment
        # processes are re-bound by name.
        gdh.catalog._tables = recovered_catalog._tables  # noqa: SLF001

        outcomes = gdh.commit_log.outcomes()
        report.committed_outcomes = sum(
            1 for outcome in outcomes.values() if outcome == "commit"
        )

        # 2. Every durable fragment replays in parallel.
        for ofm in gdh.fragment_ofms.values():
            if ofm.profile is not OFMProfile.FULL:
                continue
            rows, cost = ofm.recover(gdh.commit_log.outcome_of)
            report.fragments_recovered += 1
            report.rows_restored += rows
            report.total_work_s += cost
            report.duration_s = max(report.duration_s, cost)

        # 3. Statistics refresh for the optimizer.
        for name in gdh.catalog.table_names():
            gdh.refresh_table_stats(name)
        return report
