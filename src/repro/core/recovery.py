"""Crash and restart: the GDH's recovery component (Sections 2.2, 3.2).

Three failure shapes are handled:

* **machine-wide crash** (:meth:`RecoveryManager.crash`) wipes all
  volatile state: every fragment table, every in-flight transaction,
  all lock state.  :meth:`RecoveryManager.restart` rebuilds from stable
  storage — data dictionary, then every durable fragment in parallel.
* **single-element crash** (:meth:`RecoveryManager.crash_element`) — one
  PE goes down, killing only the OFM copies placed there; transactions
  that lost a participant abort at the survivors, reads fail over to
  replica copies, and :meth:`RecoveryManager.restart_fragments` later
  replays just the lost fragments (catching up from a live sibling copy
  when one exists, since its WAL missed writes committed during the
  outage).
* **coordinator halt** — an injected crash point stopped 2PC mid-flight;
  :meth:`RecoveryManager.resolve_in_doubt` drives the surviving system:
  every in-doubt participant is resolved against the durable commit
  log, with the participant's *own* forced commit record authoritative
  (the 1PC fast path forces the participant before the coordinator's
  log entry; restart repairs the log from it, never the reverse).

Cost accounting: the commit-log scan is charged onto the restart
critical path (`duration_s` = scan + slowest fragment), because no
fragment can resolve its in-doubt transactions before the scan returns.
OFM replays themselves run in parallel (one per element), so they
contribute their maximum, while ``total_work_s`` sums everything.

Both report types carry a :meth:`fingerprint` — a SHA-256 over their
canonical contents — so the CI determinism gate can diff two same-seed
runs bit-for-bit.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import RecoveryError
from repro.obs.tracer import active
from repro.core.gdh import GDH_NODE, GlobalDataHandler
from repro.core.transactions import TxnState
from repro.ofm.manager import OFMProfile, OneFragmentManager


def _fingerprint(*fields_: object) -> str:
    return hashlib.sha256(repr(fields_).encode("utf-8")).hexdigest()


def sync_copy_from(
    gdh: GlobalDataHandler,
    source: OneFragmentManager,
    dest: OneFragmentManager,
) -> tuple[bool, float]:
    """Make *dest* hold exactly *source*'s rows (row ids included).

    The copy phase shared by replica catch-up (a recovering copy whose
    WAL missed the outage) and online migration (a new copy being filled
    before the catalog flip): ship the source's state across the
    network, rebuild the destination table, and checkpoint the result so
    the destination's own WAL is authoritative from here on.  A no-op —
    (False, 0.0) — when the two copies already agree.

    Returns (did copy, simulated cost on *dest*).
    """
    theirs = dict(source.table.scan())
    if dict(dest.table.scan()) == theirs:
        return False, 0.0
    before = dest.ready_at
    rows = sorted(theirs.items())
    dest.table.truncate()
    for rid, row in rows:
        dest.table.insert_with_rid(rid, row)
    gdh.runtime.send(source, dest, max(64, source.table.data_bytes))
    dest.charge(gdh.machine.cpu_time(tuples=len(rows)), tuples=len(rows))
    if dest.wal is not None:
        # Make the copied state durable: stale WAL chunks under the
        # destination's name must not win the next replay.
        dest.charge(dest.wal.checkpoint(rows))
    return True, dest.ready_at - before


@dataclass
class CrashReport:
    """What a simulated crash destroyed."""

    at_time: float
    #: "machine" (everything) or "element" (one PE).
    kind: str = "machine"
    #: The failed element, for kind="element".
    node_id: int | None = None
    aborted_transactions: list[int] = field(default_factory=list)
    fragments_lost: int = 0
    #: Names of processes killed by an element crash (sorted).
    processes_killed: list[str] = field(default_factory=list)

    def stats(self) -> dict[str, float]:
        return {
            "at_time": self.at_time,
            "aborted_transactions": len(self.aborted_transactions),
            "fragments_lost": self.fragments_lost,
            "processes_killed": len(self.processes_killed),
        }

    def fingerprint(self) -> str:
        return _fingerprint(
            self.kind,
            self.node_id,
            self.at_time,
            sorted(self.aborted_transactions),
            self.fragments_lost,
            sorted(self.processes_killed),
        )

    def reset(self) -> None:
        self.aborted_transactions.clear()
        self.fragments_lost = 0
        self.processes_killed.clear()


@dataclass
class RecoveryReport:
    """What restart rebuilt, and what it cost."""

    fragments_recovered: int = 0
    rows_restored: int = 0
    #: Restart critical path: commit-log scan + slowest single-fragment
    #: replay (fragment recoveries run in parallel, the scan does not).
    duration_s: float = 0.0
    #: Sum of all recovery costs (total work, scan included).
    total_work_s: float = 0.0
    committed_outcomes: int = 0
    in_doubt_resolved: int = 0
    #: Simulated cost of scanning the coordinator's commit log.
    commit_log_scan_s: float = 0.0
    #: Commit-log entries rewritten from participants' authoritative
    #: WAL commit records (1PC crash between the two forces).
    log_repairs: int = 0
    #: Fragments whose replayed state was caught up from a live sibling
    #: copy (their WAL missed writes committed during the outage).
    replica_catchups: int = 0

    def stats(self) -> dict[str, float]:
        return {
            "fragments_recovered": self.fragments_recovered,
            "rows_restored": self.rows_restored,
            "duration_s": self.duration_s,
            "total_work_s": self.total_work_s,
            "committed_outcomes": self.committed_outcomes,
            "in_doubt_resolved": self.in_doubt_resolved,
            "commit_log_scan_s": self.commit_log_scan_s,
            "log_repairs": self.log_repairs,
            "replica_catchups": self.replica_catchups,
        }

    def fingerprint(self) -> str:
        return _fingerprint(
            self.fragments_recovered,
            self.rows_restored,
            self.duration_s,
            self.total_work_s,
            self.committed_outcomes,
            self.in_doubt_resolved,
            self.commit_log_scan_s,
            self.log_repairs,
            self.replica_catchups,
        )

    def reset(self) -> None:
        self.fragments_recovered = 0
        self.rows_restored = 0
        self.duration_s = 0.0
        self.total_work_s = 0.0
        self.committed_outcomes = 0
        self.in_doubt_resolved = 0
        self.commit_log_scan_s = 0.0
        self.log_repairs = 0
        self.replica_catchups = 0


@dataclass
class InDoubtResolution:
    """Outcome of resolving halted-coordinator transactions in place."""

    resolved: int = 0
    committed: int = 0
    aborted: int = 0
    log_repairs: int = 0

    def stats(self) -> dict[str, float]:
        return {
            "resolved": self.resolved,
            "committed": self.committed,
            "aborted": self.aborted,
            "log_repairs": self.log_repairs,
        }

    def fingerprint(self) -> str:
        return _fingerprint(
            self.resolved, self.committed, self.aborted, self.log_repairs
        )

    def reset(self) -> None:
        self.resolved = 0
        self.committed = 0
        self.aborted = 0
        self.log_repairs = 0


class RecoveryManager:
    """Drives crash simulation and restart for a whole database."""

    def __init__(self, gdh: GlobalDataHandler):
        self.gdh = gdh
        self._tracer = active(gdh.runtime.tracer)

    # -- failures -------------------------------------------------------------

    def crash(self) -> CrashReport:
        """Lose all volatile state, as a machine-wide failure would."""
        gdh = self.gdh
        at = max(
            (process.ready_at for process in gdh.runtime.live_processes()),
            default=0.0,
        )
        report = CrashReport(at_time=at, kind="machine")
        # In-flight transactions simply vanish (their locks with them);
        # undo happens later from the logs, not from volatile chains.
        # Mark them ABORTED so a session still pointing at one fails its
        # next commit/rollback with TransactionAborted instead of running
        # the two-phase protocol on an untracked transaction.  (No
        # counter bump: these are crash casualties, not protocol aborts.)
        report.aborted_transactions = sorted(gdh.txns.active)
        for txn in gdh.txns.active.values():
            txn.state = TxnState.ABORTED
        gdh.txns.active.clear()
        from repro.core.locks import LockManager

        gdh.locks = LockManager()
        gdh.txns.locks = gdh.locks
        for ofm in gdh.fragment_ofms.values():
            ofm.crash()
            report.fragments_lost += 1
        return report

    def crash_element(self, node_id: int) -> CrashReport:
        """One PE fails: its processes die, the survivors carry on.

        Transactions that lost a participant are aborted at their live
        participants (their locks release, so waiting work proceeds);
        fragment copies on the element leave the registry, so reads
        fail over to replicas and writes to a copyless fragment error
        out rather than silently diverging.
        """
        gdh = self.gdh
        if node_id == GDH_NODE:
            raise RecoveryError(
                "cannot crash the supervisor element"
                f" {GDH_NODE}: the GDH and its commit log live there"
                " (model GDH failure as a machine-wide crash instead)"
            )
        report = CrashReport(
            at_time=gdh.runtime.horizon(), kind="element", node_id=node_id
        )
        report.processes_killed = gdh.faults.crash_element(node_id)
        # Fragment copies on the element lose their volatile state for
        # good; the registry must stop routing reads/writes to them.
        dead = sorted(
            name for name, ofm in gdh.fragment_ofms.items() if not ofm.alive
        )
        for name in dead:
            ofm = gdh.fragment_ofms.pop(name)
            ofm.halt()
            report.fragments_lost += 1
        # Abort every transaction that lost a participant: phase one can
        # no longer succeed for them, and holding their locks would
        # stall the surviving elements forever.
        for txn_id in sorted(gdh.txns.active):
            txn = gdh.txns.active[txn_id]
            if all(ofm.alive for ofm in txn.participants.values()):
                continue
            report.aborted_transactions.append(txn_id)
            for ofm in txn.participants.values():
                if ofm.alive and ofm.has_transaction_state(txn_id):
                    ofm.abort(txn_id)
            gdh.txns.finish(txn, TxnState.ABORTED, report.at_time)
        return report

    # -- restart --------------------------------------------------------------

    def restart(self) -> RecoveryReport:
        """Rebuild committed state from stable storage (whole machine)."""
        gdh = self.gdh

        # 1. Data dictionary comes back from disk.
        try:
            recovered_catalog = gdh.load_catalog_from_disk()
        except KeyError:
            raise RecoveryError(
                "no durable data dictionary found; was the database ever"
                " checkpointed or DDL-ed?"
            ) from None
        expected = set(gdh.catalog.table_names())
        recovered = set(recovered_catalog.table_names())
        if expected != recovered:
            raise RecoveryError(
                f"data dictionary mismatch: volatile {sorted(expected)},"
                f" durable {sorted(recovered)}"
            )
        # Adopt the durable copy (authoritative after a crash) in place:
        # the executor/binder share the Catalog object by reference.
        gdh.catalog.adopt(recovered_catalog)

        # Element-crashed copies are missing from the registry entirely;
        # respawn them from the recovered placement before replaying.
        for info in gdh.catalog.tables():
            for fragment in info.fragments:
                for copy_node, copy_name in fragment.all_copies():
                    if copy_name in gdh.fragment_ofms:
                        continue
                    if not gdh.machine.node_is_up(copy_node):
                        raise RecoveryError(
                            f"element {copy_node} is still down; restore it"
                            f" before restarting fragment copy {copy_name!r}"
                        )
                    gdh.respawn_fragment_ofm(info, copy_name, copy_node)

        report = self._replay(
            sorted(
                name
                for name, ofm in gdh.fragment_ofms.items()
                if ofm.profile is OFMProfile.FULL
            ),
            catch_up=False,
        )

        # 3. Statistics refresh for the optimizer.
        for name in gdh.catalog.table_names():
            gdh.refresh_table_stats(name)
        return report

    def restart_fragments(self, names: Sequence[str]) -> RecoveryReport:
        """Per-fragment restart after an element came back.

        *names* are fragment-copy OFM names (as the catalog records
        them).  The surviving system kept running, so the volatile
        dictionary is authoritative and only the named copies replay —
        then catch up from a live sibling copy where one exists, since
        the dead copy's WAL missed everything committed during the
        outage.
        """
        gdh = self.gdh
        for name in names:
            info, _fragment, copy_node = gdh.locate_fragment_copy(name)
            ofm = gdh.fragment_ofms.get(name)
            if ofm is not None and ofm.alive:
                continue  # already running; replay below is idempotent
            if not gdh.machine.node_is_up(copy_node):
                raise RecoveryError(
                    f"element {copy_node} is down; restore it before"
                    f" restarting fragment copy {name!r}"
                )
            gdh.respawn_fragment_ofm(info, name, copy_node)
        report = self._replay(sorted(names), catch_up=True)
        for table_name in sorted(
            {gdh.locate_fragment_copy(name)[0].name for name in names}
        ):
            gdh.refresh_table_stats(table_name)
        return report

    def _replay(self, names: list[str], catch_up: bool) -> RecoveryReport:
        """Replay the named fragment copies against the commit log."""
        gdh = self.gdh
        report = RecoveryReport()

        scan_started = gdh.gdh_process.ready_at
        outcomes, scan_cost = gdh.commit_log.scan()
        gdh.gdh_process.charge(scan_cost)
        if self._tracer is not None:
            self._tracer.span(
                scan_started,
                gdh.gdh_process.ready_at,
                "recovery.log_scan",
                "commit_log",
                node=gdh.gdh_process.node_id,
                actor=gdh.gdh_process.name,
                outcomes=len(outcomes),
            )
        report.commit_log_scan_s = scan_cost
        report.committed_outcomes = sum(
            1 for outcome in outcomes.values() if outcome == "commit"
        )

        longest = 0.0
        for name in names:
            ofm = gdh.fragment_ofms[name]
            if ofm.profile is not OFMProfile.FULL:
                continue
            replay_started = ofm.ready_at
            rows, cost = ofm.recover(lambda txn: outcomes.get(txn, "abort"))
            if self._tracer is not None:
                self._tracer.span(
                    replay_started,
                    replay_started + cost,
                    "recovery.wal_replay",
                    name,
                    node=ofm.node_id,
                    actor=ofm.name,
                    rows=rows,
                )
            recovery = ofm.last_recovery
            assert recovery is not None
            report.in_doubt_resolved += len(recovery.in_doubt)
            # Participant-authoritative repair: a transaction the WAL
            # shows durably committed but the log does not (1PC crash
            # between the participant's force and the coordinator's)
            # is re-recorded, so later scans — and the sibling copies
            # replayed after this one — see it committed.
            for txn_id in recovery.locally_committed:
                if outcomes.get(txn_id) != "commit":
                    gdh.gdh_process.charge(gdh.commit_log.record(txn_id, "commit"))
                    outcomes[txn_id] = "commit"
                    report.log_repairs += 1
                    report.committed_outcomes += 1
            if catch_up:
                catchup_started = ofm.ready_at
                caught_up, catchup_cost = self._catch_up(ofm)
                if caught_up:
                    report.replica_catchups += 1
                    cost += catchup_cost
                    rows = len(ofm.table)
                    if self._tracer is not None:
                        self._tracer.span(
                            catchup_started,
                            ofm.ready_at,
                            "recovery.catch_up",
                            name,
                            node=ofm.node_id,
                            actor=ofm.name,
                            rows=rows,
                        )
            report.fragments_recovered += 1
            report.rows_restored += rows
            report.total_work_s += cost
            longest = max(longest, cost)

        # The scan precedes every (parallel) fragment replay.
        report.duration_s = scan_cost + longest
        report.total_work_s += scan_cost
        return report

    def _catch_up(self, ofm: OneFragmentManager) -> tuple[bool, float]:
        """Copy state over from a live sibling if the WAL replay is stale.

        Returns (did catch up, simulated cost on the recovering OFM).
        """
        gdh = self.gdh
        _info, fragment, _node = gdh.locate_fragment_copy(ofm.name)
        sibling = next(
            (
                gdh.fragment_ofms[copy_name]
                for _copy_node, copy_name in fragment.all_copies()
                if copy_name != ofm.name
                and copy_name in gdh.fragment_ofms
                and gdh.fragment_ofms[copy_name].alive
            ),
            None,
        )
        if sibling is None:
            return False, 0.0
        return sync_copy_from(gdh, sibling, ofm)

    # -- in-doubt resolution ---------------------------------------------------

    def resolve_in_doubt(self) -> InDoubtResolution:
        """Resolve transactions orphaned by a halted coordinator.

        The machine did not crash — participants are alive, locks are
        held.  Every active transaction is driven to its correct end:
        commit if the durable commit log says so *or* any participant's
        own WAL shows a durable commit (authoritative on the 1PC path;
        the log is repaired from it), presumed abort otherwise.
        """
        gdh = self.gdh
        result = InDoubtResolution()
        outcomes, scan_cost = gdh.commit_log.scan()
        gdh.gdh_process.charge(scan_cost)
        at = gdh.runtime.horizon()
        for txn_id in sorted(gdh.txns.active):
            txn = gdh.txns.active[txn_id]
            participants = [p for p in txn.participants.values() if p.alive]
            locally_committed = any(
                ofm.has_committed(txn_id) for ofm in participants
            )
            committed = outcomes.get(txn_id) == "commit" or locally_committed
            if committed and outcomes.get(txn_id) != "commit":
                gdh.gdh_process.charge(gdh.commit_log.record(txn_id, "commit"))
                result.log_repairs += 1
            if not committed and txn_id not in outcomes:
                # Presumed abort decides; record it for restart reporting.
                gdh.gdh_process.charge(gdh.commit_log.record(txn_id, "abort"))
            for ofm in participants:
                if not ofm.has_transaction_state(txn_id):
                    continue
                if committed:
                    ofm.commit(txn_id)
                else:
                    ofm.abort(txn_id)
            gdh.txns.finish(
                txn,
                TxnState.COMMITTED if committed else TxnState.ABORTED,
                at,
            )
            result.resolved += 1
            if committed:
                result.committed += 1
            else:
                result.aborted += 1
        return result
