"""Query results returned by the PRISMA facade."""

# prismalint: disable=PL101 -- presentation layer: format_table renders for humans after execution; no simulated work happens here

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.executor import ExecutionReport


@dataclass
class QueryResult:
    """The outcome of one statement.

    ``rows``/``columns`` are filled for queries; ``affected_rows`` for
    DML; ``report`` carries the simulated-machine accounting whenever a
    plan actually executed.
    """

    kind: str  # 'select' | 'insert' | 'update' | 'delete' | 'ddl' | 'txn' | ...
    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    affected_rows: int = 0
    message: str = ""
    report: ExecutionReport | None = None
    prismalog_stats: dict | None = None

    @property
    def response_time(self) -> float:
        """Simulated response time in seconds (0 if nothing executed)."""
        return self.report.response_time if self.report else 0.0

    def scalar(self):
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got {len(self.rows)} row(s)"
            )
        return self.rows[0][0]

    def format_table(self, max_rows: int = 50) -> str:
        """Human-readable rendering (used by the examples)."""
        if not self.columns:
            return self.message or f"{self.kind}: {self.affected_rows} row(s)"
        header = self.columns
        body = [
            [("NULL" if v is None else str(v)) for v in row]
            for row in self.rows[:max_rows]
        ]
        widths = [len(h) for h in header]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            " | ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
            "-+-".join("-" * w for w in widths),
        ]
        lines.extend(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            for row in body
        )
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)
