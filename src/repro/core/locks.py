"""Fragment-granularity two-phase locking with deadlock detection.

Section 2.2: "evaluation of several queries and updates can be done in
parallel, except for accesses to the same copy of base fragments of the
database" — concurrency control serializes exactly those accesses.
Readers share (S), writers exclude (X), at the granularity of one
fragment (= one OFM).

The engine is driven synchronously, so a conflicting request cannot
truly block the caller; instead :meth:`LockManager.acquire` raises
:class:`WouldBlock` after registering the request in a FIFO wait queue
and the wait-for graph.  The workload driver re-issues the statement
when the holder finishes; simulated waiting time is accounted because a
later grant returns the resource's release timestamp, to which the
waiter's clock must advance.  A request that would close a cycle in the
wait-for graph raises :class:`~repro.errors.DeadlockError` instead (the
requester is the victim).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from repro.errors import DeadlockError, TransactionError

Resource = tuple[str, int]  # (table name, fragment id)


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class WouldBlock(TransactionError):
    """The request must wait for other transactions to release."""

    def __init__(self, txn_id: int, resource: Resource, holders: set[int]):
        super().__init__(
            f"transaction {txn_id} must wait for {sorted(holders)}"
            f" on fragment {resource}"
        )
        self.txn_id = txn_id
        self.resource = resource
        self.holders = holders


@dataclass
class _LockState:
    holders: dict[int, LockMode] = field(default_factory=dict)
    waiters: deque = field(default_factory=deque)  # (txn_id, mode)
    last_release_time: float = 0.0


def _compatible(requested: LockMode, held: LockMode) -> bool:
    return requested is LockMode.SHARED and held is LockMode.SHARED


class LockManager:
    """S/X locks per fragment, FIFO queues, wait-for-graph deadlock checks.

    Idle entries are not kept forever: an entry with no holders and no
    waiters only carries its ``last_release_time`` (the wait floor a
    future acquirer's clock advances to).  Once that stamp is more than
    *retain_horizon_s* of simulated time in the past, the floor can no
    longer move any live requester's clock (``advance_to`` is a max),
    so the entry is purged — bounding the table under sustained
    multi-fragment traffic instead of leaking one entry per fragment
    ever touched.
    """

    def __init__(self, retain_horizon_s: float = 300.0):
        self._locks: dict[Resource, _LockState] = {}
        #: txn -> set of txns it waits for (live edges only)
        self._wait_for: dict[int, set[int]] = {}
        self.deadlocks_detected = 0
        self.conflicts = 0
        #: How long an idle entry's release stamp stays relevant; the
        #: purge is conservative — any transaction whose clock lags the
        #: latest release by more than this would observe a floor of 0,
        #: which advance_to() ignores anyway.
        self.retain_horizon_s = retain_horizon_s
        self.entries_purged = 0
        self._last_sweep_time = 0.0

    # -- queries ---------------------------------------------------------------

    def holders(self, resource: Resource) -> dict[int, LockMode]:
        state = self._locks.get(resource)
        return dict(state.holders) if state else {}

    def locks_of(self, txn_id: int) -> list[Resource]:
        return [
            resource
            for resource, state in self._locks.items()
            if txn_id in state.holders
        ]

    # -- acquisition -------------------------------------------------------------

    def acquire(self, txn_id: int, resource: Resource, mode: LockMode) -> float:
        """Grant the lock or raise WouldBlock / DeadlockError.

        On success returns the resource's last release time: the
        requester's simulated clock must be advanced to at least this
        value (it logically waited for the previous holder).
        """
        state = self._locks.setdefault(resource, _LockState())
        held = state.holders.get(txn_id)
        if held is LockMode.EXCLUSIVE or held is mode:
            return state.last_release_time  # re-entrant / covered
        conflicting = {
            other
            for other, other_mode in state.holders.items()
            if other != txn_id and not _compatible(mode, other_mode)
        }
        if held is LockMode.SHARED and mode is LockMode.EXCLUSIVE:
            # Upgrade: allowed only as the sole holder.
            if not conflicting:
                state.holders[txn_id] = LockMode.EXCLUSIVE
                return state.last_release_time
        # FIFO fairness applies only to *incompatible* waiters ahead of us
        # (a shared request may join other shared requests).
        ahead: list[tuple[int, LockMode]] = []
        for waiting, waiting_mode in state.waiters:
            if waiting == txn_id:
                break
            ahead.append((waiting, waiting_mode))
        blocking_waiters = {
            waiting
            for waiting, waiting_mode in ahead
            if not _compatible(mode, waiting_mode)
        }
        if not conflicting and not blocking_waiters:
            self._remove_waiter(state, txn_id)
            self._clear_waits(txn_id)
            state.holders[txn_id] = (
                LockMode.EXCLUSIVE if held is LockMode.SHARED else mode
            )
            return state.last_release_time
        # Conflict: check for deadlock before registering the wait.
        self.conflicts += 1
        blockers = conflicting | blocking_waiters
        if self._would_deadlock(txn_id, blockers):
            self.deadlocks_detected += 1
            self._clear_waits(txn_id)
            self._remove_waiter(state, txn_id)
            raise DeadlockError(
                f"transaction {txn_id} would deadlock on fragment {resource};"
                " chosen as victim"
            )
        self._wait_for.setdefault(txn_id, set()).update(blockers)
        if all(waiting != txn_id for waiting, _ in state.waiters):
            state.waiters.append((txn_id, mode))
        raise WouldBlock(txn_id, resource, blockers or set(state.holders))

    def _would_deadlock(self, txn_id: int, new_blockers: set[int]) -> bool:
        """Would adding edges txn_id -> new_blockers close a cycle?"""
        # DFS from each blocker through existing wait-for edges.
        stack = sorted(new_blockers)
        seen: set[int] = set()
        while stack:
            current = stack.pop()
            if current == txn_id:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._wait_for.get(current, ()))
        return False

    # -- release --------------------------------------------------------------------

    def release_all(self, txn_id: int, release_time: float) -> list[Resource]:
        """Drop every lock of *txn_id*; stamps the release time.

        Returns the resources that now have runnable waiters (the
        driver uses this to know which sessions to retry).
        """
        unblocked: list[Resource] = []
        for resource, state in list(self._locks.items()):
            if txn_id in state.holders:
                del state.holders[txn_id]
                state.last_release_time = max(state.last_release_time, release_time)
                if state.waiters:
                    unblocked.append(resource)
            self._remove_waiter(state, txn_id)
        self._clear_waits(txn_id)
        # Remove txn from others' blocker sets.
        for waiting in self._wait_for.values():
            waiting.discard(txn_id)
        self._sweep_idle_entries(release_time)
        return unblocked

    def _sweep_idle_entries(self, now: float) -> None:
        """Amortized purge of idle entries past the retain horizon.

        Runs at most once per horizon of simulated time, so release_all
        stays O(locks held) on average rather than O(all entries ever).
        """
        horizon = self.retain_horizon_s
        if now - self._last_sweep_time < horizon:
            return
        self._last_sweep_time = now
        cutoff = now - horizon
        stale = [
            resource
            for resource, state in self._locks.items()
            if not state.holders
            and not state.waiters
            and state.last_release_time <= cutoff
        ]
        for resource in stale:
            del self._locks[resource]
        self.entries_purged += len(stale)

    def _remove_waiter(self, state: _LockState, txn_id: int) -> None:
        state.waiters = deque(
            (waiting, mode) for waiting, mode in state.waiters if waiting != txn_id
        )

    def _clear_waits(self, txn_id: int) -> None:
        self._wait_for.pop(txn_id, None)

    def waiting_transactions(self) -> set[int]:
        return set(self._wait_for)
