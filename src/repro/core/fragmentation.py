"""Fragmentation schemes: how a relation splits into one-tuple-home
fragments.

PRISMA is built around the One-Fragment Manager: every relation is
horizontally fragmented and each fragment is owned by exactly one OFM
on one processing element.  The schemes here decide which fragment a
tuple belongs to; the data allocation manager decides which element
hosts each fragment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import CatalogError
from repro.storage.schema import Schema


#: kind string -> scheme class, populated by ``__init_subclass__`` (the
#: same pattern prismalint's ``Rule`` registry uses).  Derived schemes —
#: e.g. the rebalancer's bucket-remap scheme — register themselves by
#: subclassing with ``kind=...`` instead of editing ``from_spec``.
_SCHEME_KINDS: dict[str, type["FragmentationScheme"]] = {}


def registered_kinds() -> list[str]:
    """The fragmentation kinds the dictionary can deserialize."""
    return sorted(_SCHEME_KINDS)


class FragmentationScheme:
    """Maps rows to fragment numbers ``0..n_fragments-1``."""

    n_fragments: int
    #: Registry key of concrete subclasses (set by ``__init_subclass__``).
    spec_kind: str = ""

    def __init_subclass__(cls, kind: str | None = None, **kwargs: Any):
        super().__init_subclass__(**kwargs)
        if kind is not None:
            existing = _SCHEME_KINDS.get(kind)
            if existing is not None and existing is not cls:
                raise CatalogError(
                    f"fragmentation kind {kind!r} already registered"
                    f" by {existing.__name__}"
                )
            cls.spec_kind = kind
            _SCHEME_KINDS[kind] = cls

    def fragment_of(self, row: tuple) -> int:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def key_columns(self) -> tuple[int, ...]:
        """Columns that determine the fragment (empty if none)."""
        return ()

    def prunable_fragments(self, column: int, value: Any) -> list[int] | None:
        """Fragments that can hold rows with ``row[column] == value``.

        ``None`` means "no pruning possible — all fragments".  The
        executor uses this to skip fragments for point queries.
        """
        return None

    def to_spec(self) -> dict:
        """JSON-able description (persisted in the data dictionary)."""
        raise NotImplementedError

    @classmethod
    def _from_spec(cls, spec: dict) -> "FragmentationScheme":
        """Rebuild an instance from its :meth:`to_spec` payload."""
        raise NotImplementedError

    @staticmethod
    def from_spec(spec: dict) -> "FragmentationScheme":
        scheme_cls = _SCHEME_KINDS.get(spec["kind"])
        if scheme_cls is None:
            raise CatalogError(f"unknown fragmentation kind {spec['kind']!r}")
        return scheme_cls._from_spec(spec)


@dataclass
class SingleFragment(FragmentationScheme, kind="single"):
    """No fragmentation: the whole relation in one OFM."""

    n_fragments: int = 1

    def fragment_of(self, row: tuple) -> int:
        return 0

    def describe(self) -> str:
        return "single"

    def to_spec(self) -> dict:
        return {"kind": "single", "n_fragments": 1}

    @classmethod
    def _from_spec(cls, spec: dict) -> "SingleFragment":
        return cls()


class HashFragmentation(FragmentationScheme, kind="hash"):
    """Hash on one column: equal values share a fragment (good for
    equi-joins and point lookups on the key)."""

    def __init__(self, column: int, n_fragments: int):
        if n_fragments < 1:
            raise CatalogError(f"need at least 1 fragment, got {n_fragments}")
        self.column = column
        self.n_fragments = n_fragments

    def fragment_of(self, row: tuple) -> int:
        return stable_hash(row[self.column]) % self.n_fragments

    def key_columns(self) -> tuple[int, ...]:
        return (self.column,)

    def prunable_fragments(self, column: int, value: Any) -> list[int] | None:
        if column == self.column and value is not None:
            return [stable_hash(value) % self.n_fragments]
        return None

    def describe(self) -> str:
        return f"hash(col{self.column}) into {self.n_fragments}"

    def to_spec(self) -> dict:
        return {
            "kind": "hash",
            "column": self.column,
            "n_fragments": self.n_fragments,
        }

    @classmethod
    def _from_spec(cls, spec: dict) -> "HashFragmentation":
        return cls(spec["column"], spec["n_fragments"])


class RangeFragmentation(FragmentationScheme, kind="range"):
    """Range on one column: boundaries ``(b0 < b1 < ...)`` create
    fragments ``(-inf, b0), [b0, b1), ..., [bk, +inf)``."""

    def __init__(self, column: int, boundaries: tuple):
        if not boundaries:
            raise CatalogError("range fragmentation needs at least one boundary")
        if list(boundaries) != sorted(boundaries):
            raise CatalogError(f"range boundaries must be sorted: {boundaries}")
        self.column = column
        self.boundaries = tuple(boundaries)
        self.n_fragments = len(boundaries) + 1

    def fragment_of(self, row: tuple) -> int:
        value = row[self.column]
        if value is None:
            return 0  # NULLs live in the first fragment
        import bisect

        return bisect.bisect_right(self.boundaries, value)

    def key_columns(self) -> tuple[int, ...]:
        return (self.column,)

    def prunable_fragments(self, column: int, value: Any) -> list[int] | None:
        if column == self.column and value is not None:
            import bisect

            return [bisect.bisect_right(self.boundaries, value)]
        return None

    def describe(self) -> str:
        return f"range(col{self.column}; {self.boundaries})"

    def to_spec(self) -> dict:
        return {
            "kind": "range",
            "column": self.column,
            "boundaries": list(self.boundaries),
        }

    @classmethod
    def _from_spec(cls, spec: dict) -> "RangeFragmentation":
        return cls(spec["column"], tuple(spec["boundaries"]))


class RoundRobinFragmentation(FragmentationScheme, kind="roundrobin"):
    """Round-robin: perfect balance, no pruning (a stateful scheme —
    each table keeps its own instance)."""

    def __init__(self, n_fragments: int):
        if n_fragments < 1:
            raise CatalogError(f"need at least 1 fragment, got {n_fragments}")
        self.n_fragments = n_fragments
        self._next = 0

    def fragment_of(self, row: tuple) -> int:
        fragment = self._next
        self._next = (self._next + 1) % self.n_fragments
        return fragment

    def describe(self) -> str:
        return f"roundrobin into {self.n_fragments}"

    def to_spec(self) -> dict:
        return {"kind": "roundrobin", "n_fragments": self.n_fragments}

    @classmethod
    def _from_spec(cls, spec: dict) -> "RoundRobinFragmentation":
        return cls(spec["n_fragments"])


def stable_hash(value: Any) -> int:
    """Deterministic across runs (unlike ``hash(str)`` with PYTHONHASHSEED).

    Fragmentation must be stable so recovery re-derives the same tuple
    homes after a restart.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value & 0x7FFFFFFF
    if isinstance(value, float):
        return int(value * 2654435761) & 0x7FFFFFFF
    if isinstance(value, str):
        h = 2166136261
        for byte in value.encode("utf-8"):
            h = ((h ^ byte) * 16777619) & 0xFFFFFFFF
        return h & 0x7FFFFFFF
    raise CatalogError(f"cannot fragment on value {value!r}")


def build_scheme(
    kind: str,
    schema: Schema,
    column: str | None,
    count: int,
    boundaries: tuple = (),
) -> FragmentationScheme:
    """Build a scheme from SQL's ``FRAGMENTED BY`` clause."""
    if kind == "hash":
        assert column is not None
        return HashFragmentation(schema.index_of(column), count)
    if kind == "range":
        assert column is not None
        return RangeFragmentation(schema.index_of(column), boundaries)
    if kind == "roundrobin":
        return RoundRobinFragmentation(count)
    raise CatalogError(f"unknown fragmentation kind {kind!r}")
