"""The public facade: :class:`PrismaDB` and :class:`Session`.

A ``PrismaDB`` is one PRISMA database machine: a simulated
multi-computer, a POOL-X runtime, a Global Data Handler, and the OFMs it
supervises.  Sessions provide the two query interfaces of Section 2.1 —
SQL and PRISMAlog — plus transaction control, crash/restart, and access
to the simulated-machine accounting.

    >>> db = PrismaDB()
    >>> db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)"
    ...            " FRAGMENTED BY HASH(id) INTO 4").message
    'table t created: ...'
"""

from __future__ import annotations

from repro.errors import PrismaError
from repro.machine.config import MachineConfig, paper_prototype
from repro.machine.machine import Machine
from repro.obs.api import Observatory
from repro.obs.tracer import Tracer
from repro.algebra.optimizer import OptimizerOptions
from repro.core.faults import FaultInjector
from repro.core.gdh import GlobalDataHandler, SessionState
from repro.core.recovery import (
    CrashReport,
    InDoubtResolution,
    RecoveryManager,
    RecoveryReport,
)
from repro.core.result import QueryResult
from repro.pool.runtime import PoolRuntime
from repro.sql.parser import parse_script


class Session:
    """One client connection with its own transaction context."""

    def __init__(self, db: "PrismaDB", state: SessionState):
        self._db = db
        self._state = state

    @property
    def session_id(self) -> int:
        return self._state.session_id

    @property
    def clock(self) -> float:
        """This session's simulated time."""
        return self._state.clock

    @property
    def in_transaction(self) -> bool:
        return self._state.txn is not None

    def advance_clock(self, seconds: float) -> None:
        """Model client-side think time: push this session forward."""
        if seconds > 0.0:
            self._state.clock += seconds

    def execute(self, sql: str) -> QueryResult:
        """Run one SQL statement in this session."""
        return self._db.gdh.execute_sql(sql, self._state)

    def execute_statement(
        self, statement, sql_text: str = "", cached: bool = False
    ) -> QueryResult:
        """Run one already-parsed statement through the GDH entry point.

        Scripts and the serving layer use this instead of calling the
        GDH directly, so per-statement accounting and admission control
        see every statement regardless of how it arrived.  ``cached``
        marks a plan-cache hit: the simulated front-end charge collapses
        to one cache lookup.
        """
        return self._db.gdh.execute_statement(
            statement, self._state, sql_text, cached
        )

    def query(self, sql: str) -> list[tuple]:
        """Run a SELECT and return just its rows."""
        return self.execute(sql).rows

    def begin(self) -> None:
        self._db.gdh.begin(self._state)

    def commit(self) -> None:
        self._db.gdh.commit(self._state)

    def rollback(self) -> None:
        self._db.gdh.rollback(self._state)

    def execute_prismalog(self, program: str) -> list[QueryResult]:
        """Run a PRISMAlog program; one result per ``? query.``."""
        return self._db.run_prismalog(program, self._state)

    def close(self) -> None:
        """End the session, rolling back any open transaction."""
        self._db.gdh.close_session(self._state)


class PrismaDB:
    """A PRISMA database machine instance.

    Parameters
    ----------
    config:
        Multi-computer hardware description; defaults to the 64-element
        prototype of Section 3.2 (with disks on every 8th element).
    compiled_expressions:
        Use the generative expression compiler (True, the paper's
        design) or the interpreter baseline (False; E5 ablation).
    optimizer_options:
        Ablation switches for the knowledge-based optimizer (E10).
    allow_one_phase:
        Use the single-participant commit fast path (E9 ablation).
    default_fragments:
        Fragment count for CREATE TABLE without a FRAGMENTED BY clause
        (hash on the primary key); default is a single fragment.
    faults:
        A :class:`~repro.core.faults.FaultInjector` for deterministic
        crash/failure experiments; a default (never-armed) injector is
        created when omitted.
    tracer:
        A :class:`~repro.obs.Tracer` recording structured spans across
        the runtime, executor, and commit/recovery paths.  ``None`` (the
        default) or a disabled tracer costs one ``is not None`` test per
        instrumented event.
    """

    def __init__(
        self,
        config: MachineConfig | None = None,
        compiled_expressions: bool = True,
        optimizer_options: OptimizerOptions | None = None,
        allow_one_phase: bool = True,
        default_fragments: int | None = None,
        disk_resident: bool = False,
        faults: FaultInjector | None = None,
        tracer: Tracer | None = None,
    ):
        self.machine = Machine(config or paper_prototype())
        if not self.machine.disk_nodes():
            raise PrismaError(
                "PRISMA needs at least one disk-equipped processing element"
                " for stable storage (set MachineConfig.disk_nodes)"
            )
        self.tracer = tracer
        self.runtime = PoolRuntime(self.machine, tracer=tracer)
        self.gdh = GlobalDataHandler(
            self.runtime,
            compiled_expressions=compiled_expressions,
            optimizer_options=optimizer_options,
            allow_one_phase=allow_one_phase,
            default_fragments=default_fragments,
            disk_resident=disk_resident,
            faults=faults,
        )
        self.recovery = RecoveryManager(self.gdh)
        self._observatory: Observatory | None = None
        self._rebalancer = None
        self._default_session = self.session()

    # -- sessions --------------------------------------------------------------

    def session(self) -> Session:
        """Open a new client session."""
        return Session(self, self.gdh.new_session())

    def connect(self, autocommit: bool = True):
        """Open a DBAPI-shaped :class:`repro.serve.Connection`.

        Installs the serving layer's plan cache on the GDH as a side
        effect (first call only).  Imported lazily: ``repro.core`` never
        depends on ``repro.serve`` unless a connection is asked for.
        """
        from repro.serve import connect

        return connect(self, autocommit=autocommit)

    # -- statement execution -------------------------------------------------------

    def execute(self, sql: str) -> QueryResult:
        """Run one statement in the default session."""
        return self._default_session.execute(sql)

    def query(self, sql: str) -> list[tuple]:
        return self._default_session.query(sql)

    def execute_script(self, sql: str) -> list[QueryResult]:
        """Run a ``;``-separated script in the default session."""
        return [
            self._default_session.execute_statement(statement)
            for statement in parse_script(sql)
        ]

    def execute_prismalog(self, program: str) -> list[QueryResult]:
        return self._default_session.execute_prismalog(program)

    def run_prismalog(self, program: str, state: SessionState) -> list[QueryResult]:
        """Evaluate a PRISMAlog program against the database.

        Database relations serve as extensional predicates.  Programs
        whose recursion is expressible by the closure operator compile
        to ordinary algebra plans and run through the *distributed*
        executor (fragment-parallel, Section 2.3's semantics-via-algebra
        made literal); general recursion falls back to the semi-naive
        engine at a per-query process, with referenced base tables
        gathered there first.  Either way the touched fragments are
        S-locked.
        """
        from repro.core.locks import LockMode
        from repro.core.transactions import TxnState
        from repro.prismalog.compile import compile_program
        from repro.prismalog.engine import PrismalogEngine
        from repro.prismalog.parser import parse_program

        parsed = parse_program(program)
        compiled = compile_program(parsed, self.gdh.catalog.schemas())
        if compiled is not None:
            return self._run_prismalog_compiled(program, parsed, compiled, state)
        referenced = parsed.predicates()
        edb_tables = {}
        edb_schemas = {}
        gdh = self.gdh
        txn, autocommit = gdh._ensure_txn(state)
        process = gdh._new_query_process(state, "prismalog")
        try:
            resources = []
            for name in sorted(referenced):
                if gdh.catalog.has_table(name):
                    info = gdh.catalog.table(name)
                    for fragment in info.fragments:
                        resources.append((info.name, fragment.fragment_id))
            gdh._lock(txn, state, process, resources, LockMode.SHARED)
            gdh._charge_frontend(process, program, None)
            # Gather EDB relations to the query process.
            for name in sorted(referenced):
                if not gdh.catalog.has_table(name):
                    continue
                info = gdh.catalog.table(name)
                rows = []
                for fragment in info.fragments:
                    ofm = gdh.fragment_ofms[fragment.ofm_name]
                    fragment_rows = ofm.scan_rows()
                    gdh.runtime.send(
                        ofm, process, max(64, info.schema.average_row_bytes() * len(fragment_rows))
                    )
                    rows.extend(fragment_rows)
                edb_tables[name] = rows
                edb_schemas[name] = info.schema
            engine = PrismalogEngine(
                edb_tables,
                edb_schemas,
                evaluator=gdh.executor.evaluator,
            )
            answers = engine.run_program(parsed)
            meter = engine.stats.meter
            process.charge(
                self.machine.cpu_time(
                    tuples=int(meter.tuples),
                    hashes=int(meter.hashes),
                    compares=int(meter.compares),
                )
            )
            if autocommit:
                gdh.txns.finish(txn, TxnState.COMMITTED, process.ready_at)
            results = []
            for answer in answers:
                results.append(
                    QueryResult(
                        "prismalog",
                        columns=answer.columns,
                        rows=answer.rows,
                        prismalog_stats={
                            "compiled_to_algebra": False,
                            "fixpoint_iterations": dict(
                                engine.stats.fixpoint_iterations
                            ),
                            "closure_operator_hits": list(
                                engine.stats.closure_operator_hits
                            ),
                            "materialized_rows": dict(
                                engine.stats.materialized_rows
                            ),
                        },
                    )
                )
            return results
        finally:
            gdh._finish_query(state, process)

    def _run_prismalog_compiled(
        self, program_text: str, parsed, compiled, state: SessionState
    ) -> list[QueryResult]:
        """Run a fully-compiled PRISMAlog program distributed."""
        from repro.core.locks import LockMode
        from repro.core.transactions import TxnState

        gdh = self.gdh
        txn, autocommit = gdh._ensure_txn(state)
        process = gdh._new_query_process(state, "prismalog")
        try:
            optimizer = gdh._optimizer()
            optimized_queries = [
                (query, optimizer.optimize(plan))
                for query, plan in compiled.query_plans
            ]
            resources = []
            for _query, optimized in optimized_queries:
                resources.extend(gdh._scan_resources(optimized.plan))
                for shared in optimized.shared:
                    resources.extend(gdh._scan_resources(shared.plan))
            gdh._lock(txn, state, process, resources, LockMode.SHARED)
            gdh._charge_frontend(process, program_text, None)
            results = []
            for query, optimized in optimized_queries:
                rows, report = gdh.executor.execute(optimized, process)
                results.append(
                    QueryResult(
                        "prismalog",
                        columns=optimized.plan.schema.names(),
                        rows=sorted(rows, key=repr),
                        report=report,
                        prismalog_stats={
                            "compiled_to_algebra": True,
                            "closure_operator_hits": list(
                                compiled.closure_predicates
                            ),
                            "fixpoint_iterations": {},
                            "materialized_rows": {},
                        },
                    )
                )
            if autocommit:
                gdh.txns.finish(txn, TxnState.COMMITTED, process.ready_at)
            return results
        finally:
            gdh._finish_query(state, process)

    # -- bulk loading ------------------------------------------------------------------

    def bulk_load(self, table: str, rows: list[tuple]) -> int:
        """Fast non-transactional initial population (snapshots after).

        Quiesces afterwards, so the next query is measured against an
        idle machine instead of waiting behind the load's checkpoint.
        """
        count = self.gdh.bulk_load(table, rows)
        self.quiesce()
        return count

    def quiesce(self) -> float:
        """Advance every open session and the GDH to the machine-wide
        horizon — i.e. let all in-flight background work finish before
        the next measured statement starts.  (All sessions, not just the
        default one: a multi-session benchmark quiescing after setup
        must not start measured statements in the past.)"""
        horizon = self.runtime.horizon()
        self.gdh.gdh_process.advance_to(horizon)
        for state in self.gdh.sessions.values():
            state.clock = max(state.clock, horizon)
        return horizon

    # -- durability --------------------------------------------------------------------

    def checkpoint(self) -> float:
        """Snapshot all durable fragments; returns simulated cost."""
        return self.gdh.checkpoint()

    def crash(self) -> CrashReport:
        """Simulate a machine-wide failure (volatile state lost)."""
        report = self.recovery.crash()
        # Open sessions lose their transactions.
        return report

    def restart(self) -> RecoveryReport:
        """Recover committed state from stable storage."""
        return self.recovery.restart()

    # -- faults ------------------------------------------------------------------------

    @property
    def faults(self) -> FaultInjector:
        return self.gdh.faults

    def crash_element(self, node_id: int) -> CrashReport:
        """Fail one processing element; the surviving system carries on."""
        return self.recovery.crash_element(node_id)

    def restart_element(self, node_id: int) -> RecoveryReport:
        """Bring a failed element back and replay its fragment copies."""
        self.gdh.faults.restore_element(node_id)
        names = [
            copy_name
            for info in self.gdh.catalog.tables()
            for fragment in info.fragments
            for copy_node, copy_name in fragment.all_copies()
            if copy_node == node_id
        ]
        return self.recovery.restart_fragments(names)

    def fail_link(self, node_a: int, node_b: int) -> None:
        self.gdh.faults.fail_link(node_a, node_b)

    def restore_link(self, node_a: int, node_b: int) -> None:
        self.gdh.faults.restore_link(node_a, node_b)

    def resolve_in_doubt(self) -> InDoubtResolution:
        """Resolve transactions left hanging by a halted coordinator."""
        return self.recovery.resolve_in_doubt()

    # -- online rebalancing ------------------------------------------------------------

    @property
    def rebalancer(self):
        """The online re-fragmentation supervisor (created on first use).

        Imported lazily like :meth:`connect`: ``repro.core.database``
        never pays for the rebalancer unless it is asked for.  Accessing
        it also registers the ``rebalanced`` fragmentation kind, which
        the dictionary needs to deserialize a catalog that was
        rebalanced before a restart.
        """
        if self._rebalancer is None:
            from repro.core.rebalance import Rebalancer

            self._rebalancer = Rebalancer(self.gdh)
        return self._rebalancer

    # -- introspection ---------------------------------------------------------------------

    def observe(self) -> Observatory:
        """One facade over every stats surface of this database.

        Sources (all :class:`~repro.obs.api.Snapshot`):

        ========== ====================================================
        ``runtime``      :class:`~repro.pool.runtime.RuntimeStats`
        ``nodes``        per-PE busy/tuple/message counters (machine)
        ``faults``       :class:`~repro.core.faults.FaultInjector`
        ``shuffle``      the executor's splitter cache
        ``expressions``  the expression-compiler cache
        ``metrics``      the executor's cold-path metric registry
        ``tracer``       the tracer, when one was passed at construction
        ========== ====================================================

        This replaces reaching into per-subsystem attributes
        (``db.runtime.stats``, ``db.gdh.executor.evaluator.cache`` …);
        the old paths still work but new code should go through here.
        """
        if self._observatory is None:
            observatory = Observatory()
            observatory.register("runtime", lambda: self.runtime.stats)
            observatory.register("nodes", self.machine.observe().source("nodes"))
            observatory.register("faults", self.gdh.faults)
            observatory.register("shuffle", lambda: self.gdh.executor.splitters)
            observatory.register(
                "expressions", lambda: self.gdh.executor.evaluator.cache
            )
            observatory.register("metrics", self.gdh.executor.metrics)
            if self.tracer is not None:
                observatory.register("tracer", self.tracer)
            self._observatory = observatory
        return self._observatory

    @property
    def catalog(self):
        return self.gdh.catalog

    def table_row_count(self, name: str) -> int:
        info = self.gdh.catalog.table(name)
        total = 0
        for fragment in info.fragments:
            ofm = self.gdh._live_copy(fragment)
            if ofm is not None:
                total += len(ofm.table)
        return total

    def simulated_time(self) -> float:
        """The machine-wide simulated clock horizon."""
        return self.runtime.horizon()
