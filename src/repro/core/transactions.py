"""Transactions and the transaction manager (paper Section 2.2).

Strict two-phase locking at fragment granularity: a transaction
acquires locks as it touches fragments and holds them to the end.
Commit runs two-phase commit over the participating OFMs
(:mod:`repro.core.twophase`); abort undoes at every participant.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import InvalidTransactionState
from repro.core.locks import LockManager, LockMode, Resource
from repro.ofm.manager import OneFragmentManager


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """One transaction: id, simulated timing, locks, participants."""

    txn_id: int
    started_at: float
    state: TxnState = TxnState.ACTIVE
    #: OFMs whose fragments this transaction modified (2PC participants).
    participants: dict[str, OneFragmentManager] = field(default_factory=dict)
    #: Fragments read or written (for lock bookkeeping / reporting).
    touched: set[Resource] = field(default_factory=set)
    finished_at: float | None = None
    autocommit: bool = False

    def require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise InvalidTransactionState(
                f"transaction {self.txn_id} is {self.state.value}"
            )

    def add_participant(self, ofm: OneFragmentManager) -> None:
        self.participants.setdefault(ofm.name, ofm)


class TransactionManager:
    """Creates transactions and coordinates their lifecycle."""

    def __init__(self, lock_manager: LockManager | None = None):
        self.locks = lock_manager or LockManager()
        self._next_txn_id = 1
        self.active: dict[int, Transaction] = {}
        self.committed = 0
        self.aborted = 0

    def begin(self, started_at: float, autocommit: bool = False) -> Transaction:
        txn = Transaction(self._next_txn_id, started_at, autocommit=autocommit)
        self._next_txn_id += 1
        self.active[txn.txn_id] = txn
        return txn

    def lock(self, txn: Transaction, resource: Resource, mode: LockMode) -> float:
        """Acquire a fragment lock for *txn* (raises WouldBlock/Deadlock).

        Returns the logical wait floor: the simulated time before which
        the grant could not have happened.
        """
        txn.require_active()
        floor = self.locks.acquire(txn.txn_id, resource, mode)
        txn.touched.add(resource)
        return floor

    def finish(
        self, txn: Transaction, state: TxnState, finished_at: float
    ) -> list[Resource]:
        """Mark the transaction finished and release its locks.

        Returns resources whose waiters may now run.
        """
        txn.require_active()
        txn.state = state
        txn.finished_at = finished_at
        if state is TxnState.COMMITTED:
            self.committed += 1
        else:
            self.aborted += 1
        self.active.pop(txn.txn_id, None)
        return self.locks.release_all(txn.txn_id, finished_at)

    def abort_all_active(self, finished_at: float) -> list[Transaction]:
        """Abort every live transaction (crash handling)."""
        victims = list(self.active.values())
        for txn in victims:
            for ofm in txn.participants.values():
                if ofm.alive:
                    ofm.abort(txn.txn_id)
            self.finish(txn, TxnState.ABORTED, finished_at)
        return victims
